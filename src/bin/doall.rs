//! The `doall` command-line tool: simulate Do-All executions, sweep delay
//! bounds, and inspect contention and closed-form bounds.
//!
//! ```text
//! cargo run --release --bin doall -- simulate --algo padet -p 64 -t 256 -d 16
//! cargo run --release --bin doall -- sweep --algo da:3 -p 27 -t 729
//! cargo run --release --bin doall -- contention -p 16 -n 64
//! cargo run --release --bin doall -- bounds -p 64 -t 256 -d 16
//! ```

use doall::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            std::process::exit(2);
        }
    };
    match cli::execute(&command) {
        Ok(cli::Outcome::Clean) => {}
        // diff-style exit codes: 1 = baseline drift, 2 = trouble.
        Ok(cli::Outcome::Drift) => std::process::exit(1),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
