//! Command-line interface for the `doall` binary.
//!
//! Subcommands:
//!
//! * `simulate` — run one execution and print the report;
//! * `sweep`    — run a scenario grid (algorithm × adversary × shape × d)
//!   through the parallel sweep harness, with table/JSON/CSV output and
//!   optional baseline comparison (`--compare`);
//! * `test`     — run a directory of declarative `*.scn` scenario files
//!   through the suite runner: grids execute on the sweep engine, each
//!   scenario's `assert` lines are evaluated, and an aggregated
//!   pass/fail table is rendered (optionally diffed against a baseline);
//! * `compare`  — diff two sweep-result JSON files cell by cell;
//! * `trend`    — analyze the append-only `HISTORY.jsonl` perf ledger
//!   (one entry per landed PR): sparklines, per-entry slopes, and a
//!   cumulative band gate that catches drift the per-step comparator
//!   can't; `--append` adds a fresh result set to the ledger;
//! * `lint`     — run the determinism-preserving static analysis over
//!   the workspace sources (rules D001–D004, H001–H002; see
//!   `doall-lint`) and report `path:line`-anchored diagnostics;
//! * `contention` — contention report for a random schedule list;
//! * `bounds`   — print every closed-form bound for `(p, t, d)`.
//!
//! Exit codes follow `diff`: 0 clean, 1 baseline drift, 2 errors.
//!
//! The parser is hand-rolled (no CLI dependency) and exposed here so it
//! can be unit-tested; `src/bin/doall.rs` is a thin wrapper. Algorithm
//! and adversary construction is shared with the experiment harness
//! (`doall_bench::grid`), so both accept exactly the same keys.

use crate::algorithms::Algorithm;
use crate::bounds;
use crate::perms::Schedules;
use crate::sim::{Adversary, Simulation};
use crate::Instance;
use doall_bench::compare::{
    compare, compare_files, load_result_set, preserve_measured_values, BaselineSet,
};
use doall_bench::grid::{
    build_adversary, build_algorithm, validate_adversary_key, validate_algo_key, AdversarySpec,
    Grid,
};
use doall_bench::history::{append_entry, load_history, HistoryEntry};
use doall_bench::output::{emit, Flags, Format, Record, ResultSet};
use doall_bench::suite::{load_dir, run_suite, SuiteConfig};
use doall_bench::sweep::{run_cells, SweepConfig};
use doall_bench::trend::{analyze, parse_band, Band, TrendConfig};
use std::fmt;
use std::path::Path;

/// Tick budget for `simulate` and CLI sweeps (generous: the CLI accepts
/// paper-scale lower-bound scenarios that legitimately run long).
pub const CLI_MAX_TICKS: u64 = 50_000_000;

/// What a successfully executed command concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Nothing to flag; the process exits 0.
    Clean,
    /// A baseline comparison found drift (or added/removed cells); the
    /// process exits 1, `diff`-style — 2 stays reserved for errors.
    Drift,
}

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one simulated execution.
    Simulate(RunSpec),
    /// Run a scenario grid through the parallel sweep harness.
    Sweep(SweepSpec),
    /// Run a declarative scenario suite (`*.scn` files) and evaluate its
    /// assertions.
    Test(TestSpec),
    /// Diff two sweep-result JSON files cell by cell.
    Compare(CompareSpec),
    /// Analyze (and optionally append to) the perf-history ledger.
    Trend(TrendSpec),
    /// Run the static-analysis rules over the workspace sources.
    Lint(LintSpec),
    /// Contention report for a random list of `p` schedules over `[n]`.
    Contention {
        /// Number of schedules.
        p: usize,
        /// Size of the underlying set.
        n: usize,
        /// RNG seed for the list.
        seed: u64,
    },
    /// Print the paper's closed-form bounds for `(p, t, d)`.
    Bounds {
        /// Processors.
        p: usize,
        /// Tasks.
        t: usize,
        /// Delay bound.
        d: u64,
    },
    /// Print usage.
    Help,
}

/// Parameters of the `sweep` subcommand: a grid plus execution/output
/// options shared with the experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The scenario grid to run.
    pub grid: Grid,
    /// Worker threads (default: available parallelism).
    pub threads: Option<usize>,
    /// Replicates per scheduled shard (default: auto — a grid with fewer
    /// cells than workers splits each cell's replicates across the pool).
    /// Wall-clock only; results are byte-identical for every value.
    pub shard_size: Option<u64>,
    /// Per-run tick cutoff (default: the simulator's).
    pub max_ticks: Option<u64>,
    /// Output format.
    pub format: Format,
    /// Write output here instead of stdout.
    pub out: Option<String>,
    /// Baseline file to diff the results against after the run (diff
    /// table on stderr; drift exits 1).
    pub compare: Option<String>,
    /// Drift tolerance for `--compare` (default 0 — results are
    /// deterministic, so any drift on an unchanged grid is a regression).
    pub tolerance: f64,
}

/// Parameters of the `test` subcommand: a scenario directory plus the
/// execution/output/baseline options shared with `sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct TestSpec {
    /// Directory holding the `*.scn` files (searched recursively, run in
    /// sorted path order).
    pub suite: String,
    /// Run each scenario's smoke grids instead of the full grids.
    pub smoke: bool,
    /// Restrict the run to these scenario ids (unknown ids are errors).
    pub only: Option<Vec<String>>,
    /// Worker threads (default: available parallelism). Wall-clock only.
    pub threads: Option<usize>,
    /// Replicates per scheduled shard (default: auto). Wall-clock only.
    pub shard_size: Option<u64>,
    /// Tick-cutoff override (default: each scenario's own `max_ticks`).
    pub max_ticks: Option<u64>,
    /// Baseline result-set file to diff the merged records against.
    pub baseline: Option<String>,
    /// Drift tolerance for `--baseline` (default 0 = exact).
    pub tolerance: f64,
    /// Emit the report as JSON instead of the pass/fail table.
    pub json: bool,
    /// Write the rendered report here instead of stdout.
    pub out: Option<String>,
    /// Regenerate the `--baseline` file from this run instead of diffing
    /// against it (refused when assertions fail). The writer is the same
    /// deterministic renderer the baselines were committed with, so an
    /// unchanged suite regenerates the committed bytes exactly.
    pub record: bool,
}

/// Parameters of the `trend` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendSpec {
    /// The ledger file (`HISTORY.jsonl`).
    pub history: String,
    /// Analyze only the last N entries (default: all).
    pub last: Option<usize>,
    /// Band gates (`--band metric=±X%`, repeatable).
    pub bands: Vec<Band>,
    /// Emit the machine-readable trend document instead of the table.
    pub json: bool,
    /// Write the rendered trend here instead of stdout.
    pub out: Option<String>,
    /// Append this result-set JSON file to the ledger before analyzing.
    pub append: Option<String>,
    /// Commit id for `--append` (required with it — the ledger keys
    /// entries by commit).
    pub commit: Option<String>,
    /// Timestamp for `--append`. Provenance only — the analysis never
    /// reads a clock (lint rule D002), so the caller supplies time.
    pub timestamp: Option<String>,
    /// Harness throughput for `--append` (cells/second, measured by the
    /// caller); omitted renders as `null` and is exempt from gating.
    pub cells_per_sec: Option<f64>,
}

/// Parameters of the `compare` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareSpec {
    /// Baseline result-set file.
    pub old: String,
    /// New result-set file.
    pub new: String,
    /// Drift tolerance (default 0 = exact).
    pub tolerance: f64,
    /// Emit the machine-readable diff document instead of the table.
    pub json: bool,
    /// Write the rendered diff here instead of stdout.
    pub out: Option<String>,
}

/// Parameters of the `lint` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintSpec {
    /// Emit the machine-readable report instead of the text table.
    pub json: bool,
    /// Write the rendered report here instead of stdout.
    pub out: Option<String>,
    /// Restrict the run to these rule ids (canonical `D001` spellings).
    pub only: Option<Vec<String>>,
    /// Workspace root to lint (default: ascend from the current
    /// directory to the nearest `[workspace]` manifest).
    pub root: Option<String>,
}

/// Common parameters of `simulate`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Algorithm key (see [`RunSpec::algorithm`]).
    pub algo: String,
    /// Processors.
    pub p: usize,
    /// Tasks.
    pub t: usize,
    /// Delay bound handed to the adversary.
    pub d: u64,
    /// Adversary key (see [`RunSpec::adversary`]).
    pub adversary: String,
    /// Seed for randomized algorithms/adversaries.
    pub seed: u64,
}

/// Errors from parsing or executing a command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
doall — message-delay-sensitive Do-All (Kowalski & Shvartsman, PODC'03)

USAGE:
  doall simulate   --algo A -p P -t T -d D [--adversary ADV] [--seed S]
  doall sweep      --grid 'algos=A,... advs=ADV,... [backends=B,...] shapes=PxT,...
                   ds=D,... seeds=K seed=S'
                   [--threads N] [--shard-size N] [--max-ticks N] [--json|--csv]
                   [--out PATH] [--compare BASELINE.json] [--tolerance X]
  doall sweep      --algo A -p P -t T [-d D] [--adversary ADV] [--seed S]
                   (single-algorithm shorthand; no -d sweeps d = 1,2,4,… up to t)
  doall test       --suite DIR [--smoke] [--only ID,...] [--baseline BASELINE.json]
                   [--record] [--tolerance X] [--threads N] [--shard-size N]
                   [--max-ticks N] [--json] [--out PATH]
  doall compare    OLD.json NEW.json [--tolerance X] [--json] [--out PATH]
  doall trend      [HISTORY.jsonl] [--last N] [--band METRIC=±X%]... [--json]
                   [--out PATH]
  doall trend      [HISTORY.jsonl] --append RESULTS.json --commit SHA
                   [--timestamp TS] [--cells-per-sec X] [--band METRIC=±X%]...
  doall lint       [--json] [--out PATH] [--only RULE,...] [--root DIR]
  doall contention -p P -n N [--seed S]
  doall bounds     -p P -t T -d D
  doall help

ALGORITHMS (A):
  soloall | oblido | oblido-searched | oblido-worst | da:<q> | paran1 | paran2
  | padet | padet-rot | padet-affine | gossip:<fanout>

ADVERSARIES (ADV, default 'stage'):
  unit | fixed | random | stage | bursty[:<period>] | lb[:<stage>]
  | lbrand[:<stage>] | crash:<pct>[@even|@burst|@front]
  | straggler[:<pct>[:<slowdown>]]

Adversaries are parameterized: bare keys keep their legacy defaults
(bursty period max(d/2,1); lb/lbrand stage min(d, max(t/6,1)); crash
stagger even; straggler 25% at slowdown 2). Numeric knobs canonicalize
(crash:07 ≡ crash:7), so one adversary has one cell identity.

BACKENDS (B): sim | threads
  The optional backends= axis runs every cell once per backend: `sim` is
  the deterministic tick simulator; `threads` executes the same state
  machines on real OS threads via doall-runtime (d becomes a random
  message-delay cap, crash plans become step budgets, stragglers a
  slower pace). Tagged records carry a \"backend\" field plus the
  measured-only metrics wall_clock_ms / crashed_drained /
  max_crashed_backlog (zero under sim). Omitting the axis keeps the
  legacy sim-only schema byte-for-byte.

Sweeps run on the doall-bench harness: work is scheduled as (cell,
replicate-chunk) shards across a thread pool with per-replicate
deterministic seeding, so --threads and --shard-size change wall-clock
only, never a number — a single huge cell spreads across every worker.
--json / --csv emit the machine-readable schema CI archives (see
BENCH_sweep.json).

`test` discovers every *.scn file under --suite (recursively, sorted by
path), runs each scenario's grids through the same sweep harness, and
evaluates its `assert` lines against the summarized metrics. The report
is an aggregated pass/fail table (or --json); each violated assertion
names the exact offending cell (algo, adversary, backend, p, t, d,
seeds, seed) with observed vs expected values. --smoke substitutes each
scenario's smoke grids; --baseline diffs the merged records against a
committed result set, and --record regenerates that file from the run
instead (same deterministic renderer the baselines were committed
with, so an unchanged suite regenerates the committed bytes exactly;
refused while assertions fail). Assertion failures and baseline drift
exit 1; unreadable suites or malformed scenarios exit 2. The committed
scenarios/ directory is the paper's experiment suite (e01–e17).

`trend` reads the append-only HISTORY.jsonl perf ledger (one JSON line
per landed PR: commit, timestamp, harness cells/sec, and the smoke
result set) and renders the trajectory: an ASCII sparkline plus
least-squares slope per metric, aggregated over the deterministic
cells. `--append RESULTS.json --commit SHA` adds an entry first
(duplicate commits are refused; timestamp and throughput come from
flags — the analysis never reads a clock). `--band METRIC=±X%` gates
cumulative drift between the window endpoints (`--last N` picks the
window): a metric creeping +0.4% per PR passes every per-step
`compare` at ±1% yet fails the ±1% band after five PRs. Values from
`threads`-backend cells and the measured-only metrics stay in the
ledger but are never rendered or gated, so trend output is
byte-identical across --threads. Exit codes follow compare: 0 clean,
1 band violations, 2 errors.

`lint` runs the hand-rolled determinism-preserving static analysis
(doall-lint) over the workspace sources — skipping vendor/, target/,
and fixture corpora, with comments, string literals, and
#[cfg(test)]/mod tests regions masked away. Rules: D001 no
HashMap/HashSet in deterministic crates; D002 wall-clock reads only in
doall-runtime's scheduler/transport/fault; D003 no std::env /
thread::current in deterministic crates; D004 no float accumulation
(`+=`, `.sum()`) over non-deterministically-ordered iteration
(HashMap/HashSet iters, read_dir, channel drains) in deterministic
crates — collect and sort first; H001 no unwrap/expect/panic
in library-crate non-test code; H002 every crate root carries
#![forbid(unsafe_code)]. A finding is silenced by a
`// lint:allow(RULE) — justification` comment on the offending line or
the line above. Diagnostics are sorted and byte-identical across runs
and discovery orders. Exit codes follow compare: 0 clean,
1 diagnostics, 2 errors.

`compare` (and `sweep --compare`) matches cells of two result sets by
(experiment, algo, adversary, backend, p, t, d, seeds) — records
without a backend field key as `sim` — and classifies each as exact,
drift, added, or removed. Results are deterministic, so the default
--tolerance is 0: any value drift on an unchanged grid is a
regression. Measured-only metrics (wall_clock_ms, crashed_drained,
max_crashed_backlog) and the values of `threads`-backend cells are
exempt — real-thread counts follow OS scheduling, so only their
presence is gated. Exit codes follow diff: 0 clean, 1 drift, 2 errors.
";

/// Parses an argument vector (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the first problem found.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = it.next().map(String::as_str).unwrap_or("help");
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "simulate" => {
            let mut algo = None;
            let mut p = None;
            let mut t = None;
            let mut d = 1u64;
            let mut adversary = "stage".to_string();
            let mut seed = 0u64;
            let mut have_d = false;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| err(format!("flag {flag} needs a value")))
                };
                match flag.as_str() {
                    "--algo" => algo = Some(value()?.clone()),
                    "-p" => p = Some(parse_num(value()?, "-p")?),
                    "-t" => t = Some(parse_num(value()?, "-t")?),
                    "-d" => {
                        d = parse_num(value()?, "-d")? as u64;
                        have_d = true;
                    }
                    "--adversary" => adversary = value()?.clone(),
                    "--seed" => seed = parse_num(value()?, "--seed")? as u64,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            if !have_d {
                return Err(err("simulate requires -d"));
            }
            let spec = RunSpec {
                algo: algo.ok_or_else(|| err("--algo is required"))?,
                p: p.ok_or_else(|| err("-p is required"))?,
                t: t.ok_or_else(|| err("-t is required"))?,
                d,
                adversary,
                seed,
            };
            spec.validate()?;
            Ok(Command::Simulate(spec))
        }
        "sweep" => {
            let mut grid_spec: Option<String> = None;
            let mut algo = None;
            let mut p = None;
            let mut t = None;
            let mut ds: Option<Vec<u64>> = None;
            let mut adversary = "stage".to_string();
            let mut seed = 0u64;
            let mut threads = None;
            let mut shard_size = None;
            let mut max_ticks = None;
            let mut format = Format::Table;
            let mut out = None;
            let mut compare = None;
            let mut tolerance = 0.0f64;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| err(format!("flag {flag} needs a value")))
                };
                match flag.as_str() {
                    "--grid" => grid_spec = Some(value()?.clone()),
                    "--algo" => algo = Some(value()?.clone()),
                    "-p" => p = Some(parse_num(value()?, "-p")?),
                    "-t" => t = Some(parse_num(value()?, "-t")?),
                    "-d" => ds = Some(vec![parse_num(value()?, "-d")? as u64]),
                    "--adversary" => adversary = value()?.clone(),
                    "--seed" => seed = parse_num(value()?, "--seed")? as u64,
                    "--threads" => {
                        let n = parse_num(value()?, "--threads")?;
                        if n == 0 {
                            return Err(err("--threads must be at least 1"));
                        }
                        threads = Some(n);
                    }
                    "--shard-size" => {
                        let n = parse_num(value()?, "--shard-size")? as u64;
                        if n == 0 {
                            return Err(err("--shard-size must be at least 1"));
                        }
                        shard_size = Some(n);
                    }
                    "--max-ticks" => {
                        let n = parse_num(value()?, "--max-ticks")? as u64;
                        if n == 0 {
                            return Err(err("--max-ticks must be at least 1"));
                        }
                        max_ticks = Some(n);
                    }
                    // Same semantics as the experiment binaries' shared
                    // parser (doall_bench::output::parse_flags): the two
                    // formats conflict, and --out without a format means
                    // JSON (a file of Markdown tables is never the ask).
                    "--json" => {
                        if format == Format::Csv {
                            return Err(err("--json conflicts with --csv"));
                        }
                        format = Format::Json;
                    }
                    "--csv" => {
                        if format == Format::Json {
                            return Err(err("--json conflicts with --csv"));
                        }
                        format = Format::Csv;
                    }
                    "--out" => out = Some(value()?.clone()),
                    "--compare" => compare = Some(value()?.clone()),
                    "--tolerance" => tolerance = parse_tolerance(value()?)?,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            if out.is_some() && format == Format::Table {
                format = Format::Json;
            }
            let grid = match grid_spec {
                Some(spec) => {
                    if algo.is_some() || p.is_some() || t.is_some() || ds.is_some() {
                        return Err(err("--grid conflicts with --algo/-p/-t/-d"));
                    }
                    Grid::parse(&spec).map_err(|e| err(format!("bad --grid: {e}")))?
                }
                None => {
                    // Single-algorithm shorthand: one shape, d = 1,2,4,…,t
                    // unless -d pins a single value.
                    let algo = algo.ok_or_else(|| err("--algo (or --grid) is required"))?;
                    let p = p.ok_or_else(|| err("-p is required"))?;
                    let t = t.ok_or_else(|| err("-t is required"))?;
                    if p == 0 || t == 0 {
                        return Err(err("-p and -t must be positive"));
                    }
                    let ds = ds.unwrap_or_else(|| {
                        let mut ds = Vec::new();
                        let mut d = 1u64;
                        while d <= t as u64 {
                            ds.push(d);
                            d *= 2;
                        }
                        ds
                    });
                    if ds.contains(&0) {
                        return Err(err("-d must be at least 1"));
                    }
                    let grid = Grid {
                        algos: vec![algo],
                        adversaries: vec![AdversarySpec::parse(&adversary)
                            .map_err(|e| err(format!("{e}; try `doall help`")))?],
                        shapes: vec![(p, t)],
                        ds,
                        backends: Vec::new(),
                        seeds: 1,
                        base_seed: seed,
                    };
                    grid.validate().map_err(|e| err(e.to_string()))?;
                    grid
                }
            };
            grid.validate().map_err(|e| err(e.to_string()))?;
            Ok(Command::Sweep(SweepSpec {
                grid,
                threads,
                shard_size,
                max_ticks,
                format,
                out,
                compare,
                tolerance,
            }))
        }
        "test" => {
            let mut suite = None;
            let mut smoke = false;
            let mut only = None;
            let mut threads = None;
            let mut shard_size = None;
            let mut max_ticks = None;
            let mut baseline = None;
            let mut tolerance = 0.0f64;
            let mut json = false;
            let mut out = None;
            let mut record = false;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| err(format!("flag {flag} needs a value")))
                };
                match flag.as_str() {
                    "--suite" => suite = Some(value()?.clone()),
                    "--smoke" => smoke = true,
                    "--only" => {
                        only = Some(
                            value()?
                                .split(',')
                                .map(str::trim)
                                .filter(|s| !s.is_empty())
                                .map(String::from)
                                .collect::<Vec<_>>(),
                        );
                    }
                    "--threads" => {
                        let n = parse_num(value()?, "--threads")?;
                        if n == 0 {
                            return Err(err("--threads must be at least 1"));
                        }
                        threads = Some(n);
                    }
                    "--shard-size" => {
                        let n = parse_num(value()?, "--shard-size")? as u64;
                        if n == 0 {
                            return Err(err("--shard-size must be at least 1"));
                        }
                        shard_size = Some(n);
                    }
                    "--max-ticks" => {
                        let n = parse_num(value()?, "--max-ticks")? as u64;
                        if n == 0 {
                            return Err(err("--max-ticks must be at least 1"));
                        }
                        max_ticks = Some(n);
                    }
                    "--baseline" => baseline = Some(value()?.clone()),
                    "--record" => record = true,
                    "--tolerance" => tolerance = parse_tolerance(value()?)?,
                    "--json" => json = true,
                    "--out" => out = Some(value()?.clone()),
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            let spec = TestSpec {
                suite: suite.ok_or_else(|| err("--suite is required"))?,
                smoke,
                only,
                threads,
                shard_size,
                max_ticks,
                baseline,
                tolerance,
                json,
                out,
                record,
            };
            if spec.record && spec.baseline.is_none() {
                return Err(err("--record needs --baseline (the file to regenerate)"));
            }
            if spec.only.as_ref().is_some_and(Vec::is_empty) {
                return Err(err("--only needs at least one scenario id"));
            }
            Ok(Command::Test(spec))
        }
        "compare" => {
            let mut files: Vec<String> = Vec::new();
            let mut tolerance = 0.0f64;
            let mut json = false;
            let mut out = None;
            while let Some(arg) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| err(format!("flag {arg} needs a value")))
                };
                match arg.as_str() {
                    "--tolerance" => tolerance = parse_tolerance(value()?)?,
                    "--json" => json = true,
                    "--out" => out = Some(value()?.clone()),
                    flag if flag.starts_with('-') => {
                        return Err(err(format!("unknown flag {flag}")));
                    }
                    _ => files.push(arg.clone()),
                }
            }
            if files.len() != 2 {
                return Err(err(format!(
                    "compare takes exactly two files (OLD.json NEW.json), got {}",
                    files.len()
                )));
            }
            let mut files = files.into_iter();
            Ok(Command::Compare(CompareSpec {
                old: files.next().expect("two files"),
                new: files.next().expect("two files"),
                tolerance,
                json,
                out,
            }))
        }
        "trend" => {
            let mut history = None;
            let mut last = None;
            let mut bands = Vec::new();
            let mut json = false;
            let mut out = None;
            let mut append = None;
            let mut commit = None;
            let mut timestamp = None;
            let mut cells_per_sec = None;
            while let Some(arg) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| err(format!("flag {arg} needs a value")))
                };
                match arg.as_str() {
                    "--last" => {
                        let n = parse_num(value()?, "--last")?;
                        if n == 0 {
                            return Err(err("--last must be at least 1"));
                        }
                        last = Some(n);
                    }
                    "--band" => bands.push(parse_band(value()?).map_err(err)?),
                    "--json" => json = true,
                    "--out" => out = Some(value()?.clone()),
                    "--append" => append = Some(value()?.clone()),
                    "--commit" => commit = Some(value()?.clone()),
                    "--timestamp" => timestamp = Some(value()?.clone()),
                    "--cells-per-sec" => {
                        let x: f64 = value()?
                            .parse()
                            .map_err(|_| err("--cells-per-sec needs a number".to_string()))?;
                        if !x.is_finite() || x <= 0.0 {
                            return Err(err("--cells-per-sec must be finite and positive"));
                        }
                        cells_per_sec = Some(x);
                    }
                    flag if flag.starts_with('-') => {
                        return Err(err(format!("unknown flag {flag}")));
                    }
                    _ if history.is_none() => history = Some(arg.clone()),
                    _ => return Err(err("trend takes at most one ledger file")),
                }
            }
            if append.is_some() != commit.is_some() {
                return Err(err(
                    "--append and --commit go together (the ledger keys entries by commit)",
                ));
            }
            if append.is_none() && (timestamp.is_some() || cells_per_sec.is_some()) {
                return Err(err(
                    "--timestamp / --cells-per-sec only make sense with --append",
                ));
            }
            Ok(Command::Trend(TrendSpec {
                history: history.unwrap_or_else(|| "HISTORY.jsonl".to_string()),
                last,
                bands,
                json,
                out,
                append,
                commit,
                timestamp,
                cells_per_sec,
            }))
        }
        "lint" => {
            let mut json = false;
            let mut out = None;
            let mut only = None;
            let mut root = None;
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| err(format!("flag {flag} needs a value")))
                };
                match flag.as_str() {
                    "--json" => json = true,
                    "--out" => out = Some(value()?.clone()),
                    "--only" => {
                        only = Some(
                            value()?
                                .split(',')
                                .map(str::trim)
                                .filter(|s| !s.is_empty())
                                .map(String::from)
                                .collect::<Vec<_>>(),
                        );
                    }
                    "--root" => root = Some(value()?.clone()),
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            if only.as_ref().is_some_and(Vec::is_empty) {
                return Err(err("--only needs at least one rule id"));
            }
            // Validate rule ids eagerly so typos fail before any I/O.
            for id in only.iter().flatten() {
                doall_lint::RuleId::parse(id).map_err(err)?;
            }
            Ok(Command::Lint(LintSpec {
                json,
                out,
                only,
                root,
            }))
        }
        "contention" => {
            let (mut p, mut n, mut seed) = (None, None, 0u64);
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| err(format!("flag {flag} needs a value")))
                };
                match flag.as_str() {
                    "-p" => p = Some(parse_num(value()?, "-p")?),
                    "-n" => n = Some(parse_num(value()?, "-n")?),
                    "--seed" => seed = parse_num(value()?, "--seed")? as u64,
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Contention {
                p: p.ok_or_else(|| err("-p is required"))?,
                n: n.ok_or_else(|| err("-n is required"))?,
                seed,
            })
        }
        "bounds" => {
            let (mut p, mut t, mut d) = (None, None, None);
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .ok_or_else(|| err(format!("flag {flag} needs a value")))
                };
                match flag.as_str() {
                    "-p" => p = Some(parse_num(value()?, "-p")?),
                    "-t" => t = Some(parse_num(value()?, "-t")?),
                    "-d" => d = Some(parse_num(value()?, "-d")? as u64),
                    other => return Err(err(format!("unknown flag {other}"))),
                }
            }
            Ok(Command::Bounds {
                p: p.ok_or_else(|| err("-p is required"))?,
                t: t.ok_or_else(|| err("-t is required"))?,
                d: d.ok_or_else(|| err("-d is required"))?,
            })
        }
        other => Err(err(format!(
            "unknown subcommand `{other}`; try `doall help`"
        ))),
    }
}

fn parse_num(s: &str, flag: &str) -> Result<usize, CliError> {
    s.parse()
        .map_err(|_| err(format!("{flag}: `{s}` is not a positive integer")))
}

fn parse_tolerance(s: &str) -> Result<f64, CliError> {
    let x: f64 = s
        .parse()
        .map_err(|_| err(format!("--tolerance: `{s}` is not a number")))?;
    if !x.is_finite() || x < 0.0 {
        return Err(err("--tolerance must be a finite non-negative number"));
    }
    Ok(x)
}

impl RunSpec {
    fn validate(&self) -> Result<(), CliError> {
        if self.p == 0 || self.t == 0 {
            return Err(err("-p and -t must be positive"));
        }
        if self.d == 0 {
            return Err(err("-d must be at least 1"));
        }
        // Validate keys eagerly (syntax only — building searched-list
        // algorithms like `oblido-searched` here would run the certified
        // search twice per invocation) so errors surface before a long run.
        validate_algo_key(&self.algo).map_err(|e| err(format!("{e}; try `doall help`")))?;
        validate_adversary_key(&self.adversary)
            .map_err(|e| err(format!("{e}; try `doall help`")))?;
        Ok(())
    }

    /// Builds the algorithm named by `self.algo` via the shared
    /// harness constructor ([`doall_bench::grid::build_algorithm`]).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] for an unknown key.
    pub fn algorithm(&self) -> Result<Box<dyn Algorithm>, CliError> {
        let instance =
            Instance::new(self.p, self.t).map_err(|e| err(format!("bad instance: {e}")))?;
        build_algorithm(&self.algo, instance, self.seed)
            .map_err(|e| err(format!("{e}; try `doall help`")))
    }

    /// Builds the adversary named by `self.adversary` with bound `d` via
    /// the shared harness grammar and constructor
    /// ([`doall_bench::grid::AdversarySpec`] /
    /// [`doall_bench::grid::build_adversary`]).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] for an unknown key or bad knob.
    pub fn adversary(&self) -> Result<Box<dyn Adversary>, CliError> {
        let spec = AdversarySpec::parse(&self.adversary)
            .map_err(|e| err(format!("{e}; try `doall help`")))?;
        Ok(build_adversary(
            &spec,
            self.p,
            self.t,
            self.d,
            self.seed,
            CLI_MAX_TICKS,
        ))
    }
}

/// Executes a parsed command, writing human-readable output to stdout.
/// Baseline-comparison diffs from `sweep --compare` go to stderr (stdout
/// may already carry the results).
///
/// # Errors
///
/// Returns a [`CliError`] for invalid parameters or non-completing runs.
/// Baseline drift is not an error: it is the [`Outcome::Drift`] success
/// value, so callers can map it to exit code 1 rather than 2.
pub fn execute(command: &Command) -> Result<Outcome, CliError> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(Outcome::Clean)
        }
        Command::Simulate(spec) => {
            let instance =
                Instance::new(spec.p, spec.t).map_err(|e| err(format!("bad instance: {e}")))?;
            let algo = spec.algorithm()?;
            let report = Simulation::builder(instance)
                .procs(algo.spawn(instance))
                .adversary(spec.adversary()?)
                .max_ticks(50_000_000)
                .build()
                .run();
            println!(
                "{} | p={} t={} d={} adversary={}",
                algo.name(),
                spec.p,
                spec.t,
                spec.d,
                spec.adversary
            );
            println!("{report}");
            println!(
                "work/(p·t) = {:.3}   messages/work = {:.2}",
                report.work_ratio_to_quadratic(spec.p, spec.t),
                report.messages_per_work()
            );
            if !report.completed {
                return Err(err("run did not complete within the tick budget"));
            }
            Ok(Outcome::Clean)
        }
        Command::Sweep(spec) => {
            let cells = spec.grid.cells();
            let mut cfg = SweepConfig {
                max_ticks: spec.max_ticks.unwrap_or(CLI_MAX_TICKS),
                shard_size: spec.shard_size,
                ..SweepConfig::default()
            };
            if let Some(threads) = spec.threads {
                cfg.threads = threads;
            }
            let measurements = run_cells(&cells, &cfg).map_err(|e| err(e.to_string()))?;
            let records: Vec<Record> = measurements
                .into_iter()
                .map(|m| {
                    let mut metrics = m.metrics();
                    if let Some(s) = &m.summary {
                        metrics.insert(
                            "ratio_quadratic".to_string(),
                            s.mean_work / (m.cell.p * m.cell.t) as f64,
                        );
                    }
                    Record {
                        experiment: "sweep".to_string(),
                        cell: m.cell,
                        metrics,
                    }
                })
                .collect();
            let results = ResultSet {
                mode: "custom".to_string(),
                records,
            };
            let flags = Flags {
                format: spec.format,
                out: spec.out.clone(),
                ..Flags::default()
            };
            if spec.format == Format::Table {
                println!("sweep | {}", spec.grid);
            }
            emit(&results, &flags).map_err(err)?;
            if let Some(baseline_path) = &spec.compare {
                let baseline = load_result_set(baseline_path).map_err(|e| err(e.to_string()))?;
                let current = BaselineSet::of(&results);
                let comparison = compare(&baseline, &current, spec.tolerance);
                eprint!("{}", comparison.render_text());
                if !comparison.is_clean() {
                    return Ok(Outcome::Drift);
                }
            }
            Ok(Outcome::Clean)
        }
        Command::Test(spec) => {
            let mut scenarios = load_dir(Path::new(&spec.suite)).map_err(err)?;
            if let Some(only) = &spec.only {
                for id in only {
                    if !scenarios.iter().any(|s| &s.id == id) {
                        return Err(err(format!(
                            "unknown scenario `{id}` (not in {})",
                            spec.suite
                        )));
                    }
                }
                scenarios.retain(|s| only.contains(&s.id));
            }
            let cfg = SuiteConfig {
                smoke: spec.smoke,
                threads: spec.threads,
                shard_size: spec.shard_size,
                max_ticks: spec.max_ticks,
            };
            let mut report = run_suite(&scenarios, &cfg).map_err(err)?;
            if let Some(baseline_path) = &spec.baseline {
                if spec.record {
                    // Regenerate the baseline from this run — but never
                    // from a failing suite. Timing-exempt values carry
                    // over from the previous file, so an unchanged suite
                    // reproduces the committed bytes exactly.
                    if report.is_clean() {
                        if let Ok(old) = load_result_set(baseline_path) {
                            preserve_measured_values(&mut report.results, &old);
                        }
                        std::fs::write(baseline_path, report.results.to_json())
                            .map_err(|e| err(format!("cannot write {baseline_path}: {e}")))?;
                        eprintln!(
                            "recorded {} ({} cells)",
                            baseline_path,
                            report.results.records.len()
                        );
                    } else {
                        eprintln!("refusing to record {baseline_path}: the suite is failing");
                    }
                } else {
                    let baseline =
                        load_result_set(baseline_path).map_err(|e| err(e.to_string()))?;
                    let current = BaselineSet::of(&report.results);
                    report.comparison = Some(compare(&baseline, &current, spec.tolerance));
                }
            }
            let rendered = if spec.json {
                report.render_json()
            } else {
                report.render_table()
            };
            match &spec.out {
                Some(path) => std::fs::write(path, rendered)
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?,
                None => print!("{rendered}"),
            }
            Ok(if report.is_clean() {
                Outcome::Clean
            } else {
                Outcome::Drift
            })
        }
        Command::Compare(spec) => {
            let comparison = compare_files(&spec.old, &spec.new, spec.tolerance)
                .map_err(|e| err(e.to_string()))?;
            let rendered = if spec.json {
                comparison.render_json()
            } else {
                comparison.render_text()
            };
            match &spec.out {
                Some(path) => std::fs::write(path, rendered)
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?,
                None => print!("{rendered}"),
            }
            Ok(if comparison.is_clean() {
                Outcome::Clean
            } else {
                Outcome::Drift
            })
        }
        Command::Trend(spec) => {
            let history = match &spec.append {
                Some(results_path) => {
                    let commit = spec
                        .commit
                        .as_deref()
                        .expect("the parser pairs --append with --commit");
                    let results = load_result_set(results_path).map_err(|e| err(e.to_string()))?;
                    let entry = HistoryEntry::from_result_set(
                        commit,
                        spec.timestamp.as_deref().unwrap_or("unrecorded"),
                        spec.cells_per_sec.unwrap_or(f64::NAN),
                        &results,
                    );
                    let history =
                        append_entry(&spec.history, &entry).map_err(|e| err(e.to_string()))?;
                    eprintln!(
                        "appended {} ({} cells) to {} — {} entries",
                        commit,
                        entry.cells.len(),
                        spec.history,
                        history.entries.len()
                    );
                    history
                }
                None => load_history(&spec.history).map_err(|e| err(e.to_string()))?,
            };
            let cfg = TrendConfig {
                last: spec.last,
                bands: spec.bands.clone(),
            };
            let report = analyze(&history, &cfg).map_err(err)?;
            let rendered = if spec.json {
                report.render_json()
            } else {
                report.render_text()
            };
            match &spec.out {
                Some(path) => std::fs::write(path, rendered)
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?,
                None => print!("{rendered}"),
            }
            Ok(if report.is_clean() {
                Outcome::Clean
            } else {
                Outcome::Drift
            })
        }
        Command::Lint(spec) => {
            let root = match &spec.root {
                Some(r) => std::path::PathBuf::from(r),
                None => {
                    let cwd = std::env::current_dir()
                        .map_err(|e| err(format!("cannot read current dir: {e}")))?;
                    doall_lint::find_workspace_root(&cwd).ok_or_else(|| {
                        err("no workspace manifest above the current dir; pass --root")
                    })?
                }
            };
            let only = spec
                .only
                .iter()
                .flatten()
                .map(|s| doall_lint::RuleId::parse(s).map_err(err))
                .collect::<Result<Vec<_>, _>>()?;
            let report =
                doall_lint::lint_root(&root, &doall_lint::LintOptions { only }).map_err(err)?;
            let rendered = if spec.json {
                report.render_json()
            } else {
                report.render_text()
            };
            match &spec.out {
                Some(path) => std::fs::write(path, rendered)
                    .map_err(|e| err(format!("cannot write {path}: {e}")))?,
                None => print!("{rendered}"),
            }
            Ok(if report.is_clean() {
                Outcome::Clean
            } else {
                Outcome::Drift
            })
        }
        Command::Contention { p, n, seed } => {
            if *p == 0 || *n == 0 {
                return Err(err("-p and -n must be positive"));
            }
            let sched = Schedules::random(*p, *n, *seed);
            let cont = sched.contention();
            println!("random list: {p} schedules over [{n}] (seed {seed})");
            println!(
                "Cont(Σ) = {} ({})",
                cont.value,
                if cont.exact { "exact" } else { "estimate" }
            );
            println!(
                "{:>6} {:>12} {:>14} {:>8}",
                "d", "(d)-Cont", "Thm 4.4 bound", "ratio"
            );
            let mut d = 1usize;
            while d <= *n {
                let dc = crate::perms::d_contention_of_list(sched.as_slice(), d);
                let th = crate::perms::dcont_threshold(*n, *p, d);
                println!(
                    "{d:>6} {:>12} {:>14.1} {:>8.3}",
                    dc.value,
                    th,
                    dc.value as f64 / th
                );
                d *= 2;
            }
            Ok(Outcome::Clean)
        }
        Command::Bounds { p, t, d } => {
            if *p == 0 || *t == 0 || *d == 0 {
                return Err(err("-p, -t, -d must be positive"));
            }
            println!("bounds for p={p}, t={t}, d={d}:");
            println!(
                "  lower bound (Thm 3.1/3.4):  {:.0}",
                bounds::lower_bound_work(*p, *t, *d)
            );
            println!(
                "  DA upper (Thm 5.5, ε=0.5):  {:.0}",
                bounds::da_upper_bound(*p, *t, *d, 0.5)
            );
            println!(
                "  PA upper (Cor 6.4/6.5):     {:.0}",
                bounds::pa_upper_bound(*p, *t, *d)
            );
            println!(
                "  PA messages (Cor 6.4/6.5):  {:.0}",
                bounds::pa_message_bound(*p, *t, *d)
            );
            println!(
                "  oblivious ceiling p·t:      {:.0}",
                bounds::oblivious_work(*p, *t)
            );
            Ok(Outcome::Clean)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_simulate() {
        let cmd = parse(&args("simulate --algo paran2 -p 8 -t 32 -d 4")).unwrap();
        match cmd {
            Command::Simulate(spec) => {
                assert_eq!(spec.algo, "paran2");
                assert_eq!((spec.p, spec.t, spec.d), (8, 32, 4));
                assert_eq!(spec.adversary, "stage");
                assert_eq!(spec.seed, 0);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn parses_flags_in_any_order() {
        let cmd = parse(&args(
            "simulate -t 32 --seed 7 --adversary fixed -d 4 -p 8 --algo da:3",
        ))
        .unwrap();
        match cmd {
            Command::Simulate(spec) => {
                assert_eq!(spec.algo, "da:3");
                assert_eq!(spec.adversary, "fixed");
                assert_eq!(spec.seed, 7);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn missing_required_flags_error() {
        assert!(
            parse(&args("simulate --algo paran1 -p 8 -t 32")).is_err(),
            "no -d"
        );
        assert!(
            parse(&args("simulate --algo paran1 -t 32 -d 2")).is_err(),
            "no -p"
        );
        assert!(parse(&args("simulate -p 1 -t 1 -d 1")).is_err(), "no algo");
    }

    #[test]
    fn unknown_keys_error_eagerly() {
        assert!(parse(&args("simulate --algo nope -p 2 -t 2 -d 1")).is_err());
        assert!(parse(&args(
            "simulate --algo paran1 -p 2 -t 2 -d 1 --adversary nope"
        ))
        .is_err());
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("simulate --algo da:99 -p 2 -t 2 -d 1")).is_err());
        assert!(parse(&args("simulate --algo gossip:0 -p 2 -t 2 -d 1")).is_err());
    }

    #[test]
    fn parses_other_subcommands() {
        assert_eq!(
            parse(&args("contention -p 4 -n 16")).unwrap(),
            Command::Contention {
                p: 4,
                n: 16,
                seed: 0
            }
        );
        assert_eq!(
            parse(&args("bounds -p 4 -t 16 -d 2")).unwrap(),
            Command::Bounds { p: 4, t: 16, d: 2 }
        );
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn sweep_does_not_require_d() {
        assert!(matches!(
            parse(&args("sweep --algo padet -p 4 -t 8")).unwrap(),
            Command::Sweep(_)
        ));
    }

    #[test]
    fn spec_builds_all_algorithms_and_adversaries() {
        for algo in [
            "soloall", "oblido", "da:2", "da:3", "paran1", "paran2", "padet", "gossip:2",
        ] {
            for adv in [
                "unit",
                "fixed",
                "random",
                "stage",
                "bursty",
                "bursty:3",
                "lb",
                "lb:2",
                "lbrand",
                "lbrand:2",
                "crash:25@burst",
                "straggler:25:4",
            ] {
                let spec = RunSpec {
                    algo: algo.to_string(),
                    p: 4,
                    t: 8,
                    d: 2,
                    adversary: adv.to_string(),
                    seed: 1,
                };
                assert!(spec.algorithm().is_ok(), "{algo}");
                assert!(spec.adversary().is_ok(), "{adv}");
            }
        }
    }

    #[test]
    fn execute_simulate_small() {
        let cmd = parse(&args("simulate --algo padet -p 4 -t 8 -d 2 --seed 3")).unwrap();
        execute(&cmd).unwrap();
    }

    #[test]
    fn execute_bounds_and_contention() {
        execute(&Command::Bounds { p: 8, t: 64, d: 4 }).unwrap();
        execute(&Command::Contention {
            p: 3,
            n: 6,
            seed: 0,
        })
        .unwrap();
        execute(&Command::Help).unwrap();
    }

    #[test]
    fn execute_sweep_small() {
        let cmd = parse(&args("sweep --algo soloall -p 2 -t 4")).unwrap();
        execute(&cmd).unwrap();
    }

    #[test]
    fn execute_rejects_bad_bounds() {
        assert!(execute(&Command::Bounds { p: 0, t: 1, d: 1 }).is_err());
        assert!(execute(&Command::Contention {
            p: 0,
            n: 4,
            seed: 0
        })
        .is_err());
    }

    #[test]
    fn cli_error_displays_message() {
        let e = parse(&args("frobnicate")).unwrap_err();
        assert!(e.to_string().contains("frobnicate"));
    }

    /// Renders a [`RunSpec`] back into the argument vector that produces it.
    fn spec_args(sub: &str, spec: &RunSpec) -> Vec<String> {
        args(&format!(
            "{sub} --algo {} -p {} -t {} -d {} --adversary {} --seed {}",
            spec.algo, spec.p, spec.t, spec.d, spec.adversary, spec.seed
        ))
    }

    #[test]
    fn simulate_round_trips() {
        let spec = RunSpec {
            algo: "da:4".to_string(),
            p: 9,
            t: 81,
            d: 3,
            adversary: "bursty".to_string(),
            seed: 1234,
        };
        assert_eq!(
            parse(&spec_args("simulate", &spec)).unwrap(),
            Command::Simulate(spec)
        );
    }

    #[test]
    fn sweep_shorthand_builds_a_single_algorithm_grid() {
        let seed = u64::from(u32::MAX) + 1;
        let cmd = parse(&args(&format!(
            "sweep --algo gossip:3 -p 5 -t 40 -d 7 --adversary lbrand --seed {seed}"
        )))
        .unwrap();
        match cmd {
            Command::Sweep(spec) => {
                assert_eq!(spec.grid.algos, vec!["gossip:3"]);
                assert_eq!(
                    spec.grid.adversaries,
                    vec![AdversarySpec::Lbrand { stage: None }]
                );
                assert_eq!(spec.grid.shapes, vec![(5, 40)]);
                assert_eq!(spec.grid.ds, vec![7], "-d pins a single delay bound");
                assert_eq!(spec.grid.base_seed, seed);
                assert_eq!(spec.format, Format::Table);
            }
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn sweep_without_d_sweeps_powers_of_two() {
        let cmd = parse(&args("sweep --algo padet -p 4 -t 8")).unwrap();
        match cmd {
            Command::Sweep(spec) => assert_eq!(spec.grid.ds, vec![1, 2, 4, 8]),
            other => panic!("wrong command: {other:?}"),
        }
    }

    #[test]
    fn sweep_grid_flag_parses_and_conflicts_with_shorthand() {
        let argv = vec![
            "sweep".to_string(),
            "--grid".to_string(),
            "algos=da:3,paran1 advs=stage,unit shapes=4x8 ds=1,2 seeds=2 seed=5".to_string(),
            "--threads".to_string(),
            "2".to_string(),
            "--json".to_string(),
        ];
        match parse(&argv).unwrap() {
            Command::Sweep(spec) => {
                assert_eq!(spec.grid.algos, vec!["da:3", "paran1"]);
                assert_eq!(spec.grid.seeds, 2);
                assert_eq!(spec.threads, Some(2));
                assert_eq!(spec.format, Format::Json);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let conflicting = vec![
            "sweep".to_string(),
            "--grid".to_string(),
            "algos=paran1 shapes=4x8".to_string(),
            "--algo".to_string(),
            "padet".to_string(),
        ];
        assert!(parse(&conflicting).is_err());
        let bad_grid = vec![
            "sweep".to_string(),
            "--grid".to_string(),
            "algos=frobnicate shapes=4x8".to_string(),
        ];
        assert!(parse(&bad_grid).is_err());
    }

    #[test]
    fn sweep_grid_accepts_the_backends_axis() {
        use doall_bench::grid::Backend;
        let argv = vec![
            "sweep".to_string(),
            "--grid".to_string(),
            "algos=da:3 advs=unit,crash:25@burst backends=sim,threads shapes=8x32 ds=2 \
             seeds=2 seed=0"
                .to_string(),
        ];
        match parse(&argv).unwrap() {
            Command::Sweep(spec) => {
                assert_eq!(spec.grid.backends, vec![Backend::Sim, Backend::Threads]);
                // One cell per (algo × adv × shape × d × backend).
                assert_eq!(spec.grid.cells().len(), 4);
            }
            other => panic!("wrong command: {other:?}"),
        }
        let bad = vec![
            "sweep".to_string(),
            "--grid".to_string(),
            "algos=da:3 backends=gpu shapes=8x32".to_string(),
        ];
        let e = parse(&bad).unwrap_err().to_string();
        assert!(e.contains("unknown backend"), "{e}");
    }

    #[test]
    fn sweep_grid_accepts_parameterized_adversary_keys_verbatim() {
        use doall_bench::grid::CrashStagger;
        let argv = vec![
            "sweep".to_string(),
            "--grid".to_string(),
            "algos=da:3 advs=bursty:4,crash:25@burst,straggler:25:4 shapes=16x64 ds=2,8 seeds=3 \
             seed=0"
                .to_string(),
        ];
        match parse(&argv).unwrap() {
            Command::Sweep(spec) => {
                assert_eq!(
                    spec.grid.adversaries,
                    vec![
                        AdversarySpec::Bursty { period: Some(4) },
                        AdversarySpec::Crash {
                            pct: 25,
                            stagger: CrashStagger::Burst,
                        },
                        AdversarySpec::Straggler {
                            pct: 25,
                            slowdown: 4,
                        },
                    ]
                );
            }
            other => panic!("wrong command: {other:?}"),
        }
        // Legacy bare keys and zero-padded knobs still parse (the latter
        // canonicalized), and malformed knobs are CLI errors.
        assert!(parse(&args(
            "simulate --algo paran1 -p 2 -t 4 -d 2 --adversary bursty"
        ))
        .is_ok());
        assert!(parse(&args(
            "simulate --algo paran1 -p 2 -t 4 -d 2 --adversary crash:07"
        ))
        .is_ok());
        assert!(parse(&args(
            "simulate --algo paran1 -p 2 -t 4 -d 2 --adversary straggler:0:3"
        ))
        .is_err());
        assert!(parse(&args(
            "simulate --algo paran1 -p 2 -t 4 -d 2 --adversary bursty:0"
        ))
        .is_err());
    }

    #[test]
    fn parses_compare_subcommand() {
        assert_eq!(
            parse(&args("compare old.json new.json")).unwrap(),
            Command::Compare(CompareSpec {
                old: "old.json".to_string(),
                new: "new.json".to_string(),
                tolerance: 0.0,
                json: false,
                out: None,
            })
        );
        assert_eq!(
            parse(&args(
                "compare --tolerance 0.05 old.json --json new.json --out diff.txt"
            ))
            .unwrap(),
            Command::Compare(CompareSpec {
                old: "old.json".to_string(),
                new: "new.json".to_string(),
                tolerance: 0.05,
                json: true,
                out: Some("diff.txt".to_string()),
            })
        );
        assert!(parse(&args("compare one.json")).is_err(), "needs two files");
        assert!(parse(&args("compare a b c")).is_err(), "too many files");
        assert!(parse(&args("compare a b --tolerance -1")).is_err());
        assert!(parse(&args("compare a b --frob")).is_err());
    }

    #[test]
    fn parses_lint_subcommand() {
        assert_eq!(
            parse(&args("lint")).unwrap(),
            Command::Lint(LintSpec {
                json: false,
                out: None,
                only: None,
                root: None,
            })
        );
        assert_eq!(
            parse(&args(
                "lint --json --out lint.json --only D001,H001 --root ."
            ))
            .unwrap(),
            Command::Lint(LintSpec {
                json: true,
                out: Some("lint.json".to_string()),
                only: Some(vec!["D001".to_string(), "H001".to_string()]),
                root: Some(".".to_string()),
            })
        );
        assert!(parse(&args("lint --only")).is_err(), "flag needs a value");
        assert!(parse(&args("lint --only ,")).is_err(), "empty rule list");
        assert!(parse(&args("lint --only D999")).is_err(), "unknown rule");
        assert!(parse(&args("lint --frob")).is_err(), "unknown flag");
    }

    #[test]
    fn execute_lint_scans_a_workspace_and_reports_via_outcome() {
        let dir = std::env::temp_dir().join(format!("doall_cli_lint_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let src = dir.join("crates/doall-sim/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").unwrap();
        std::fs::write(src.join("probe.rs"), "use std::collections::HashMap;\n").unwrap();
        let out = dir.join("lint.txt");
        let dirty = Command::Lint(LintSpec {
            json: false,
            out: Some(out.display().to_string()),
            only: None,
            root: Some(dir.display().to_string()),
        });
        assert_eq!(execute(&dirty).unwrap(), Outcome::Drift);
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(
            text.contains("crates/doall-sim/src/probe.rs:1: D001"),
            "{text}"
        );
        // Restricting to an unrelated rule makes the same tree clean.
        let clean = Command::Lint(LintSpec {
            json: true,
            out: Some(out.display().to_string()),
            only: Some(vec!["D002".to_string()]),
            root: Some(dir.display().to_string()),
        });
        assert_eq!(execute(&clean).unwrap(), Outcome::Clean);
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"clean\": true"), "{json}");
        let bad_root = Command::Lint(LintSpec {
            json: false,
            out: None,
            only: None,
            root: Some(dir.join("nope").display().to_string()),
        });
        assert!(execute(&bad_root).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_parses_shard_size() {
        let cmd = parse(&args("sweep --algo soloall -p 2 -t 4 --shard-size 3")).unwrap();
        match cmd {
            Command::Sweep(spec) => assert_eq!(spec.shard_size, Some(3)),
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&args("sweep --algo soloall -p 2 -t 4")).unwrap() {
            Command::Sweep(spec) => assert_eq!(spec.shard_size, None, "default is auto"),
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&args("sweep --algo soloall -p 2 -t 4 --shard-size 0")).is_err());
        assert!(parse(&args("sweep --algo soloall -p 2 -t 4 --shard-size few")).is_err());
        assert!(parse(&args("sweep --algo soloall -p 2 -t 4 --shard-size")).is_err());
    }

    #[test]
    fn sweep_parses_compare_and_tolerance() {
        let cmd = parse(&args(
            "sweep --algo soloall -p 2 -t 4 --compare base.json --tolerance 0.1",
        ))
        .unwrap();
        match cmd {
            Command::Sweep(spec) => {
                assert_eq!(spec.compare.as_deref(), Some("base.json"));
                assert_eq!(spec.tolerance, 0.1);
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&args("sweep --algo soloall -p 2 -t 4 --tolerance x")).is_err());
    }

    #[test]
    fn execute_compare_and_sweep_compare_report_drift_via_outcome() {
        let dir = std::env::temp_dir();
        let base = dir.join(format!("doall_cli_compare_{}.json", std::process::id()));
        let base = base.to_str().unwrap().to_string();
        // A sweep writes its own baseline...
        let sweep = format!("sweep --algo soloall -p 2 -t 4 -d 1 --out {base}");
        assert_eq!(
            execute(&parse(&args(&sweep)).unwrap()).unwrap(),
            Outcome::Clean
        );
        // ...against which an identical rerun is clean, cell for cell.
        let rerun = format!("sweep --algo soloall -p 2 -t 4 -d 1 --out {base}.2 --compare {base}");
        assert_eq!(
            execute(&parse(&args(&rerun)).unwrap()).unwrap(),
            Outcome::Clean
        );
        assert_eq!(
            execute(&parse(&args(&format!("compare {base} {base}.2"))).unwrap()).unwrap(),
            Outcome::Clean
        );
        // Doctoring one value turns both paths into drift.
        let doctored = std::fs::read_to_string(&base).unwrap().replacen(
            "\"mean_work\": ",
            "\"mean_work\": 9",
            1,
        );
        std::fs::write(&base, doctored).unwrap();
        assert_eq!(
            execute(&parse(&args(&rerun)).unwrap()).unwrap(),
            Outcome::Drift
        );
        let diff_out = format!("{base}.diff");
        assert_eq!(
            execute(&parse(&args(&format!("compare {base} {base}.2 --out {diff_out}"))).unwrap())
                .unwrap(),
            Outcome::Drift
        );
        let table = std::fs::read_to_string(&diff_out).unwrap();
        assert!(table.contains("drift"), "{table}");
        assert!(table.contains("mean_work"), "{table}");
        // A huge tolerance swallows the doctored delta.
        assert_eq!(
            execute(&parse(&args(&format!("compare {base} {base}.2 --tolerance 1000"))).unwrap())
                .unwrap(),
            Outcome::Clean
        );
        // Missing files are errors (exit 2), not drift (exit 1).
        assert!(
            execute(&parse(&args("compare /nonexistent/a.json /nonexistent/b.json")).unwrap())
                .is_err()
        );
        for f in [base.clone(), format!("{base}.2"), diff_out] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn parses_test_subcommand() {
        assert_eq!(
            parse(&args("test --suite scenarios/")).unwrap(),
            Command::Test(TestSpec {
                suite: "scenarios/".to_string(),
                smoke: false,
                only: None,
                threads: None,
                shard_size: None,
                max_ticks: None,
                baseline: None,
                tolerance: 0.0,
                json: false,
                out: None,
                record: false,
            })
        );
        match parse(&args(
            "test --suite scenarios/ --smoke --only e01,e05 --threads 2 --shard-size 1 \
             --max-ticks 1000 --baseline base.json --tolerance 0.5 --json --out report.json",
        ))
        .unwrap()
        {
            Command::Test(spec) => {
                assert!(spec.smoke && spec.json);
                assert_eq!(
                    spec.only.as_deref(),
                    Some(&["e01".to_string(), "e05".to_string()][..])
                );
                assert_eq!(spec.threads, Some(2));
                assert_eq!(spec.shard_size, Some(1));
                assert_eq!(spec.max_ticks, Some(1000));
                assert_eq!(spec.baseline.as_deref(), Some("base.json"));
                assert_eq!(spec.tolerance, 0.5);
                assert_eq!(spec.out.as_deref(), Some("report.json"));
            }
            other => panic!("wrong command: {other:?}"),
        }
        assert!(parse(&args("test")).is_err(), "--suite is required");
        assert!(parse(&args("test --suite")).is_err(), "needs a value");
        assert!(
            parse(&args("test --suite s --only ,")).is_err(),
            "empty ids"
        );
        assert!(parse(&args("test --suite s --threads 0")).is_err());
        assert!(parse(&args("test --suite s --frob")).is_err());
        // --record regenerates the --baseline file, so it needs one.
        match parse(&args("test --suite s --record --baseline b.json")).unwrap() {
            Command::Test(spec) => assert!(spec.record),
            other => panic!("wrong command: {other:?}"),
        }
        let e = parse(&args("test --suite s --record")).unwrap_err();
        assert!(e.to_string().contains("--baseline"), "{e}");
    }

    #[test]
    fn parses_trend_subcommand() {
        // Bare `trend` defaults to the committed ledger, whole window.
        assert_eq!(
            parse(&args("trend")).unwrap(),
            Command::Trend(TrendSpec {
                history: "HISTORY.jsonl".to_string(),
                last: None,
                bands: Vec::new(),
                json: false,
                out: None,
                append: None,
                commit: None,
                timestamp: None,
                cells_per_sec: None,
            })
        );
        match parse(&args(
            "trend ledger.jsonl --last 5 --band mean_work=±1% --band mean_messages=2% \
             --json --out trend.json",
        ))
        .unwrap()
        {
            Command::Trend(spec) => {
                assert_eq!(spec.history, "ledger.jsonl");
                assert_eq!(spec.last, Some(5));
                assert_eq!(spec.bands.len(), 2);
                assert_eq!(spec.bands[0].metric, "mean_work");
                assert!((spec.bands[0].fraction - 0.01).abs() < 1e-12);
                assert!((spec.bands[1].fraction - 0.02).abs() < 1e-12);
                assert!(spec.json);
                assert_eq!(spec.out.as_deref(), Some("trend.json"));
            }
            other => panic!("wrong command: {other:?}"),
        }
        match parse(&args(
            "trend --append results.json --commit abc123 \
             --timestamp 2026-08-08T00:00:00Z --cells-per-sec 800",
        ))
        .unwrap()
        {
            Command::Trend(spec) => {
                assert_eq!(spec.append.as_deref(), Some("results.json"));
                assert_eq!(spec.commit.as_deref(), Some("abc123"));
                assert_eq!(spec.timestamp.as_deref(), Some("2026-08-08T00:00:00Z"));
                assert_eq!(spec.cells_per_sec, Some(800.0));
            }
            other => panic!("wrong command: {other:?}"),
        }
        // --append and --commit are a pair; provenance flags need them.
        assert!(parse(&args("trend --append results.json")).is_err());
        assert!(parse(&args("trend --commit abc")).is_err());
        assert!(parse(&args("trend --timestamp now")).is_err());
        assert!(parse(&args("trend --cells-per-sec 5")).is_err());
        // Garbage is rejected eagerly.
        assert!(parse(&args("trend --last 0")).is_err());
        assert!(parse(&args("trend --band mean_work")).is_err());
        assert!(parse(&args("trend --band =1%")).is_err());
        assert!(parse(&args("trend --cells-per-sec -3 --append r --commit c")).is_err());
        assert!(parse(&args("trend a.jsonl b.jsonl")).is_err());
        assert!(parse(&args("trend --frob")).is_err());
    }

    #[test]
    fn execute_trend_appends_gates_and_reports_via_outcome() {
        use doall_bench::history::parse_history;
        let dir = std::env::temp_dir().join(format!("doall_cli_trend_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let suite = dir.join("suite");
        std::fs::create_dir_all(&suite).unwrap();
        std::fs::write(
            suite.join("t.scn"),
            "id = t\ngrid = algos=soloall advs=unit shapes=2x4 ds=1 seeds=1 seed=0\n",
        )
        .unwrap();
        let results = dir.join("results.json");
        let ledger = dir.join("ledger.jsonl");
        let (suite, results, ledger) = (
            suite.to_str().unwrap().to_string(),
            results.to_str().unwrap().to_string(),
            ledger.to_str().unwrap().to_string(),
        );

        // An empty ledger is an error (exit 2), not a silent pass.
        let cmd = parse(&args(&format!("trend {ledger}"))).unwrap();
        assert!(execute(&cmd).is_err());

        // `test --record` writes the result set via the shared renderer...
        let cmd = parse(&args(&format!(
            "test --suite {suite} --record --baseline {results}"
        )))
        .unwrap();
        assert_eq!(execute(&cmd).unwrap(), Outcome::Clean);

        // ...and --append folds it into the ledger, one entry per commit.
        for commit in ["aaa", "bbb"] {
            let cmd = parse(&args(&format!(
                "trend {ledger} --append {results} --commit {commit} \
                 --timestamp 2026-08-08T00:00:00Z"
            )))
            .unwrap();
            assert_eq!(execute(&cmd).unwrap(), Outcome::Clean);
        }
        let text = std::fs::read_to_string(&ledger).unwrap();
        assert_eq!(parse_history(&text).unwrap().entries.len(), 2);

        // Duplicate commits are refused (exit 2) without touching the file.
        let cmd = parse(&args(&format!(
            "trend {ledger} --append {results} --commit aaa"
        )))
        .unwrap();
        assert!(execute(&cmd).is_err());
        assert_eq!(std::fs::read_to_string(&ledger).unwrap(), text);

        // Identical entries are flat: any band passes, report renders.
        let out = dir.join("trend.txt");
        let out_path = out.to_str().unwrap().to_string();
        let cmd = parse(&args(&format!(
            "trend {ledger} --band mean_work=0% --out {out_path}"
        )))
        .unwrap();
        assert_eq!(execute(&cmd).unwrap(), Outcome::Clean);
        let table = std::fs::read_to_string(&out).unwrap();
        assert!(table.contains("perf trajectory"), "{table}");
        assert!(table.contains("mean_work"), "{table}");

        // Doctor the newer entry's mean_work upward: the band trips.
        let doctored = {
            let mut lines: Vec<String> = text.lines().map(String::from).collect();
            lines[1] = lines[1].replacen("\"mean_work\": ", "\"mean_work\": 9", 1);
            format!("{}\n", lines.join("\n"))
        };
        std::fs::write(&ledger, doctored).unwrap();
        let cmd = parse(&args(&format!("trend {ledger} --band mean_work=1%"))).unwrap();
        assert_eq!(execute(&cmd).unwrap(), Outcome::Drift);
        // The JSON document agrees and parses.
        let json_out = dir.join("trend.json");
        let json_path = json_out.to_str().unwrap().to_string();
        let cmd = parse(&args(&format!(
            "trend {ledger} --band mean_work=1% --json --out {json_path}"
        )))
        .unwrap();
        assert_eq!(execute(&cmd).unwrap(), Outcome::Drift);
        let doc = doall_bench::parse_json(&std::fs::read_to_string(&json_out).unwrap()).unwrap();
        assert_eq!(doc.get("clean"), Some(&doall_bench::Json::Bool(false)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn execute_test_runs_a_suite_and_reports_via_outcome() {
        let dir = std::env::temp_dir().join(format!("doall_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let passing = "id = pass\n\
                       grid = algos=soloall advs=unit shapes=2x4 ds=1 seeds=1 seed=0\n\
                       assert work >= t\n";
        std::fs::write(dir.join("pass.scn"), passing).unwrap();
        let suite = dir.to_str().unwrap().to_string();
        let report = dir.join("report.txt");
        let report_path = report.to_str().unwrap().to_string();

        // A clean suite run writes its table and exits 0.
        let base = dir.join("base.json");
        let base_path = base.to_str().unwrap().to_string();
        let cmd = parse(&args(&format!("test --suite {suite} --out {report_path}"))).unwrap();
        assert_eq!(execute(&cmd).unwrap(), Outcome::Clean);
        let table = std::fs::read_to_string(&report).unwrap();
        assert!(table.contains("pass"), "{table}");
        assert!(table.contains("total"), "{table}");

        // Build a baseline from the suite's own records and verify the
        // baseline path is wired: identical rerun clean, doctored drift.
        let scenarios = load_dir(Path::new(&suite)).unwrap();
        let rep = run_suite(&scenarios, &SuiteConfig::default()).unwrap();
        std::fs::write(&base, rep.results.to_json()).unwrap();
        let cmd = parse(&args(&format!(
            "test --suite {suite} --baseline {base_path}"
        )))
        .unwrap();
        assert_eq!(execute(&cmd).unwrap(), Outcome::Clean);
        let doctored = std::fs::read_to_string(&base).unwrap().replacen(
            "\"mean_work\": ",
            "\"mean_work\": 9",
            1,
        );
        std::fs::write(&base, doctored).unwrap();
        assert_eq!(execute(&cmd).unwrap(), Outcome::Drift);

        // A failing assertion is Drift (exit 1), with the cell named in
        // the JSON report on stdout.
        let failing = "id = fail\n\
                       grid = algos=soloall advs=unit shapes=2x4 ds=1 seeds=1 seed=0\n\
                       assert work <= 1\n";
        std::fs::write(dir.join("fail.scn"), failing).unwrap();
        let cmd = parse(&args(&format!("test --suite {suite} --json"))).unwrap();
        assert_eq!(execute(&cmd).unwrap(), Outcome::Drift);

        // --only filters; unknown ids are errors (exit 2).
        let cmd = parse(&args(&format!("test --suite {suite} --only pass"))).unwrap();
        assert_eq!(execute(&cmd).unwrap(), Outcome::Clean);
        let cmd = parse(&args(&format!("test --suite {suite} --only nope"))).unwrap();
        let e = execute(&cmd).unwrap_err();
        assert!(e.to_string().contains("unknown scenario `nope`"), "{e}");

        // Unreadable suites and malformed scenarios are errors, not drift.
        let cmd = parse(&args("test --suite /nonexistent-doall")).unwrap();
        assert!(execute(&cmd).is_err());
        std::fs::write(dir.join("bad.scn"), "id = bad\nbogus line\n").unwrap();
        let cmd = parse(&args(&format!("test --suite {suite}"))).unwrap();
        let e = execute(&cmd).unwrap_err();
        assert!(e.to_string().contains("bad.scn"), "{e}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn contention_and_bounds_round_trip() {
        let cont = Command::Contention {
            p: 7,
            n: 29,
            seed: 99,
        };
        assert_eq!(
            parse(&args("contention -p 7 -n 29 --seed 99")).unwrap(),
            cont
        );
        let bounds = Command::Bounds {
            p: 31,
            t: 977,
            d: 13,
        };
        assert_eq!(parse(&args("bounds -p 31 -t 977 -d 13")).unwrap(), bounds);
    }

    #[test]
    fn flags_without_values_error() {
        for line in [
            "simulate --algo",
            "simulate --algo paran1 -p",
            "sweep --algo paran1 -p 2 -t",
            "contention -p 2 -n",
            "bounds -p 2 -t 4 -d",
        ] {
            let e = parse(&args(line)).unwrap_err();
            assert!(e.to_string().contains("needs a value"), "{line}: {e}");
        }
    }

    #[test]
    fn non_numeric_values_error() {
        for line in [
            "simulate --algo paran1 -p many -t 4 -d 1",
            "simulate --algo paran1 -p 4 -t 4 -d soon",
            "sweep --algo paran1 -p 4 -t x",
            "contention -p 2 -n nope",
            "bounds -p 2 -t 4 -d -1",
        ] {
            let e = parse(&args(line)).unwrap_err();
            assert!(
                e.to_string().contains("not a positive integer"),
                "{line}: {e}"
            );
        }
    }

    #[test]
    fn unknown_flags_error_per_subcommand() {
        assert!(parse(&args("simulate --algo paran1 -p 2 -t 2 -d 1 --frob 3")).is_err());
        assert!(parse(&args("contention -p 2 -n 4 --algo paran1")).is_err());
        assert!(parse(&args("bounds -p 2 -t 4 -d 1 --seed 3")).is_err());
    }

    #[test]
    fn zero_values_are_rejected() {
        assert!(parse(&args("simulate --algo paran1 -p 0 -t 2 -d 1")).is_err());
        assert!(parse(&args("simulate --algo paran1 -p 2 -t 0 -d 1")).is_err());
        assert!(parse(&args("simulate --algo paran1 -p 2 -t 2 -d 0")).is_err());
    }

    #[test]
    fn contention_seed_defaults_to_zero() {
        assert_eq!(
            parse(&args("contention -p 2 -n 4")).unwrap(),
            Command::Contention {
                p: 2,
                n: 4,
                seed: 0
            }
        );
    }

    #[test]
    fn missing_contention_and_bounds_flags_error() {
        assert!(parse(&args("contention -n 4")).is_err());
        assert!(parse(&args("contention -p 4")).is_err());
        assert!(parse(&args("bounds -t 4 -d 1")).is_err());
        assert!(parse(&args("bounds -p 4 -d 1")).is_err());
        assert!(parse(&args("bounds -p 4 -t 4")).is_err());
    }
}
