//! **doall** — message-delay-sensitive Do-All algorithms for asynchronous
//! message-passing processors.
//!
//! A faithful, executable reproduction of Kowalski & Shvartsman,
//! *Performing work with asynchronous processors: message-delay-sensitive
//! bounds* (PODC 2003; Information and Computation 203 (2005) 181–210).
//!
//! # The problem
//!
//! **Do-All**: given `t` similar, idempotent tasks, perform them all with
//! `p` asynchronous message-passing processors, under an omniscient
//! adversary that controls processor speeds, crashes (≥ 1 survivor), and
//! message delays bounded by an integer `d` that the algorithms never
//! learn. The trivial solution (everyone does everything) costs
//! `W = p·t` work; the paper's algorithms are *subquadratic whenever
//! `d = o(t)`*, trading communication for work.
//!
//! # What's in the box
//!
//! * [`algorithms`] — the paper's algorithm families as cloneable state
//!   machines: the tree-based deterministic [`algorithms::Da`] (Thm 5.4/5.5:
//!   `O(t·p^ε + p·min{t,d}·⌈t/d⌉^ε)` work), the schedule-based
//!   [`algorithms::PaRan1`] / [`algorithms::PaRan2`] / [`algorithms::PaDet`]
//!   (Cor 6.4/6.5: `O(t log p + p·d·log(2 + t/d))` work), and the
//!   [`algorithms::SoloAll`] / [`algorithms::ObliDo`] baselines.
//! * [`sim`] — a discrete-event simulator of the paper's execution model
//!   with a full adversary suite, including the Theorem 3.1/3.4
//!   lower-bound adversaries.
//! * [`perms`] — permutations, left-to-right maxima, contention and the
//!   delay-sensitive `d`-contention (Section 4), with certified
//!   low-contention schedule search.
//! * [`bounds`] — every closed-form bound in the paper, for
//!   measured-vs-bound experiment tables.
//! * [`runtime`] — the same algorithms on real OS threads with delayed
//!   channels.
//!
//! # Quickstart
//!
//! ```
//! use doall::prelude::*;
//!
//! // 8 processors, 64 tasks.
//! let instance = Instance::new(8, 64)?;
//!
//! // The deterministic schedule algorithm with a random low-d-contention
//! // schedule list (Corollary 4.5 construction).
//! let algorithm = PaDet::random_for(instance, 42);
//!
//! // A 4-adversary that delays every message the full 4 time units.
//! let report = Simulation::builder(instance)
//!     .procs(algorithm.spawn(instance))
//!     .adversary(Box::new(FixedDelay::new(4)))
//!     .build()
//!     .run();
//!
//! assert!(report.completed);
//! // Subquadratic: far below the oblivious p·t = 512.
//! assert!(report.work < 512);
//! # Ok::<(), doall::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use doall_core::{
    BitSet, CoreError, DoAllProcess, DoneSet, Instance, JobCursor, JobId, JobMap, Message,
    MessageTally, ProcId, RunReport, StepOutcome, TaskId, WorkTally,
};

/// The paper's algorithms and baselines (re-export of `doall-algorithms`).
pub mod algorithms {
    pub use doall_algorithms::*;
}

/// The discrete-event simulator and adversary suite (re-export of
/// `doall-sim`).
pub mod sim {
    pub use doall_sim::*;
}

/// Permutations and contention (re-export of `doall-perms`).
pub mod perms {
    pub use doall_perms::*;
}

/// Closed-form complexity bounds (re-export of `doall-bounds`).
pub mod bounds {
    pub use doall_bounds::*;
}

/// Threaded runner (re-export of `doall-runtime`).
pub mod runtime {
    pub use doall_runtime::*;
}

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::algorithms::{Algorithm, Da, ObliDo, PaDet, PaGossip, PaRan1, PaRan2, SoloAll};
    pub use crate::sim::adversary::{
        BurstyDelay, CrashSchedule, FixedDelay, LowerBoundAdversary, RandomDelay, RandomSubset,
        RandomizedLbAdversary, RoundRobin, StageAligned, Stragglers, UnitDelay,
    };
    pub use crate::sim::{Adversary, Simulation, TraceMode};
    pub use crate::{Instance, RunReport};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_round_trip() {
        let instance = Instance::new(4, 16).unwrap();
        let report = Simulation::builder(instance)
            .procs(PaRan2::new(1).spawn(instance))
            .adversary(Box::new(UnitDelay))
            .build()
            .run();
        assert!(report.completed);
    }
}
