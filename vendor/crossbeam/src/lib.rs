//! Vendored, dependency-free stand-in for the `crossbeam` crate, exposing
//! the subset this workspace uses: unbounded MPSC channels. Backed by
//! `std::sync::mpsc`, which provides the same reliable-FIFO-per-sender
//! semantics the runtime's router needs (single consumer per receiver is
//! all the workspace requires). No access to crates.io in the build
//! environment; swap the real crate back in via `Cargo.toml` when online.

#![forbid(unsafe_code)]

/// MPSC channels (mirror of `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half (clonable).
    pub type Sender<T> = std::sync::mpsc::Sender<T>;

    /// Receiving half.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates an unbounded FIFO channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn round_trip_and_timeout() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        let tx2 = tx.clone();
        tx2.send(8).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)).unwrap(), 8);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }
}
