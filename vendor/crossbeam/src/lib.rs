//! Vendored, dependency-free stand-in for the `crossbeam` crate, exposing
//! the subset this workspace uses: unbounded MPSC channels. Backed by
//! `std::sync::mpsc`, which provides the same reliable-FIFO-per-sender
//! semantics the runtime's router needs (single consumer per receiver is
//! all the workspace requires). No access to crates.io in the build
//! environment; swap the real crate back in via `Cargo.toml` when online.

#![forbid(unsafe_code)]

/// Scoped threads (subset of `crossbeam::thread`), backed by
/// [`std::thread::scope`] (stable since Rust 1.63, which provides the same
/// guarantee the real crate does: every spawned thread is joined before
/// `scope` returns, so borrows of the enclosing stack frame are sound).
///
/// API deviation from the published crate: `Scope::spawn` takes a plain
/// `FnOnce()` closure (std style) rather than crossbeam's `FnOnce(&Scope)`,
/// and the `Result` is always `Ok` unless a spawned thread panicked — a
/// panic in any spawned thread is propagated by `std::thread::scope`
/// itself, so callers that `.expect()` the result keep crossbeam's
/// fail-fast behaviour.
pub mod thread {
    /// Runs `f` with a [`std::thread::Scope`]; all threads spawned on the
    /// scope are joined before this returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (std propagates child panics by panicking);
    /// the `Result` exists to mirror `crossbeam::thread::scope`'s
    /// signature so call sites port verbatim to the published crate.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }
}

/// MPSC channels (mirror of `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half (clonable).
    pub type Sender<T> = std::sync::mpsc::Sender<T>;

    /// Receiving half.
    pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

    /// Creates an unbounded FIFO channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let total = super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            7usize
        })
        .expect("no panics");
        assert_eq!(total, 7);
        assert_eq!(
            counter.load(Ordering::Relaxed),
            4,
            "all joined before return"
        );
    }

    #[test]
    fn round_trip_and_timeout() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 7);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        let tx2 = tx.clone();
        tx2.send(8).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)).unwrap(), 8);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }
}
