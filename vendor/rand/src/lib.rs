//! Vendored, dependency-free stand-in for the `rand` crate, exposing the
//! subset of the 0.9 API this workspace uses. The build environment has no
//! access to crates.io, so the real crate cannot be fetched; this stub keeps
//! the same module paths and trait names so swapping the real `rand` back in
//! is a one-line `Cargo.toml` change.
//!
//! Provided surface:
//!
//! * [`RngCore`] / [`Rng`] with `random`, `random_range`, `random_bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — deterministic,
//!   statistically solid for simulation workloads, NOT cryptographic);
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates);
//! * [`seq::index::sample`] (distinct indices without replacement).

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirroring the real crate's design).
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (uniform over the type; `[0, 1)` for floats).
    fn random<T: StandardUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a (half-open or inclusive) integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A deterministically seedable generator.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (the only constructor this
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased draw from `[0, span)` by rejection sampling the top multiple
/// of `span` within the 64-bit space.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman–Vigna),
    /// seeded through SplitMix64 as its authors recommend. Deterministic
    /// per seed, `Clone` + `Debug`, and fast; not cryptographically secure.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::RngCore;

        /// The indices chosen by [`sample`], iterable as `usize`.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of chosen indices.
            #[must_use]
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were chosen.
            #[must_use]
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consumes into a plain vector.
            #[must_use]
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Iterates over the chosen indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length`, in random
        /// order, by a partial Fisher–Yates pass.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut idx: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + crate::uniform_below(rng, (length - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx.truncate(amount);
            IndexVec(idx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(1u64..=5);
            assert!((1..=5).contains(&y));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_sample_is_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let picks = super::seq::index::sample(&mut rng, 20, 8);
        let mut v = picks.into_vec();
        assert_eq!(v.len(), 8);
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 8, "indices must be distinct");
        assert!(v.iter().all(|&i| i < 20));
    }
}
