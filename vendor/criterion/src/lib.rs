//! Vendored, dependency-free stand-in for the `criterion` benchmark
//! harness, exposing the subset of the API this workspace uses. The build
//! environment has no access to crates.io; this stub keeps names and module
//! paths compatible so the real crate can be swapped back in later.
//!
//! Measurement model: each benchmark closure is warmed up briefly, then
//! timed over adaptive batches until ~`sample_size` samples or a small time
//! budget is reached; the median, minimum, and maximum per-iteration times
//! are printed. No plots, no statistics files — just honest numbers on
//! stdout, enough to compare hot paths run-to-run on the same machine.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortises setup cost. The stub runs one
/// setup per measured invocation regardless of the hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times closures handed to `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// Collected per-iteration durations (nanoseconds).
    recorded: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize, budget: Duration) -> Self {
        Bencher {
            samples,
            budget,
            recorded: Vec::new(),
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and per-batch calibration: grow the batch until it is
        // long enough to time reliably (~100µs) or the routine is slow.
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(100) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64 / batch as f64;
            self.recorded.push(nanos);
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` over values produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples.max(10) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed().as_nanos() as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn human(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos / 1_000_000_000.0)
    }
}

fn report(name: &str, recorded: &mut [f64]) {
    if recorded.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    recorded.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = recorded[recorded.len() / 2];
    let lo = recorded[0];
    let hi = recorded[recorded.len() - 1];
    println!(
        "{name:<48} time: [{} {} {}]",
        human(lo),
        human(median),
        human(hi)
    );
}

/// A named group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    /// Group-scoped override; the parent's default is untouched so the
    /// setting cannot leak into later groups (matching real criterion).
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&id, samples, f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            budget: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    fn run_one<F>(&mut self, id: &str, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(samples, self.budget);
        f(&mut bencher);
        report(id, &mut bencher.recorded);
    }

    /// Runs one free-standing benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let samples = self.sample_size;
        self.run_one(&id, samples, f);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// Declares a group runner: `criterion_group!(benches, f1, f2)` produces a
/// function `benches()` that runs each `fi(&mut Criterion)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("smoke/iter", |b| b.iter(|| black_box(3u64 + 4)));
        let mut g = c.benchmark_group("group");
        g.sample_size(5);
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| black_box(x * 2), BatchSize::SmallInput);
        });
        g.finish();
    }

    #[test]
    fn human_units() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("µs"));
        assert!(human(12_000_000.0).ends_with("ms"));
        assert!(human(12_000_000_000.0).ends_with(" s"));
    }
}
