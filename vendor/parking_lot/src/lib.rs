//! Vendored, dependency-free stand-in for `parking_lot`, exposing the
//! subset this workspace uses: a `Mutex` whose `lock()` needs no
//! `.unwrap()`. Backed by `std::sync::Mutex` with poison recovery (a
//! poisoned lock hands back the guard — `parking_lot` has no poisoning at
//! all, so this matches its observable behaviour). No access to crates.io
//! in the build environment.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    #[must_use]
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    #[must_use]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on
    /// poisoning (matching `parking_lot`, which has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Arc::new(Mutex::new(0u32));
        {
            *m.lock() += 41;
        }
        *Arc::clone(&m).lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn lock_survives_poisoning() {
        let m = Arc::new(Mutex::new(5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        assert_eq!(*m.lock(), 5, "lock() must still hand out the guard");
    }
}
