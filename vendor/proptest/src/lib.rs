//! Vendored, dependency-free stand-in for the `proptest` crate, exposing
//! the subset of the API this workspace uses. The build environment has no
//! access to crates.io; this stub keeps module paths and names compatible
//! so the real crate can be swapped back in without touching test code.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, doc comments,
//!   `#[test]`, and `arg in strategy` bindings;
//! * integer-range strategies (`0usize..300`, `1u64..=8`), [`any`],
//!   tuples of strategies, and `prop::collection::vec`;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * [`test_runner::ProptestConfig`] and [`test_runner::TestCaseError`].
//!
//! Semantics: each test runs `cases` times with inputs drawn from a
//! deterministic per-test RNG (seeded from the test function's name), so
//! failures are reproducible run-to-run. There is **no shrinking**; the
//! failing inputs are printed instead.

#![forbid(unsafe_code)]

/// Configuration and error types for generated test runners.
pub mod test_runner {
    use core::fmt;

    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to execute per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real crate defaults to 256; 64 keeps the workspace's
            // simulation-heavy properties fast in CI while still giving
            // coverage. Tests that need more ask via `with_cases`.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The inputs were rejected (treated as a skip).
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// An input rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// Deterministic SplitMix64 stream feeding the strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `span` (rejection-sampled, unbiased).
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            if span.is_power_of_two() {
                return self.next_u64() & (span - 1);
            }
            let zone = u64::MAX - (u64::MAX % span);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % span;
                }
            }
        }
    }

    /// Renders a caught panic payload for the failure report.
    #[must_use]
    pub fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            format!("panicked: {s}")
        } else if let Some(s) = payload.downcast_ref::<String>() {
            format!("panicked: {s}")
        } else {
            "panicked with a non-string payload".to_string()
        }
    }

    /// FNV-1a, used to give every test its own deterministic seed.
    #[must_use]
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Something that can produce values of `Value` from a random stream.
    pub trait Strategy {
        /// The produced type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + i128::from(rng.below(span))) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + i128::from(rng.below(span + 1))) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy of [`crate::any`]: the full domain of `T`.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Constructs the marker (use [`crate::any`] instead).
        #[must_use]
        pub fn new() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident / $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A / 0, B / 1);
        (A / 0, B / 1, C / 2);
        (A / 0, B / 1, C / 2, D / 3);
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// Admissible length specifications for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors with element strategy `S`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Returns the whole-domain strategy for `T` (e.g. `any::<u64>()`).
#[must_use]
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Everything a property-test module needs, in one glob import.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of the real crate's `prop` re-export
    /// (`prop::collection::vec` and friends).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// optional formatted message) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    ::std::format!($($fmt)+), l, r
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let case_seed = seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    let mut rng = $crate::test_runner::TestRng::new(case_seed);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    // Run the body with panics caught, so an `unwrap()` deep
                    // inside still gets the failing inputs reported.
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::core::result::Result::Ok(())
                        },
                    ));
                    let failure: ::core::option::Option<::std::string::String> = match outcome {
                        ::core::result::Result::Ok(::core::result::Result::Ok(())) => ::core::option::Option::None,
                        ::core::result::Result::Ok(::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        )) => ::core::option::Option::None,
                        ::core::result::Result::Ok(::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(reason),
                        )) => ::core::option::Option::Some(reason),
                        ::core::result::Result::Err(payload) => ::core::option::Option::Some(
                            $crate::test_runner::panic_reason(payload.as_ref()),
                        ),
                    };
                    if let ::core::option::Option::Some(reason) = failure {
                        // Inputs were moved into the body; regenerate them
                        // from the same seed to render the report. Formatting
                        // happens only on this (failing) path, never for the
                        // common all-pass run.
                        let mut rng = $crate::test_runner::TestRng::new(case_seed);
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                        let inputs = ::std::format!(
                            concat!($("  ", stringify!($arg), " = {:?}\n",)*),
                            $(&$arg),*
                        );
                        panic!(
                            "property `{}` falsified on case {}/{}:\n{}\ninputs:\n{}",
                            stringify!($name), case + 1, config.cases, reason, inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// The macro machinery itself: ranges respect bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 1u64..=4, z in any::<u64>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert_eq!(z, z);
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_work(pair in prop::collection::vec((0usize..4, 0u64..50), 0..10)) {
            for (a, b) in pair {
                prop_assert!(a < 4);
                prop_assert!(b < 50);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_form_parses(x in 0usize..2) {
            prop_assert!(x < 2);
        }
    }

    #[test]
    fn panic_in_body_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[allow(unused)]
                fn panics(x in 0usize..4) {
                    let empty: Vec<usize> = Vec::new();
                    let _ = empty.first().expect("boom");
                }
            }
            panics();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("panicked: boom"), "got: {msg}");
        assert!(msg.contains("x ="), "inputs must be reported, got: {msg}");
    }

    #[test]
    fn failure_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[allow(unused)]
                fn always_fails(x in 0usize..4) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("falsified"), "got: {msg}");
        assert!(msg.contains("x ="), "got: {msg}");
    }
}
