//! SETI-style distributed search on **real OS threads**.
//!
//! `p` worker threads scan `t` segments of a synthetic signal for a
//! planted pattern. Each segment scan is an idempotent task; workers
//! coordinate with PaRan2 over real crossbeam channels through a router
//! that injects random message delays — the wall-clock analogue of the
//! d-adversary. This exercises `doall-runtime`: the exact same state
//! machines the simulator drives, under genuine parallelism.
//!
//! ```text
//! cargo run --example distributed_search
//! ```

use doall::prelude::*;
use doall::runtime::{Runtime, RuntimeConfig};
use std::sync::Arc;
use std::time::Duration;

/// Synthetic "sky": deterministic pseudo-noise with a pattern planted in
/// one segment. The scan is the *idempotent task body* — executed by
/// whichever worker the Do-All machinery routes the segment to (possibly
/// more than once; idempotence makes that harmless).
fn scan_segment(segment: usize) -> bool {
    // A cheap noise function with the signal planted in segment 137.
    let noise = (0..64u64).fold(segment as u64, |h, i| {
        h.wrapping_mul(6364136223846793005).wrapping_add(i)
    });
    segment == 137 || noise == u64::MAX // noise never hits; 137 is the hit
}

fn main() -> Result<(), doall::CoreError> {
    let p = 8; // worker threads
    let t = 256; // signal segments
    let instance = Instance::new(p, t)?;

    println!("distributed search: {p} workers, {t} segments, real threads + delayed channels\n");

    let config = RuntimeConfig {
        max_delay: Duration::from_micros(300),
        seed: 1,
        timeout: Duration::from_secs(30),
        crash_after_steps: Vec::new(),
        // Pace the workers so the run genuinely interleaves (a full-speed
        // worker can otherwise finish before its peers are scheduled).
        step_interval: Duration::from_micros(50),
    };

    // PaRan2: each worker repeatedly picks a uniformly random segment not
    // yet known-scanned — the variant the paper recommends for its low
    // randomness budget. The task body actually scans the segment and
    // records hits (idempotently: re-scans re-insert the same hit).
    let algorithm = PaRan2::new(99);
    let hits = Arc::new(parking_hits::HitSet::new());
    let body = {
        let hits = Arc::clone(&hits);
        Arc::new(move |task: doall::TaskId| {
            if scan_segment(task.index()) {
                hits.record(task.index());
            }
        })
    };
    let report = Runtime::builder(config.clone())
        .tasks(body.clone())
        .run(instance, algorithm.spawn(instance))
        .expect("valid setup")
        .report;

    println!("run report: {report}");
    assert!(report.completed, "the sky must be fully scanned");
    println!("signal found in segments: {:?}", hits.sorted());
    assert_eq!(hits.sorted(), vec![137]);

    println!(
        "\nwork split across workers: {:?}",
        report.work_per_processor
    );
    println!(
        "total steps {} vs oblivious p·t = {} — cooperation pays even with real-world jitter",
        report.work,
        p * t
    );

    // Same search, but workers 1..p die early — the survivor sweeps the
    // rest alone (crash = a thread that stops stepping).
    let mut crashy = config.clone();
    crashy.crash_after_steps = (0..p)
        .map(|i| if i == 0 { None } else { Some(12) })
        .collect();
    let report = Runtime::builder(crashy)
        .tasks(body)
        .run(instance, algorithm.spawn(instance))
        .expect("valid setup")
        .report;
    println!("\nwith {p}−1 early crashes: {report}");
    assert!(report.completed, "lone survivor still finishes the scan");

    Ok(())
}

/// Tiny concurrent hit set (idempotent inserts) for the scan results.
mod parking_hits {
    use std::sync::Mutex;

    pub struct HitSet {
        inner: Mutex<Vec<usize>>,
    }

    impl HitSet {
        pub fn new() -> Self {
            Self {
                inner: Mutex::new(Vec::new()),
            }
        }

        /// Records a hit; duplicates collapse (idempotence).
        pub fn record(&self, segment: usize) {
            let mut v = self.inner.lock().expect("poisoned");
            if !v.contains(&segment) {
                v.push(segment);
            }
        }

        pub fn sorted(&self) -> Vec<usize> {
            let mut v = self.inner.lock().expect("poisoned").clone();
            v.sort_unstable();
            v
        }
    }
}
