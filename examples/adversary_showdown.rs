//! The lower-bound adversaries in action (Theorems 3.1 and 3.4).
//!
//! Runs DA(3) and PaDet against the adaptive deterministic adversary, and
//! PaRan2 against the randomized delay-on-touch adversary, comparing the
//! work each is *forced* to perform with the benign unit-delay execution
//! and with the closed-form lower bound
//! `t + p·min{d,t}·log_{d+1}(d+t)`.
//!
//! ```text
//! cargo run --release --example adversary_showdown
//! ```

use doall::bounds;
use doall::prelude::*;

fn main() -> Result<(), doall::CoreError> {
    let p = 27;
    let t = 729;
    let instance = Instance::new(p, t)?;

    println!("p = {p}, t = {t}; forced work vs the delay-sensitive lower bound\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>14}",
        "d", "benign", "attacked", "LB formula", "attacked/LB"
    );

    let da = algorithms::Da::with_default_schedules(3, 0);
    for d in [1u64, 4, 16, 64, 256] {
        let benign = Simulation::builder(instance)
            .procs(da.spawn(instance))
            .adversary(Box::new(UnitDelay))
            .build()
            .run();
        let attacked = Simulation::builder(instance)
            .procs(da.spawn(instance))
            .adversary(Box::new(LowerBoundAdversary::new(d, t)))
            .max_ticks(10_000_000)
            .build()
            .run();
        assert!(attacked.completed);
        let lb = bounds::lower_bound_work(p, t, d);
        println!(
            "{d:>6} {:>12} {:>12} {:>12.0} {:>14.2}",
            benign.work,
            attacked.work,
            lb,
            attacked.work as f64 / lb
        );
    }
    println!(
        "  (DA(3) under the Theorem 3.1 adversary: forced work tracks the bound's growth in d)\n"
    );

    println!("randomized algorithm vs the Theorem 3.4 delay-on-touch adversary:");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "d", "benign", "attacked", "LB formula"
    );
    for d in [1u64, 8, 64] {
        let pa = PaRan2::new(3);
        let benign = Simulation::builder(instance)
            .procs(pa.spawn(instance))
            .adversary(Box::new(UnitDelay))
            .build()
            .run();
        let attacked = Simulation::builder(instance)
            .procs(pa.spawn(instance))
            .adversary(Box::new(RandomizedLbAdversary::new(d, t, 17)))
            .max_ticks(10_000_000)
            .build()
            .run();
        assert!(attacked.completed);
        println!(
            "{d:>6} {:>12} {:>12} {:>12.0}",
            benign.work,
            attacked.work,
            bounds::lower_bound_work(p, t, d)
        );
    }

    println!("\nthe adversary freezes any processor about to perform a defended task,");
    println!("predicting its next step by cloning its state (RNG included) — the");
    println!("omniscient adaptivity the model grants (see Fig. 1 of the paper).");
    Ok(())
}

use doall::algorithms;
