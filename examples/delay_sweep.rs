//! Work as a function of the delay bound `d` — the paper's headline
//! message in one table (a miniature of experiment E11).
//!
//! Sweeps `d` from 1 to `t` for every algorithm under the stage-aligned
//! adversary and prints the measured work next to the oblivious ceiling
//! `p·t`. Expect: SoloAll flat at `p·t`; DA and PA growing with `d` and
//! approaching the ceiling as `d → t` — subquadratic exactly while
//! `d = o(t)`.
//!
//! ```text
//! cargo run --release --example delay_sweep
//! ```

use doall::prelude::*;

fn main() -> Result<(), doall::CoreError> {
    let p = 32;
    let t = 256;
    let instance = Instance::new(p, t)?;
    let quadratic = (p * t) as f64;

    let algos: Vec<Box<dyn Algorithm>> = vec![
        Box::new(SoloAll::new()),
        Box::new(algorithms::Da::with_default_schedules(3, 0)),
        Box::new(PaRan1::new(0)),
        Box::new(PaRan2::new(0)),
        Box::new(PaDet::random_for(instance, 0)),
    ];

    println!("p = {p}, t = {t}, oblivious ceiling p·t = {quadratic}");
    println!("work under a stage-aligned d-adversary (ratio to p·t in parentheses)\n");

    print!("{:>6}", "d");
    for a in &algos {
        print!("{:>18}", a.name());
    }
    println!();

    let mut d = 1u64;
    while d <= t as u64 {
        print!("{d:>6}");
        for algo in &algos {
            let report = Simulation::builder(instance)
                .procs(algo.spawn(instance))
                .adversary(Box::new(StageAligned::new(d)))
                .max_ticks(5_000_000)
                .build()
                .run();
            assert!(report.completed, "{} at d={d}", algo.name());
            print!(
                "{:>11} ({:.2})",
                report.work,
                report.work as f64 / quadratic
            );
        }
        println!();
        d *= 4;
    }

    println!("\nreading: the cooperative algorithms stay well under 1.00 while d ≪ t,");
    println!("and the advantage dissolves as d approaches t (Proposition 2.2 says it must).");
    Ok(())
}

use doall::algorithms;
