//! Grid computing: the paper's motivating scenario (§1 names grid
//! computing, distributed simulation, and SETI-style search).
//!
//! A "grid" of heterogeneous nodes — some fast, some slow, some that die
//! mid-run — must crunch a batch of independent work units (idempotent
//! tasks). We run DA(3), the deterministic progress-tree algorithm, under
//! an adversary combining jittery node speeds, random message latency, and
//! crashes that leave a single survivor, and show the batch still
//! completes with subquadratic work.
//!
//! ```text
//! cargo run --example grid_computing
//! ```

use doall::prelude::*;

fn main() -> Result<(), doall::CoreError> {
    let p = 27; // grid nodes
    let t = 729; // work units (t > p: nodes work on ⌈t/p⌉-unit jobs)
    let d = 9; // worst-case gossip latency (unknown to the nodes)
    let instance = Instance::new(p, t)?;

    println!("grid: {p} nodes, {t} work units, latency bound {d}\n");

    // DA(3): replicated ternary progress tree; every node traverses its
    // replica in an order derived from the ternary digits of its id and a
    // certified low-contention schedule list (Lemma 4.1).
    let algorithm = algorithms::Da::with_default_schedules(3, 7);

    // Scenario 1: healthy grid, jittery speeds (each node advances with
    // probability 0.7 per tick), random latency ≤ d.
    let jittery = RandomSubset::new(Box::new(RandomDelay::new(d, 5)), 0.7, 11);
    let healthy = Simulation::builder(instance)
        .procs(algorithm.spawn(instance))
        .adversary(Box::new(jittery))
        .max_ticks(2_000_000)
        .build()
        .run();
    println!("healthy grid : {healthy}");
    println!(
        "  work ratio to oblivious p·t: {:.3}",
        healthy.work_ratio_to_quadratic(p, t)
    );

    // Scenario 2: catastrophic — all nodes except node 13 die at tick 40.
    let catastrophe = CrashSchedule::all_but_one(Box::new(RandomDelay::new(d, 5)), p, 13, 40);
    let survivor = Simulation::builder(instance)
        .procs(algorithm.spawn(instance))
        .adversary(Box::new(catastrophe))
        .max_ticks(5_000_000)
        .build()
        .run();
    println!("\nlone survivor: {survivor}");
    println!("  (the survivor finishes everyone's work; Do-All tolerates any crash pattern with ≥1 survivor)");

    assert!(healthy.completed && survivor.completed);

    // Scenario 3: compare against the oblivious baseline on the healthy
    // grid — the whole point of coordinating.
    let solo = Simulation::builder(instance)
        .procs(SoloAll::new().spawn(instance))
        .adversary(Box::new(RandomSubset::new(
            Box::new(RandomDelay::new(d, 5)),
            0.7,
            11,
        )))
        .max_ticks(2_000_000)
        .build()
        .run();
    println!(
        "\nSoloAll on the same grid: work = {} vs DA(3) work = {}",
        solo.work, healthy.work
    );
    println!(
        "DA(3) saves {:.1}% of the work by gossiping its progress tree",
        100.0 * (1.0 - healthy.work as f64 / solo.work as f64)
    );

    Ok(())
}

use doall::algorithms;
