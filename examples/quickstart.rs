//! Quickstart: run one Do-All execution and read the report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use doall::prelude::*;

fn main() -> Result<(), doall::CoreError> {
    // 8 asynchronous processors must perform 64 idempotent tasks. Message
    // delays are bounded by d = 4 time units — but the algorithm does not
    // know that, and may not rely on any bound existing.
    let instance = Instance::new(8, 64)?;
    let d = 4;

    println!(
        "Do-All: p = {}, t = {}, d = {d}",
        instance.processors(),
        instance.tasks()
    );
    println!(
        "oblivious ceiling: p·t = {} work\n",
        instance.processors() * instance.tasks()
    );

    // PaDet: every processor follows its own fixed permutation of the
    // tasks (a random list is good with overwhelming probability,
    // Theorem 4.4), broadcasting what it knows after every completed task.
    let algorithm = PaDet::random_for(instance, 42);

    // The adversary delays every message the full d units.
    let report = Simulation::builder(instance)
        .procs(algorithm.spawn(instance))
        .adversary(Box::new(FixedDelay::new(d)))
        .build()
        .run();

    println!("{} under fixed delay {d}:", algorithm.name());
    println!("  completed : {}", report.completed);
    println!(
        "  work      : {} (Definition 2.1: one unit per local step until σ)",
        report.work
    );
    println!(
        "  messages  : {} (Definition 2.2: point-to-point, broadcast = p−1)",
        report.messages
    );
    println!(
        "  σ         : {:?} (first time someone knows everything is done)",
        report.sigma
    );
    println!(
        "  work/p·t  : {:.3} — subquadratic whenever d = o(t)",
        report.work_ratio_to_quadratic(instance.processors(), instance.tasks())
    );

    // Compare with the zero-communication baseline.
    let solo = Simulation::builder(instance)
        .procs(SoloAll::new().spawn(instance))
        .adversary(Box::new(UnitDelay))
        .build()
        .run();
    println!(
        "\nSoloAll baseline: work = {} (always exactly p·t)",
        solo.work
    );

    Ok(())
}
