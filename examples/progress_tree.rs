//! Anatomy of a DA(q) execution: watch the replicated progress tree
//! coordinate three processors, step by step.
//!
//! Prints the certified schedule list DA uses, then replays the trace of
//! a small run, narrating who performed what and when the replicas
//! learned of it — the "multicast instead of shared-memory write"
//! re-interpretation the paper builds on (§1.2).
//!
//! ```text
//! cargo run --example progress_tree
//! ```

use doall::algorithms::{Algorithm, Da};
use doall::perms::contention_exact;
use doall::prelude::*;
use doall::sim::analysis::execution_profile;
use doall::sim::{Simulation, TraceEvent};

fn main() -> Result<(), doall::CoreError> {
    let q = 3;
    let p = 3;
    let t = 9;
    let d = 2;
    let instance = Instance::new(p, t)?;
    let da = Da::with_default_schedules(q, 0);

    println!("DA({q}) on p = {p}, t = {t}: ternary progress tree with 9 leaves\n");
    println!("certified schedule list Σ (how each pid orders subtree visits):");
    for (u, perm) in da.schedules().as_slice().iter().enumerate() {
        println!("  π_{u} = {perm:?}");
    }
    println!(
        "exact Cont(Σ) = {} (Lemma 4.1 bound 3qH_q = {:.1})\n",
        contention_exact(da.schedules().as_slice()),
        3.0 * q as f64 * (1.0 + 0.5 + 1.0 / 3.0),
    );

    let (report, trace) = Simulation::builder(instance)
        .procs(da.spawn(instance))
        .adversary(Box::new(StageAligned::new(d)))
        .trace(TraceMode::Buffered(10_000))
        .build()
        .run_traced();
    let trace = trace.expect("tracing enabled");

    println!("execution under a stage-aligned {d}-adversary:");
    let mut last_tick = u64::MAX;
    for ev in trace.events() {
        match ev {
            TraceEvent::Step {
                now,
                pid,
                performed,
                broadcast,
            } => {
                if *now != last_tick {
                    println!("  tick {now}:");
                    last_tick = *now;
                }
                let action = match (performed, broadcast) {
                    (Some(z), true) => format!("performs {z} and multicasts its replica"),
                    (Some(z), false) => format!("performs {z}"),
                    (None, true) => "retires a finished subtree and multicasts".to_string(),
                    (None, false) => "descends / prunes".to_string(),
                };
                println!("    {pid} {action}");
            }
            TraceEvent::Completed { now, informed } => {
                println!("  tick {now}: {informed} marks the root — every task is done.");
            }
            TraceEvent::Send { .. } => {}
        }
    }

    let profile = execution_profile(&trace, t);
    println!("\n{report}");
    println!(
        "task executions: {} primary + {} redundant (redundancy {:.0}%)",
        profile.primary_executions,
        profile.secondary_executions,
        100.0 * profile.redundancy()
    );
    println!(
        "the low-contention schedules spread the processors over the subtrees, so even\n\
         with messages delayed {d} ticks, only a handful of tasks are done twice."
    );
    assert!(report.completed);
    Ok(())
}
