//! Property-based integration tests: randomized instances, adversaries,
//! and seeds — every execution must complete correctly and respect the
//! global invariants.

use doall::prelude::*;
use proptest::prelude::*;

/// Builds the algorithm selected by `which` (0..6).
fn algorithm(which: u8, instance: Instance, seed: u64) -> Box<dyn Algorithm> {
    match which % 6 {
        0 => Box::new(SoloAll::new()),
        1 => Box::new(doall::algorithms::Da::with_default_schedules(2, seed)),
        2 => Box::new(doall::algorithms::Da::with_default_schedules(3, seed)),
        3 => Box::new(PaRan1::new(seed)),
        4 => Box::new(PaRan2::new(seed)),
        _ => Box::new(PaDet::random_for(instance, seed)),
    }
}

/// Builds the adversary selected by `which` (0..6).
fn adversary(which: u8, d: u64, t: usize, seed: u64) -> Box<dyn Adversary> {
    match which % 6 {
        0 => Box::new(UnitDelay),
        1 => Box::new(FixedDelay::new(d)),
        2 => Box::new(RandomDelay::new(d, seed)),
        3 => Box::new(StageAligned::new(d)),
        4 => Box::new(LowerBoundAdversary::new(d, t)),
        _ => Box::new(RandomizedLbAdversary::new(d, t, seed)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any algorithm × any adversary × any (p, t, d, seed): the run
    /// completes, performs every task (ground truth asserted inside the
    /// simulator), charges at least t work, and counts messages within
    /// p·W.
    #[test]
    fn every_execution_completes_and_accounts(
        p in 1usize..10,
        t in 1usize..40,
        d in 1u64..12,
        algo_pick in 0u8..6,
        adv_pick in 0u8..6,
        seed in any::<u64>(),
    ) {
        let instance = Instance::new(p, t).unwrap();
        let algo = algorithm(algo_pick, instance, seed);
        let adv = adversary(adv_pick, d, t, seed);
        let name = format!("{} vs {} p={p} t={t} d={d}", algo.name(), adv.name());
        let report = Simulation::builder(instance).procs(algo.spawn(instance)).adversary(adv).max_ticks(1_000_000).build().run();
        prop_assert!(report.completed, "{}: {}", name, report);
        prop_assert!(report.work >= t as u64, "{}", name);
        prop_assert!(report.messages <= report.work * (p as u64), "{}", name);
        prop_assert_eq!(report.work_per_processor.iter().sum::<u64>(), report.work);
        prop_assert!(report.sigma.is_some());
    }

    /// Determinism: identical configuration ⇒ identical report, for every
    /// deterministic algorithm/adversary combination.
    #[test]
    fn executions_are_reproducible(
        p in 1usize..8,
        t in 1usize..30,
        d in 1u64..8,
        algo_pick in 0u8..6,
        seed in any::<u64>(),
    ) {
        let instance = Instance::new(p, t).unwrap();
        let run = || {
            let algo = algorithm(algo_pick, instance, seed);
            Simulation::builder(instance).procs(algo.spawn(instance)).adversary(Box::new(RandomDelay::new(d, seed))).max_ticks(1_000_000).build().run()
        };
        prop_assert_eq!(run(), run());
    }

    /// Crash patterns with one survivor never prevent completion.
    #[test]
    fn single_survivor_suffices(
        p in 2usize..8,
        t in 1usize..25,
        d in 1u64..6,
        algo_pick in 0u8..6,
        survivor in 0usize..8,
        crash_at in 0u64..30,
        seed in any::<u64>(),
    ) {
        let instance = Instance::new(p, t).unwrap();
        let algo = algorithm(algo_pick, instance, seed);
        let adversary = CrashSchedule::all_but_one(
            Box::new(FixedDelay::new(d)),
            p,
            survivor % p,
            crash_at,
        );
        let report = Simulation::builder(instance).procs(algo.spawn(instance)).adversary(Box::new(adversary)).max_ticks(1_000_000).build().run();
        prop_assert!(report.completed, "{}: {}", algo.name(), report);
    }
}
