//! Integration tests for the extension features: gossip throttling,
//! structured schedules, bursty/straggler adversaries, and trace
//! analysis.

use doall::perms::structured::{affine_schedules, next_prime, rotation_schedules};
use doall::perms::Schedules;
use doall::prelude::*;
use doall::sim::analysis::execution_profile;
use doall::sim::Simulation;

#[test]
fn gossip_completes_under_all_adversaries() {
    let p = 8;
    let t = 32;
    let instance = Instance::new(p, t).unwrap();
    for fanout in [1usize, 2, 4] {
        let algo = PaGossip::new(3, fanout);
        let adversaries: Vec<Box<dyn Adversary>> = vec![
            Box::new(UnitDelay),
            Box::new(FixedDelay::new(5)),
            Box::new(StageAligned::new(5)),
            Box::new(BurstyDelay::new(6, 4)),
            Box::new(RandomizedLbAdversary::new(4, t, 1)),
        ];
        for adversary in adversaries {
            let name = format!("{} vs {}", algo.name(), adversary.name());
            let report = Simulation::builder(instance)
                .procs(algo.spawn(instance))
                .adversary(adversary)
                .max_ticks(1_000_000)
                .build()
                .run();
            assert!(report.completed, "{name}: {report}");
        }
    }
}

#[test]
fn gossip_message_count_scales_with_fanout() {
    let p = 16;
    let t = 64;
    let instance = Instance::new(p, t).unwrap();
    let run = |fanout: usize| {
        let algo = PaGossip::new(5, fanout);
        Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(StageAligned::new(4)))
            .max_ticks(1_000_000)
            .build()
            .run()
    };
    let low = run(1);
    let high = run(8);
    assert!(low.completed && high.completed);
    // Messages per performing step are exactly the fanout, so the ratio
    // of message rates must be about 8:1 (runs differ in length).
    let low_rate = low.messages as f64 / low.work as f64;
    let high_rate = high.messages as f64 / high.work as f64;
    assert!(
        low_rate <= 1.0 + 1e-9,
        "fanout 1 sends ≤ 1 message per step"
    );
    assert!(
        high_rate > 4.0 * low_rate,
        "fanout 8 must send much more per step ({high_rate} vs {low_rate})"
    );
    // And the extra communication must not hurt work.
    assert!(high.work <= low.work, "more gossip, less redundant work");
}

#[test]
fn structured_schedules_run_padet() {
    // Affine and rotation lists are valid PaDet parameters and complete.
    let n = next_prime(20); // 23
    let instance = Instance::new(n, n).unwrap();
    for (label, sched) in [
        ("rotation", rotation_schedules(n, n)),
        ("affine", affine_schedules(n, n, 1).unwrap()),
        ("random", Schedules::random(n, n, 1)),
    ] {
        let algo = PaDet::new(sched);
        let report = Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(FixedDelay::new(3)))
            .max_ticks(1_000_000)
            .build()
            .run();
        assert!(report.completed, "{label}: {report}");
        assert!(report.work >= n as u64);
    }
}

#[test]
fn bursty_delay_is_between_unit_and_fixed() {
    // Bursty delays (half calm, half congested) should cost at least the
    // all-calm execution and at most the all-congested one, for the
    // deterministic PaDet.
    let p = 16;
    let t = 16;
    let instance = Instance::new(p, t).unwrap();
    let algo = PaDet::random_for(instance, 2);
    let calm = Simulation::builder(instance)
        .procs(algo.spawn(instance))
        .adversary(Box::new(FixedDelay::new(1)))
        .build()
        .run();
    let bursty = Simulation::builder(instance)
        .procs(algo.spawn(instance))
        .adversary(Box::new(BurstyDelay::new(8, 4)))
        .build()
        .run();
    let congested = Simulation::builder(instance)
        .procs(algo.spawn(instance))
        .adversary(Box::new(FixedDelay::new(8)))
        .build()
        .run();
    assert!(calm.completed && bursty.completed && congested.completed);
    assert!(bursty.work >= calm.work);
    assert!(
        bursty.work <= congested.work * 2,
        "square wave ≲ worst case"
    );
}

#[test]
fn stragglers_slow_time_not_work_ceiling() {
    let p = 8;
    let t = 24;
    let instance = Instance::new(p, t).unwrap();
    let algo = doall::algorithms::Da::with_default_schedules(2, 0);
    // Half the processors advance once every 4 ticks.
    let slow: Vec<bool> = (0..p).map(|i| i % 2 == 0).collect();
    let adversary = Stragglers::new(Box::new(FixedDelay::new(2)), slow, 4);
    let report = Simulation::builder(instance)
        .procs(algo.spawn(instance))
        .adversary(Box::new(adversary))
        .max_ticks(1_000_000)
        .build()
        .run();
    assert!(report.completed);
    // Stragglers stretch σ but work stays bounded by a small multiple of
    // the all-fast execution (fewer charged steps for slow processors).
    assert!(report.work <= (4 * p * t) as u64);
}

#[test]
fn execution_profile_quantifies_redundancy() {
    // SoloAll: every task performed p times — p−1 of them redundant.
    let p = 4;
    let t = 10;
    let instance = Instance::new(p, t).unwrap();
    let (report, trace) = Simulation::builder(instance)
        .procs(SoloAll::new().spawn(instance))
        .adversary(Box::new(UnitDelay))
        .trace(TraceMode::Buffered(1_000_000))
        .build()
        .run_traced();
    assert!(report.completed);
    let profile = execution_profile(&trace.unwrap(), t);
    assert_eq!(profile.total_executions(), p * t);
    assert_eq!(profile.multiplicity, vec![p; t]);
    // With the rotated start offsets, the four sweeps begin on distinct
    // tasks, so exactly t executions are primary (one per task) except
    // where offsets collide within a tick.
    assert!(profile.primary_executions >= t);
    assert!(profile.secondary_executions <= p * t - t);
    assert!(
        profile.redundancy() > 0.5,
        "oblivious work is mostly redundant"
    );

    // A cooperative algorithm on the same instance wastes far less.
    let (report, trace) = Simulation::builder(instance)
        .procs(PaDet::random_for(instance, 1).spawn(instance))
        .adversary(Box::new(UnitDelay))
        .trace(TraceMode::Buffered(1_000_000))
        .build()
        .run_traced();
    assert!(report.completed);
    let coop = execution_profile(&trace.unwrap(), t);
    assert!(
        coop.redundancy() < profile.redundancy(),
        "cooperation reduces redundancy ({} vs {})",
        coop.redundancy(),
        profile.redundancy()
    );
}

#[test]
fn gossip_on_real_threads() {
    use doall::runtime::{Runtime, RuntimeConfig};
    use std::time::Duration;
    let instance = Instance::new(6, 30).unwrap();
    let config = RuntimeConfig {
        max_delay: Duration::from_micros(200),
        seed: 9,
        timeout: Duration::from_secs(20),
        crash_after_steps: Vec::new(),
        step_interval: Duration::from_micros(20),
    };
    let algo = PaGossip::new(4, 2);
    let outcome = Runtime::builder(config)
        .run(instance, algo.spawn(instance))
        .expect("valid setup");
    assert!(outcome.report.completed, "{}", outcome.report);
}
