//! Cross-process determinism regression tests.
//!
//! The in-process proptests (`doall-bench/tests/scenario_props.rs`) pin
//! replicate seeding and shard scheduling, but they cannot catch state
//! that varies *between* process invocations — the classic offender
//! being `HashMap`/`HashSet` iteration order, which is randomized per
//! process by the hasher seed. The lower-bound adversaries keep their
//! defended sets in `BTreeSet` for exactly this reason (lint rule
//! D001); these tests hold the line by running the real binary twice
//! and byte-comparing the machine-readable output.

use std::path::PathBuf;
use std::process::Command;

fn out_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("doall_procdet_{tag}_{}.json", std::process::id()))
}

/// Runs `doall <args> --json --out <file>` in a fresh process and
/// returns the report bytes.
fn run_once(args: &[&str], tag: &str) -> Vec<u8> {
    let out = out_path(tag);
    let _ = std::fs::remove_file(&out);
    let status = Command::new(env!("CARGO_BIN_EXE_doall"))
        .args(args)
        .arg("--json")
        .arg("--out")
        .arg(&out)
        .status()
        .expect("spawn doall");
    // Exit 1 is the "findings reported" code (compare/lint contract),
    // still a successful run for byte-equality purposes; 2 is an error.
    assert!(
        matches!(status.code(), Some(0 | 1)),
        "doall {args:?} failed: {status}"
    );
    let bytes = std::fs::read(&out).expect("read report");
    let _ = std::fs::remove_file(&out);
    bytes
}

#[test]
fn lbrand_sweep_is_bit_equal_across_process_invocations() {
    // Both lower-bound adversaries (lb = Theorem 3.1, lbrand = Theorem
    // 3.4) across two algorithms and two replicates each; identical
    // seeds must reproduce the report byte-for-byte in a new process.
    let args = [
        "sweep",
        "--grid",
        "algos=paran1,paran2 advs=lb,lbrand,lbrand:2 shapes=4x24 ds=4 seeds=2 seed=7",
    ];
    let first = run_once(&args, "lbrand_a");
    let second = run_once(&args, "lbrand_b");
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "identically-seeded lbrand sweeps drifted across processes"
    );
}

#[test]
fn lint_report_is_bit_equal_across_process_invocations() {
    // The lint gate's own output must be as deterministic as the
    // invariants it enforces.
    let root = env!("CARGO_MANIFEST_DIR");
    let args = ["lint", "--root", root];
    let first = run_once(&args, "lint_a");
    let second = run_once(&args, "lint_b");
    assert!(!first.is_empty());
    assert_eq!(
        first, second,
        "lint reports drifted across process invocations"
    );
}
