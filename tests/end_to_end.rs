//! Workspace integration tests: the facade API, cross-crate invariants,
//! and the theorem-shaped properties the library promises.

use doall::bounds;
use doall::perms::{d_contention_of_list, Schedules};
use doall::prelude::*;

fn all_algorithms(instance: Instance, seed: u64) -> Vec<Box<dyn Algorithm>> {
    vec![
        Box::new(SoloAll::new()),
        Box::new(doall::algorithms::Da::with_default_schedules(2, seed)),
        Box::new(doall::algorithms::Da::with_default_schedules(3, seed)),
        Box::new(PaRan1::new(seed)),
        Box::new(PaRan2::new(seed)),
        Box::new(PaDet::random_for(instance, seed)),
    ]
}

#[test]
fn prelude_exposes_a_working_pipeline() {
    let instance = Instance::new(4, 20).unwrap();
    let report = Simulation::builder(instance)
        .procs(PaDet::random_for(instance, 0).spawn(instance))
        .adversary(Box::new(RandomDelay::new(3, 1)))
        .build()
        .run();
    assert!(report.completed);
    assert!(report.work >= 20);
}

#[test]
fn sigma_cutoff_stops_charging() {
    // With d large, σ for SoloAll is still t−1 ticks (no communication
    // involved), so work is exactly p·t whatever the adversary's delays.
    let instance = Instance::new(3, 15).unwrap();
    let report = Simulation::builder(instance)
        .procs(SoloAll::new().spawn(instance))
        .adversary(Box::new(FixedDelay::new(1000)))
        .build()
        .run();
    assert_eq!(report.work, 45);
    assert_eq!(report.sigma, Some(14));
}

#[test]
fn work_respects_lower_bound_formula() {
    // Measured work of every algorithm is at least t (each task costs a
    // step) and at least the per-execution trivial bounds.
    let instance = Instance::new(8, 32).unwrap();
    for algo in all_algorithms(instance, 2) {
        let report = Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(StageAligned::new(4)))
            .build()
            .run();
        assert!(report.completed, "{}", algo.name());
        assert!(report.work >= 32, "{}: W ≥ t", algo.name());
    }
}

#[test]
fn pa_work_within_paper_bound_shape() {
    // PaDet measured work stays within a small constant of the Cor 6.5
    // bound across a d-sweep (the ratio must not blow up with d).
    let p = 16;
    let t = 16;
    let instance = Instance::new(p, t).unwrap();
    for d in [1u64, 2, 4, 8, 16] {
        let algo = PaDet::random_for(instance, 9);
        let report = Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(StageAligned::new(d)))
            .build()
            .run();
        assert!(report.completed);
        let bound = bounds::pa_upper_bound(p, t, d);
        assert!(
            (report.work as f64) < 6.0 * bound,
            "d={d}: W={} vs bound {bound}",
            report.work
        );
    }
}

#[test]
fn lemma_6_1_work_at_most_d_contention() {
    // For PaDet with schedule list Σ (p = t, so jobs are single tasks),
    // measured *task performances* (= work while tasks remain) under any
    // d-adversary are at most (d)-Cont(Σ). We use the exact d-contention
    // on a small instance.
    let p = 6;
    let t = 6;
    let instance = Instance::new(p, t).unwrap();
    let schedules = Schedules::random(p, t, 4);
    for d in [1u64, 2, 3, 6] {
        let algo = PaDet::new(schedules.clone());
        let report = Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(StageAligned::new(d)))
            .build()
            .run();
        assert!(report.completed);
        let dcont = d_contention_of_list(schedules.as_slice(), d as usize);
        assert!(dcont.exact, "n = 6 permits exact evaluation");
        assert!(
            report.work <= dcont.value as u64 + p as u64,
            "d={d}: measured {} exceeds (d)-Cont(Σ) = {} (+p slack for the final tick)",
            report.work,
            dcont.value
        );
    }
}

#[test]
fn quadratic_wall_at_large_d() {
    // Proposition 2.2: with d ≥ t every algorithm is Ω(p·t). Our
    // implementations must also stay O(p·t) up to small constants — the
    // oblivious fallback is never beaten by more than constants there.
    let p = 12;
    let t = 12;
    let instance = Instance::new(p, t).unwrap();
    let quadratic = (p * t) as u64;
    for algo in all_algorithms(instance, 6) {
        let report = Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(FixedDelay::new(2 * t as u64)))
            .build()
            .run();
        assert!(report.completed, "{}", algo.name());
        assert!(
            report.work >= quadratic / 4,
            "{}: with d ≥ t, work {} must be Ω(p·t) = {}",
            algo.name(),
            report.work,
            quadratic
        );
        assert!(
            report.work <= 4 * quadratic,
            "{}: work {} should stay O(p·t) = {}",
            algo.name(),
            report.work,
            quadratic
        );
    }
}

#[test]
fn messages_within_p_times_work() {
    // Both families bound M by p·W (Theorems 5.6 and 6.2/6.3).
    let instance = Instance::new(8, 24).unwrap();
    for algo in all_algorithms(instance, 8) {
        let report = Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(RandomDelay::new(5, 3)))
            .build()
            .run();
        assert!(report.completed);
        assert!(
            report.messages <= report.work * 8,
            "{}: M = {} > p·W = {}",
            algo.name(),
            report.messages,
            report.work * 8
        );
    }
}

#[test]
fn randomized_lb_adversary_hurts_paran() {
    let p = 16;
    let t = 64;
    let instance = Instance::new(p, t).unwrap();
    let mut benign_total = 0u64;
    let mut attacked_total = 0u64;
    for seed in 0..5 {
        let pa = PaRan2::new(seed);
        benign_total += Simulation::builder(instance)
            .procs(pa.spawn(instance))
            .adversary(Box::new(UnitDelay))
            .build()
            .run()
            .work;
        attacked_total += Simulation::builder(instance)
            .procs(pa.spawn(instance))
            .adversary(Box::new(RandomizedLbAdversary::new(8, t, seed)))
            .max_ticks(2_000_000)
            .build()
            .run()
            .work;
    }
    assert!(
        attacked_total > benign_total,
        "the Thm 3.4 adversary must inflate expected work: {attacked_total} vs {benign_total}"
    );
}

#[test]
fn oblido_primary_executions_bounded_by_contention() {
    // Lemma 4.2 end-to-end: replay the trace of an ObliDo execution and
    // count primary (first-time) job executions; compare with exact
    // Cont(Σ).
    use doall::sim::TraceEvent;
    let n = 6;
    let instance = Instance::new(n, n).unwrap();
    let schedules = Schedules::random(n, n, 2);
    let cont = doall::perms::contention_of_list(schedules.as_slice());
    assert!(cont.exact);
    let algo = ObliDo::new(schedules);
    let (report, trace) = Simulation::builder(instance)
        .procs(algo.spawn(instance))
        .adversary(Box::new(StageAligned::new(3)))
        .trace(TraceMode::Buffered(100_000))
        .build()
        .run_traced();
    assert!(report.completed);
    let trace = trace.unwrap();
    let mut done = vec![false; n];
    let mut primary = 0usize;
    for ev in trace.events() {
        if let TraceEvent::Step {
            performed: Some(task),
            ..
        } = ev
        {
            if !done[task.index()] {
                done[task.index()] = true;
                primary += 1;
            }
        }
    }
    assert_eq!(done.iter().filter(|&&b| b).count(), n);
    assert!(
        primary <= cont.value,
        "primary executions {primary} exceed Cont(Σ) = {}",
        cont.value
    );
}

#[test]
fn crash_storms_never_prevent_completion() {
    // Staggered crash schedule leaving one survivor; every algorithm
    // finishes.
    let p = 10;
    let t = 30;
    let instance = Instance::new(p, t).unwrap();
    let crash_times: Vec<Option<u64>> = (0..p)
        .map(|i| if i == 7 { None } else { Some(3 + 2 * i as u64) })
        .collect();
    for algo in all_algorithms(instance, 12) {
        let adversary = CrashSchedule::new(Box::new(RandomDelay::new(4, 2)), crash_times.clone());
        let report = Simulation::builder(instance)
            .procs(algo.spawn(instance))
            .adversary(Box::new(adversary))
            .max_ticks(1_000_000)
            .build()
            .run();
        assert!(report.completed, "{}: {report}", algo.name());
    }
}
