//! Property-based tests for the simulator's building blocks.

use doall_core::{BitSet, Message, ProcId};
use doall_sim::adversary::{BurstyDelay, FixedDelay, RandomDelay, StageAligned};
use doall_sim::{Adversary, Mailboxes, SimView};
use proptest::prelude::*;

fn msg(from: usize) -> Message {
    Message::new(ProcId::new(from), BitSet::new(1))
}

proptest! {
    /// Mailboxes: peek is a non-destructive preview of drain, and
    /// messages are delivered exactly once, never early.
    #[test]
    fn mailbox_peek_drain_laws(
        deliveries in prop::collection::vec((0usize..4, 0u64..50), 0..40),
        probe in 0u64..60,
    ) {
        let mut boxes = Mailboxes::new(4);
        for &(to, at) in &deliveries {
            boxes.push(to, at, msg(0));
        }
        prop_assert_eq!(boxes.in_flight(), deliveries.len());
        for pid in 0..4 {
            let due_expected = deliveries
                .iter()
                .filter(|&&(to, at)| to == pid && at <= probe)
                .count();
            prop_assert_eq!(boxes.peek_due(pid, probe).len(), due_expected);
            prop_assert_eq!(boxes.due_count(pid, probe), due_expected);
            let drained = boxes.drain_due(pid, probe);
            prop_assert_eq!(drained.len(), due_expected);
            prop_assert!(boxes.drain_due(pid, probe).is_empty(), "exactly once");
        }
        // What remains is exactly the not-yet-due messages.
        let later = deliveries.iter().filter(|&&(_, at)| at > probe).count();
        prop_assert_eq!(boxes.in_flight(), later);
    }

    /// Every delay-only adversary returns delays in [1, d], for any time.
    #[test]
    fn delay_adversaries_respect_bounds(
        d in 1u64..100,
        seed in any::<u64>(),
        times in prop::collection::vec(0u64..10_000, 1..50),
    ) {
        let done = BitSet::new(1);
        let mut advs: Vec<Box<dyn Adversary>> = vec![
            Box::new(FixedDelay::new(d)),
            Box::new(RandomDelay::new(d, seed)),
            Box::new(StageAligned::new(d)),
            Box::new(BurstyDelay::new(d, (d / 2).max(1))),
        ];
        for adv in &mut advs {
            for &now in &times {
                let view = SimView {
                    now,
                    processors: 2,
                    tasks: 1,
                    tasks_done: &done,
                };
                let delay = adv.message_delay(&view, ProcId::new(0), ProcId::new(1));
                prop_assert!(
                    (1..=d).contains(&delay),
                    "{}: delay {delay} outside [1, {d}] at now={now}",
                    adv.name()
                );
            }
        }
    }

    /// Stage-aligned deliveries always land exactly on stage boundaries.
    #[test]
    fn stage_aligned_lands_on_boundaries(d in 1u64..64, now in 0u64..10_000) {
        let done = BitSet::new(1);
        let mut adv = StageAligned::new(d);
        let view = SimView {
            now,
            processors: 2,
            tasks: 1,
            tasks_done: &done,
        };
        let delay = adv.message_delay(&view, ProcId::new(0), ProcId::new(1));
        prop_assert_eq!((now + delay) % d, 0);
        prop_assert!(delay >= 1 && delay <= d);
    }
}
