//! In-flight message storage with adversary-assigned delivery times.

use doall_core::Message;
use std::collections::BTreeMap;

/// Per-processor mailboxes of in-flight messages, keyed by delivery time.
///
/// A message sent at global time `τ` with adversary-assigned delay `δ ≥ 1`
/// is *deliverable* from time `τ + δ` on: it enters the recipient's inbox at
/// the recipient's first completed step at a time `≥ τ + δ` (the paper:
/// "the receiver can process any such message later, according to its own
/// local clock"). Channels are reliable — nothing is lost or corrupted —
/// and this structure preserves per-sender FIFO order within a delivery
/// instant.
#[derive(Debug, Default)]
pub struct Mailboxes {
    boxes: Vec<BTreeMap<u64, Vec<Message>>>,
}

impl Mailboxes {
    /// Creates empty mailboxes for `p` processors.
    #[must_use]
    pub fn new(processors: usize) -> Self {
        Self {
            boxes: (0..processors).map(|_| BTreeMap::new()).collect(),
        }
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.boxes.len()
    }

    /// Enqueues `msg` for processor `to`, deliverable at `deliver_at`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn push(&mut self, to: usize, deliver_at: u64, msg: Message) {
        self.boxes[to].entry(deliver_at).or_default().push(msg);
    }

    /// Removes and returns every message deliverable to `pid` at time
    /// `now` (delivery time `≤ now`), oldest delivery time first.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn drain_due(&mut self, pid: usize, now: u64) -> Vec<Message> {
        let mbox = &mut self.boxes[pid];
        if mbox.first_key_value().is_none_or(|(&k, _)| k > now) {
            return Vec::new();
        }
        let later = mbox.split_off(&(now + 1));
        let due = std::mem::replace(mbox, later);
        due.into_values().flatten().collect()
    }

    /// Copies (without removing) every message deliverable to `pid` at
    /// `now` — used by adversaries that peek at what a processor is about
    /// to receive.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn peek_due(&self, pid: usize, now: u64) -> Vec<Message> {
        self.boxes[pid]
            .range(..=now)
            .flat_map(|(_, v)| v.iter().cloned())
            .collect()
    }

    /// Number of messages deliverable to `pid` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn due_count(&self, pid: usize, now: u64) -> usize {
        self.boxes[pid].range(..=now).map(|(_, v)| v.len()).sum()
    }

    /// Total number of in-flight messages (any delivery time).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.boxes
            .iter()
            .map(|b| b.values().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doall_core::{BitSet, ProcId};

    fn msg(from: usize) -> Message {
        Message::new(ProcId::new(from), BitSet::new(4))
    }

    #[test]
    fn drain_respects_delivery_time() {
        let mut m = Mailboxes::new(2);
        m.push(0, 5, msg(1));
        m.push(0, 7, msg(1));
        assert!(m.drain_due(0, 4).is_empty());
        assert_eq!(m.drain_due(0, 5).len(), 1);
        assert!(m.drain_due(0, 6).is_empty(), "already drained");
        assert_eq!(m.drain_due(0, 10).len(), 1);
    }

    #[test]
    fn drain_is_per_processor() {
        let mut m = Mailboxes::new(3);
        m.push(1, 1, msg(0));
        m.push(2, 1, msg(0));
        assert!(m.drain_due(0, 5).is_empty());
        assert_eq!(m.drain_due(1, 5).len(), 1);
        assert_eq!(m.drain_due(2, 5).len(), 1);
    }

    #[test]
    fn drain_returns_oldest_first() {
        let mut m = Mailboxes::new(1);
        m.push(0, 9, msg(2));
        m.push(0, 3, msg(1));
        m.push(0, 3, msg(3));
        let got = m.drain_due(0, 10);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].from(), ProcId::new(1));
        assert_eq!(got[1].from(), ProcId::new(3));
        assert_eq!(got[2].from(), ProcId::new(2));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut m = Mailboxes::new(1);
        m.push(0, 2, msg(0));
        assert_eq!(m.peek_due(0, 3).len(), 1);
        assert_eq!(m.due_count(0, 3), 1);
        assert_eq!(m.peek_due(0, 1).len(), 0);
        assert_eq!(m.drain_due(0, 3).len(), 1, "peek left it in place");
    }

    #[test]
    fn in_flight_counts_everything() {
        let mut m = Mailboxes::new(2);
        m.push(0, 1, msg(1));
        m.push(1, 100, msg(0));
        assert_eq!(m.in_flight(), 2);
        m.drain_due(0, 1);
        assert_eq!(m.in_flight(), 1);
    }
}
