//! In-flight message storage with adversary-assigned delivery times.
//!
//! Two delivery engines live here. [`Mailboxes`] materializes one
//! in-flight message per recipient — the exact model, required whenever
//! the adversary assigns per-recipient delays or inspects pending
//! messages. [`BroadcastBus`] stores each full broadcast **once** and
//! coalesces broadcasts that share a delivery instant into a single
//! union payload — the engine behind
//! [`Delivery::UniformBroadcast`](crate::adversary::Delivery), turning
//! the per-tick delivery cost from `O(p²)` envelopes into `O(p)` cursor
//! advances. Payload coalescing is sound because payloads are monotone
//! bitmaps merged by union (the paper's Section 5.1.2 observation; see
//! the [`doall_core::DoAllProcess`] inbox contract).

use doall_core::{BitSet, Message, ProcId};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-processor mailboxes of in-flight messages, keyed by delivery time.
///
/// A message sent at global time `τ` with adversary-assigned delay `δ ≥ 1`
/// is *deliverable* from time `τ + δ` on: it enters the recipient's inbox at
/// the recipient's first completed step at a time `≥ τ + δ` (the paper:
/// "the receiver can process any such message later, according to its own
/// local clock"). Channels are reliable — nothing is lost or corrupted —
/// and this structure preserves per-sender FIFO order within a delivery
/// instant.
#[derive(Debug, Default)]
pub struct Mailboxes {
    boxes: Vec<BTreeMap<u64, Vec<Message>>>,
    /// Emptied per-instant vectors recycled between `drain_due_into` and
    /// `push`, so a steady message flow stops allocating once warm.
    spare: Vec<Vec<Message>>,
}

impl Mailboxes {
    /// Creates empty mailboxes for `p` processors.
    #[must_use]
    pub fn new(processors: usize) -> Self {
        Self {
            boxes: (0..processors).map(|_| BTreeMap::new()).collect(),
            spare: Vec::new(),
        }
    }

    /// Empties every mailbox for `processors` processors, recycling the
    /// existing allocations — the arena-reset primitive for batched runs.
    pub fn reset(&mut self, processors: usize) {
        for mbox in &mut self.boxes {
            for (_, mut v) in std::mem::take(mbox) {
                v.clear();
                self.spare.push(v);
            }
        }
        self.boxes.resize_with(processors, BTreeMap::new);
        self.boxes.truncate(processors);
    }

    /// Number of processors.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.boxes.len()
    }

    /// Enqueues `msg` for processor `to`, deliverable at `deliver_at`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range.
    pub fn push(&mut self, to: usize, deliver_at: u64, msg: Message) {
        self.boxes[to]
            .entry(deliver_at)
            .or_insert_with(|| self.spare.pop().unwrap_or_default())
            .push(msg);
    }

    /// Removes and returns every message deliverable to `pid` at time
    /// `now` (delivery time `≤ now`), oldest delivery time first.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn drain_due(&mut self, pid: usize, now: u64) -> Vec<Message> {
        let mut out = Vec::new();
        self.drain_due_into(pid, now, &mut out);
        out
    }

    /// Appends every message deliverable to `pid` at time `now` (delivery
    /// time `≤ now`) to `out`, oldest delivery time first, removing them
    /// from the mailbox. The allocation-free variant of
    /// [`drain_due`](Self::drain_due): the hot loop hands in one recycled
    /// scratch vector, and the emptied per-instant vectors are kept for
    /// reuse by [`push`](Self::push).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn drain_due_into(&mut self, pid: usize, now: u64, out: &mut Vec<Message>) {
        let mbox = &mut self.boxes[pid];
        while let Some(entry) = mbox.first_entry() {
            if *entry.key() > now {
                break;
            }
            let mut v = entry.remove();
            out.append(&mut v);
            self.spare.push(v);
        }
    }

    /// Copies (without removing) every message deliverable to `pid` at
    /// `now` — used by adversaries that peek at what a processor is about
    /// to receive.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn peek_due(&self, pid: usize, now: u64) -> Vec<Message> {
        self.boxes[pid]
            .range(..=now)
            .flat_map(|(_, v)| v.iter().cloned())
            .collect()
    }

    /// Number of messages deliverable to `pid` at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    #[must_use]
    pub fn due_count(&self, pid: usize, now: u64) -> usize {
        self.boxes[pid].range(..=now).map(|(_, v)| v.len()).sum()
    }

    /// Total number of in-flight messages (any delivery time).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.boxes
            .iter()
            .map(|b| b.values().map(Vec::len).sum::<usize>())
            .sum()
    }
}

/// The zero-copy delivery engine for uniform-delay broadcasts.
///
/// Each full (everyone-but-the-sender) broadcast is stored **once**,
/// keyed by its delivery instant; broadcasts sharing an instant are
/// coalesced into one union payload at submission time. Every processor
/// keeps a cursor of the last instant it consumed, so delivering to a
/// stepping processor is a range walk handing out `Arc` clones of the
/// sealed group payloads — no per-recipient materialization ever happens.
///
/// Soundness: payloads are monotone bitmaps merged by union, so a
/// processor receiving the union of several concurrent broadcasts (even
/// one including its own payload reflected back, which unions to
/// nothing) reaches exactly the state it would have reached receiving
/// them individually — the inbox contract of
/// [`doall_core::DoAllProcess`]. The simulator only routes broadcasts
/// here when the adversary declares
/// [`Delivery::UniformBroadcast`](crate::adversary::Delivery); multicasts
/// and per-recipient-delay traffic stay in [`Mailboxes`].
///
/// A group is frozen once its delivery instant is reached (delays are
/// `≥ 1`, so nothing sent at time `τ` can join a group deliverable at
/// `τ`), which is what makes handing out shared references sound.
#[derive(Debug, Default)]
pub struct BroadcastBus {
    groups: BTreeMap<u64, BusGroup>,
    /// Per processor: the earliest delivery instant not yet consumed.
    cursors: Vec<u64>,
}

#[derive(Debug)]
struct BusGroup {
    /// Sender stamped on the delivered envelope: the first processor
    /// that broadcast into this instant (deterministic — submission
    /// order is the pid-ordered step loop).
    from: ProcId,
    payload: BusPayload,
}

#[derive(Debug)]
enum BusPayload {
    /// The single payload of a one-broadcast group (shared, never
    /// copied), or a coalesced union already handed out.
    Sealed(Arc<BitSet>),
    /// A union still accumulating concurrent broadcasts.
    Building(BitSet),
}

impl BroadcastBus {
    /// Creates an empty bus for `processors` processors.
    #[must_use]
    pub fn new(processors: usize) -> Self {
        Self {
            groups: BTreeMap::new(),
            cursors: vec![0; processors],
        }
    }

    /// Empties the bus for `processors` processors, reusing allocations.
    pub fn reset(&mut self, processors: usize) {
        self.groups.clear();
        self.cursors.clear();
        self.cursors.resize(processors, 0);
    }

    /// Submits a broadcast from `from` deliverable at `deliver_at`. The
    /// first broadcast of an instant is stored as-is (one refcount bump);
    /// later ones are unioned into a coalesced payload.
    ///
    /// # Panics
    ///
    /// Panics if payload capacities differ within one instant (all
    /// payloads of a run share one bit universe by construction).
    pub fn push(&mut self, from: ProcId, deliver_at: u64, bits: &Arc<BitSet>) {
        match self.groups.entry(deliver_at) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(BusGroup {
                    from,
                    payload: BusPayload::Sealed(Arc::clone(bits)),
                });
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let payload = &mut e.get_mut().payload;
                match payload {
                    BusPayload::Sealed(first) => {
                        let mut union = (**first).clone();
                        union.union_with(bits);
                        *payload = BusPayload::Building(union);
                    }
                    BusPayload::Building(union) => {
                        union.union_with(bits);
                    }
                }
            }
        }
    }

    /// Appends to `out` one envelope per unconsumed group deliverable to
    /// `pid` at time `now`, oldest instant first, and advances `pid`'s
    /// cursor. Each envelope shares the group's payload allocation.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn deliver_into(&mut self, pid: usize, now: u64, out: &mut Vec<Message>) {
        let cursor = self.cursors[pid];
        if cursor > now {
            return;
        }
        for (_, group) in self.groups.range_mut(cursor..=now) {
            let sealed = match &mut group.payload {
                BusPayload::Sealed(a) => a,
                BusPayload::Building(union) => {
                    group.payload =
                        BusPayload::Sealed(Arc::new(std::mem::replace(union, BitSet::new(0))));
                    match &mut group.payload {
                        BusPayload::Sealed(a) => a,
                        // lint:allow(H001) — invariant: Sealed was assigned on the previous line
                        BusPayload::Building(_) => unreachable!("just sealed"),
                    }
                }
            };
            out.push(Message::new(group.from, Arc::clone(sealed)));
        }
        self.cursors[pid] = now + 1;
    }

    /// Number of broadcast groups still stored (all instants).
    #[must_use]
    pub fn groups(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(from: usize) -> Message {
        Message::new(ProcId::new(from), BitSet::new(4))
    }

    #[test]
    fn drain_respects_delivery_time() {
        let mut m = Mailboxes::new(2);
        m.push(0, 5, msg(1));
        m.push(0, 7, msg(1));
        assert!(m.drain_due(0, 4).is_empty());
        assert_eq!(m.drain_due(0, 5).len(), 1);
        assert!(m.drain_due(0, 6).is_empty(), "already drained");
        assert_eq!(m.drain_due(0, 10).len(), 1);
    }

    #[test]
    fn drain_is_per_processor() {
        let mut m = Mailboxes::new(3);
        m.push(1, 1, msg(0));
        m.push(2, 1, msg(0));
        assert!(m.drain_due(0, 5).is_empty());
        assert_eq!(m.drain_due(1, 5).len(), 1);
        assert_eq!(m.drain_due(2, 5).len(), 1);
    }

    #[test]
    fn drain_returns_oldest_first() {
        let mut m = Mailboxes::new(1);
        m.push(0, 9, msg(2));
        m.push(0, 3, msg(1));
        m.push(0, 3, msg(3));
        let got = m.drain_due(0, 10);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].from(), ProcId::new(1));
        assert_eq!(got[1].from(), ProcId::new(3));
        assert_eq!(got[2].from(), ProcId::new(2));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut m = Mailboxes::new(1);
        m.push(0, 2, msg(0));
        assert_eq!(m.peek_due(0, 3).len(), 1);
        assert_eq!(m.due_count(0, 3), 1);
        assert_eq!(m.peek_due(0, 1).len(), 0);
        assert_eq!(m.drain_due(0, 3).len(), 1, "peek left it in place");
    }

    #[test]
    fn in_flight_counts_everything() {
        let mut m = Mailboxes::new(2);
        m.push(0, 1, msg(1));
        m.push(1, 100, msg(0));
        assert_eq!(m.in_flight(), 2);
        m.drain_due(0, 1);
        assert_eq!(m.in_flight(), 1);
    }

    #[test]
    fn reset_empties_and_resizes() {
        let mut m = Mailboxes::new(2);
        m.push(0, 1, msg(1));
        m.push(1, 2, msg(0));
        m.reset(3);
        assert_eq!(m.processors(), 3);
        assert_eq!(m.in_flight(), 0);
        m.push(2, 1, msg(0));
        assert_eq!(m.drain_due(2, 1).len(), 1);
    }

    fn payload(bit: usize) -> Arc<BitSet> {
        let mut b = BitSet::new(8);
        b.insert(bit);
        Arc::new(b)
    }

    #[test]
    fn bus_single_broadcast_shares_payload() {
        let mut bus = BroadcastBus::new(3);
        let p = payload(1);
        bus.push(ProcId::new(0), 5, &p);
        let mut out = Vec::new();
        bus.deliver_into(1, 4, &mut out);
        assert!(out.is_empty(), "not due yet");
        bus.deliver_into(1, 5, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].from(), ProcId::new(0));
        assert!(
            Arc::ptr_eq(out[0].shared_bits(), &p),
            "one-broadcast groups are delivered without any copy"
        );
    }

    #[test]
    fn bus_coalesces_same_instant_by_union() {
        let mut bus = BroadcastBus::new(3);
        bus.push(ProcId::new(0), 4, &payload(0));
        bus.push(ProcId::new(2), 4, &payload(7));
        let mut out = Vec::new();
        bus.deliver_into(1, 4, &mut out);
        assert_eq!(out.len(), 1, "one envelope per instant");
        assert_eq!(out[0].from(), ProcId::new(0), "first sender stamps it");
        assert!(out[0].bits().contains(0) && out[0].bits().contains(7));
    }

    #[test]
    fn bus_cursor_never_redelivers() {
        let mut bus = BroadcastBus::new(2);
        bus.push(ProcId::new(0), 1, &payload(0));
        bus.push(ProcId::new(0), 3, &payload(1));
        let mut out = Vec::new();
        bus.deliver_into(1, 2, &mut out);
        assert_eq!(out.len(), 1);
        bus.deliver_into(1, 2, &mut out);
        assert_eq!(out.len(), 1, "instant 1 consumed, instant 3 not due");
        bus.deliver_into(1, 10, &mut out);
        assert_eq!(out.len(), 2);
        // A processor that skipped ticks still gets everything once.
        let mut late = Vec::new();
        bus.deliver_into(0, 10, &mut late);
        assert_eq!(late.len(), 2);
    }

    #[test]
    fn bus_reset_clears_groups_and_cursors() {
        let mut bus = BroadcastBus::new(2);
        bus.push(ProcId::new(0), 1, &payload(0));
        let mut out = Vec::new();
        bus.deliver_into(1, 5, &mut out);
        bus.reset(2);
        assert_eq!(bus.groups(), 0);
        bus.push(ProcId::new(1), 1, &payload(2));
        out.clear();
        // Cursor was rewound by reset: instant 1 is deliverable again.
        bus.deliver_into(1, 1, &mut out);
        assert_eq!(out.len(), 1);
    }
}
