//! The simulation driver: executes a Do-All algorithm against an adversary
//! and produces a [`RunReport`].

use crate::{Adversary, Mailboxes, SimView, Trace, TraceEvent};
use doall_core::{
    BitSet, DoAllProcess, Instance, Message, MessageTally, ProcId, RunReport, WorkTally,
};
use std::sync::Arc;

/// Default safety cutoff: ticks after which a run is abandoned as
/// non-terminating (the adversary can always prevent termination by
/// freezing everyone; a report with `completed == false` is returned).
/// Override per run with [`Simulation::max_ticks`] — lower-bound
/// experiments shorten it, long sweeps raise it.
pub const DEFAULT_MAX_TICKS: u64 = 2_000_000;

/// A single execution of a Do-All algorithm under an adversary.
///
/// The driver advances global time one unit at a time. Each unit it asks
/// the adversary which processors complete a local step, delivers due
/// messages to exactly the stepping processors, executes their steps
/// (charging one work unit each), fans out any submitted broadcasts with
/// adversary-assigned delays (charging `p − 1` messages each), and checks
/// for σ: the first time at which all tasks have been performed *and* some
/// processor knows it. Work and messages are counted up to and including
/// time σ, matching Definitions 2.1 and 2.2.
///
/// # Example
///
/// ```
/// use doall_core::{DoAllProcess, Instance, Message, ProcId, StepOutcome, TaskId};
/// use doall_sim::{adversary::UnitDelay, Simulation};
///
/// // A one-processor "algorithm" that sweeps its tasks in order.
/// #[derive(Clone)]
/// struct Sweep { t: usize, next: usize }
/// impl DoAllProcess for Sweep {
///     fn pid(&self) -> ProcId { ProcId::new(0) }
///     fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
///         if self.next < self.t {
///             self.next += 1;
///             StepOutcome::perform(TaskId::new(self.next - 1))
///         } else {
///             StepOutcome::internal()
///         }
///     }
///     fn knows_all_done(&self) -> bool { self.next >= self.t }
///     fn clone_box(&self) -> Box<dyn DoAllProcess> { Box::new(self.clone()) }
/// }
///
/// let instance = Instance::new(1, 10).unwrap();
/// let report = Simulation::new(
///     instance,
///     vec![Box::new(Sweep { t: 10, next: 0 })],
///     Box::new(UnitDelay),
/// )
/// .run();
/// assert!(report.completed);
/// assert_eq!(report.work, 10);
/// ```
pub struct Simulation {
    instance: Instance,
    procs: Vec<Box<dyn DoAllProcess>>,
    adversary: Box<dyn Adversary>,
    max_ticks: u64,
    trace: Option<Trace>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("instance", &self.instance)
            .field("adversary", &self.adversary.name())
            .field("max_ticks", &self.max_ticks)
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Creates a simulation of `procs` (one state machine per processor of
    /// `instance`) against `adversary`.
    ///
    /// # Panics
    ///
    /// Panics if `procs.len() != instance.processors()`.
    #[must_use]
    pub fn new(
        instance: Instance,
        procs: Vec<Box<dyn DoAllProcess>>,
        adversary: Box<dyn Adversary>,
    ) -> Self {
        assert_eq!(
            procs.len(),
            instance.processors(),
            "need exactly one state machine per processor"
        );
        Self {
            instance,
            procs,
            adversary,
            max_ticks: DEFAULT_MAX_TICKS,
            trace: None,
        }
    }

    /// Sets the tick cutoff after which the run is abandoned (returning
    /// `completed == false`). Defaults to [`DEFAULT_MAX_TICKS`].
    #[must_use]
    pub fn max_ticks(mut self, ticks: u64) -> Self {
        self.max_ticks = ticks;
        self
    }

    /// Batch entry point: runs `runs` independent executions of the same
    /// instance, one per seed `0..runs`, each with its own processor set
    /// and adversary, and returns the reports in seed order.
    ///
    /// This is the building block of the sweep harness: a grid cell maps
    /// to one `run_batch` call whose reports are then aggregated (see
    /// [`crate::analysis::summarize`]). The factories receive the seed so
    /// randomized algorithms/adversaries derive their state from it —
    /// which is what makes batches reproducible and independent of any
    /// outer parallelism.
    ///
    /// # Panics
    ///
    /// Panics if a factory returns the wrong number of processors (same
    /// contract as [`Simulation::new`]).
    #[must_use]
    pub fn run_batch(
        instance: Instance,
        runs: u64,
        max_ticks: u64,
        mut procs_for: impl FnMut(u64) -> Vec<Box<dyn DoAllProcess>>,
        mut adversary_for: impl FnMut(u64) -> Box<dyn Adversary>,
    ) -> Vec<RunReport> {
        (0..runs)
            .map(|seed| {
                Simulation::new(instance, procs_for(seed), adversary_for(seed))
                    .max_ticks(max_ticks)
                    .run()
            })
            .collect()
    }

    /// Enables event tracing, retaining at most `capacity` events.
    #[must_use]
    pub fn with_trace(mut self, capacity: usize) -> Self {
        self.trace = Some(Trace::with_capacity(capacity));
        self
    }

    /// Enables event tracing into an existing collector, reusing its
    /// allocation (and keeping its capacity). The collector is cleared
    /// first, so callers can hand the trace returned by a previous
    /// [`run_traced`](Self::run_traced) straight back in — batch sweeps
    /// recycle one buffer per worker instead of growing a fresh one per
    /// replicate.
    #[must_use]
    pub fn with_trace_buffer(mut self, mut trace: Trace) -> Self {
        trace.clear();
        self.trace = Some(trace);
        self
    }

    /// Runs the execution to σ (or the tick cutoff) and returns the
    /// report. Use [`run_traced`](Self::run_traced) to also retrieve the
    /// trace.
    #[must_use]
    pub fn run(self) -> RunReport {
        self.run_traced().0
    }

    /// Runs the execution, returning the report and the trace (if tracing
    /// was enabled).
    #[must_use]
    pub fn run_traced(mut self) -> (RunReport, Option<Trace>) {
        let p = self.instance.processors();
        let t = self.instance.tasks();
        let mut mailboxes = Mailboxes::new(p);
        let mut tasks_done = BitSet::new(t);
        let mut work = WorkTally::new(p);
        let mut msgs = MessageTally::new();
        let mut sigma: Option<u64> = None;
        let mut now: u64 = 0;

        while now < self.max_ticks {
            let plan = {
                let view = SimView {
                    now,
                    processors: p,
                    tasks: t,
                    tasks_done: &tasks_done,
                };
                self.adversary.schedule(&view, &self.procs, &mailboxes)
            };
            assert_eq!(plan.len(), p, "adversary must plan every processor");

            let mut informed: Option<ProcId> = None;
            #[allow(clippy::needless_range_loop)] // plan and procs are indexed in lockstep
            for pid in 0..p {
                if !plan[pid] {
                    continue;
                }
                let inbox = mailboxes.drain_due(pid, now);
                let outcome = self.procs[pid].step(&inbox);
                work.charge(pid);

                if let Some(task) = outcome.performed {
                    tasks_done.insert(task.index());
                }
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(TraceEvent::Step {
                        now,
                        pid: ProcId::new(pid),
                        performed: outcome.performed,
                        broadcast: outcome.broadcast.is_some(),
                    });
                }
                if let Some(bits) = outcome.broadcast {
                    let recipients: Vec<usize> = match outcome.targets {
                        Some(targets) => targets
                            .into_iter()
                            .map(doall_core::ProcId::index)
                            .filter(|&to| to != pid && to < p)
                            .collect(),
                        None => (0..p).filter(|&to| to != pid).collect(),
                    };
                    msgs.charge(recipients.len() as u64);
                    if let Some(trace) = self.trace.as_mut() {
                        trace.record(TraceEvent::Send {
                            now,
                            from: ProcId::new(pid),
                            recipients: recipients.len(),
                        });
                    }
                    let from = ProcId::new(pid);
                    for to in recipients {
                        let view = SimView {
                            now,
                            processors: p,
                            tasks: t,
                            tasks_done: &tasks_done,
                        };
                        let delay = self.adversary.message_delay(&view, from, ProcId::new(to));
                        assert!(delay >= 1, "message delays are at least one time unit");
                        // Zero-copy fan-out: every recipient's envelope
                        // shares the one payload allocation (`p − 1`
                        // refcount bumps instead of `p − 1` BitSet clones).
                        mailboxes.push(to, now + delay, Message::new(from, Arc::clone(&bits)));
                    }
                }
                if informed.is_none() && self.procs[pid].knows_all_done() {
                    informed = Some(ProcId::new(pid));
                }
            }

            if let Some(pid) = informed {
                // σ per Definition 2.1: every step completed at time σ is
                // still charged (the loop above ran the whole tick).
                assert!(
                    tasks_done.is_full(),
                    "processor {pid} claims completion but tasks remain — algorithm bug"
                );
                sigma = Some(now);
                if let Some(trace) = self.trace.as_mut() {
                    trace.record(TraceEvent::Completed { now, informed: pid });
                }
                break;
            }
            now += 1;
        }

        let report = RunReport {
            work: work.total(),
            messages: msgs.total(),
            sigma,
            completed: tasks_done.is_full() && sigma.is_some(),
            work_per_processor: work.per_processor().to_vec(),
        };
        (report, self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{FixedDelay, UnitDelay};
    use doall_core::{StepOutcome, TaskId};

    /// Performs tasks `start..t` then nothing; knows completion only of its
    /// own share — used to test σ semantics with communication-free procs.
    #[derive(Clone)]
    struct Sweep {
        pid: ProcId,
        next: usize,
        t: usize,
    }

    impl DoAllProcess for Sweep {
        fn pid(&self) -> ProcId {
            self.pid
        }
        fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
            if self.next < self.t {
                let z = TaskId::new(self.next);
                self.next += 1;
                StepOutcome::perform(z)
            } else {
                StepOutcome::internal()
            }
        }
        fn knows_all_done(&self) -> bool {
            self.next >= self.t
        }
        fn clone_box(&self) -> Box<dyn DoAllProcess> {
            Box::new(self.clone())
        }
    }

    fn sweep_procs(p: usize, t: usize) -> Vec<Box<dyn DoAllProcess>> {
        (0..p)
            .map(|i| {
                Box::new(Sweep {
                    pid: ProcId::new(i),
                    next: 0,
                    t,
                }) as Box<dyn DoAllProcess>
            })
            .collect()
    }

    #[test]
    fn solo_sweep_work_equals_t() {
        let instance = Instance::new(1, 25).unwrap();
        let report = Simulation::new(instance, sweep_procs(1, 25), Box::new(UnitDelay)).run();
        assert!(report.completed);
        assert_eq!(report.work, 25);
        assert_eq!(report.sigma, Some(24), "σ is the tick of the last task");
        assert_eq!(report.messages, 0);
    }

    #[test]
    fn parallel_sweeps_charge_everyone_until_sigma() {
        // Two identical sweeps: both finish at tick t−1, work = 2t.
        let instance = Instance::new(2, 10).unwrap();
        let report = Simulation::new(instance, sweep_procs(2, 10), Box::new(UnitDelay)).run();
        assert!(report.completed);
        assert_eq!(report.work, 20);
        assert_eq!(report.work_per_processor, vec![10, 10]);
    }

    #[test]
    fn incomplete_run_reports_honestly() {
        /// Never performs anything.
        #[derive(Clone)]
        struct Idler;
        impl DoAllProcess for Idler {
            fn pid(&self) -> ProcId {
                ProcId::new(0)
            }
            fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
                StepOutcome::internal()
            }
            fn knows_all_done(&self) -> bool {
                false
            }
            fn clone_box(&self) -> Box<dyn DoAllProcess> {
                Box::new(Idler)
            }
        }
        let instance = Instance::new(1, 3).unwrap();
        let report = Simulation::new(instance, vec![Box::new(Idler)], Box::new(UnitDelay))
            .max_ticks(50)
            .run();
        assert!(!report.completed);
        assert_eq!(report.sigma, None);
        assert_eq!(report.work, 50, "idle steps are still charged");
    }

    #[test]
    fn broadcast_counts_p_minus_one_and_delivers() {
        /// Proc 0 performs the single task and broadcasts; proc 1 waits to
        /// learn of it.
        #[derive(Clone)]
        struct Teller {
            pid: ProcId,
            sent: bool,
        }
        impl DoAllProcess for Teller {
            fn pid(&self) -> ProcId {
                self.pid
            }
            fn step(&mut self, inbox: &[Message]) -> StepOutcome {
                if self.pid.index() == 0 {
                    if !self.sent {
                        self.sent = true;
                        let mut bits = BitSet::new(1);
                        bits.insert(0);
                        return StepOutcome::perform_and_broadcast(TaskId::new(0), bits);
                    }
                } else if inbox.iter().any(|m| m.bits().contains(0)) {
                    self.sent = true; // "learned"
                }
                StepOutcome::internal()
            }
            fn knows_all_done(&self) -> bool {
                self.sent
            }
            fn clone_box(&self) -> Box<dyn DoAllProcess> {
                Box::new(self.clone())
            }
        }
        let instance = Instance::new(3, 1).unwrap();
        let procs: Vec<Box<dyn DoAllProcess>> = (0..3)
            .map(|i| {
                Box::new(Teller {
                    pid: ProcId::new(i),
                    sent: false,
                }) as Box<dyn DoAllProcess>
            })
            .collect();
        let report = Simulation::new(instance, procs, Box::new(FixedDelay::new(4))).run();
        assert!(report.completed);
        assert_eq!(report.messages, 2, "one broadcast to p−1 = 2 recipients");
        // Proc 0 knows at tick 0 → σ = 0 and only tick 0 is charged.
        assert_eq!(report.sigma, Some(0));
        assert_eq!(report.work, 3);
    }

    #[test]
    fn fixed_delay_defers_knowledge() {
        /// Only proc 0 performs; procs learn via broadcast; completion
        /// requires a non-performing proc to know (proc 0 never "knows").
        #[derive(Clone)]
        struct OneWay {
            pid: ProcId,
            done_seen: bool,
            performed: bool,
        }
        impl DoAllProcess for OneWay {
            fn pid(&self) -> ProcId {
                self.pid
            }
            fn step(&mut self, inbox: &[Message]) -> StepOutcome {
                if self.pid.index() == 0 {
                    if !self.performed {
                        self.performed = true;
                        let mut bits = BitSet::new(1);
                        bits.insert(0);
                        return StepOutcome::perform_and_broadcast(TaskId::new(0), bits);
                    }
                } else if inbox.iter().any(|m| m.bits().contains(0)) {
                    self.done_seen = true;
                }
                StepOutcome::internal()
            }
            fn knows_all_done(&self) -> bool {
                self.done_seen
            }
            fn clone_box(&self) -> Box<dyn DoAllProcess> {
                Box::new(self.clone())
            }
        }
        let mk = || {
            (0..2)
                .map(|i| {
                    Box::new(OneWay {
                        pid: ProcId::new(i),
                        done_seen: false,
                        performed: false,
                    }) as Box<dyn DoAllProcess>
                })
                .collect::<Vec<_>>()
        };
        let instance = Instance::new(2, 1).unwrap();
        let fast = Simulation::new(instance, mk(), Box::new(FixedDelay::new(1))).run();
        let slow = Simulation::new(instance, mk(), Box::new(FixedDelay::new(10))).run();
        // Broadcast at tick 0; delivered at tick d; receiver knows at d.
        assert_eq!(fast.sigma, Some(1));
        assert_eq!(slow.sigma, Some(10));
        assert!(slow.work > fast.work, "delay inflates charged work");
    }

    #[test]
    fn trace_records_key_events() {
        let instance = Instance::new(1, 2).unwrap();
        let (report, trace) = Simulation::new(instance, sweep_procs(1, 2), Box::new(UnitDelay))
            .with_trace(64)
            .run_traced();
        assert!(report.completed);
        let trace = trace.unwrap();
        let steps = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Step { .. }))
            .count();
        assert_eq!(steps, 2);
        assert!(matches!(
            trace.events().last(),
            Some(TraceEvent::Completed { now: 1, .. })
        ));
    }

    #[test]
    fn run_batch_returns_reports_in_seed_order() {
        let instance = Instance::new(1, 5).unwrap();
        let reports = Simulation::run_batch(
            instance,
            3,
            1_000,
            |_| sweep_procs(1, 5),
            |seed| Box::new(FixedDelay::new(seed + 1)),
        );
        assert_eq!(reports.len(), 3);
        // Communication-free sweeps: every seed yields the same report.
        assert!(reports.iter().all(|r| r.completed && r.work == 5));
    }

    #[test]
    fn determinism_same_procs_same_adversary() {
        let instance = Instance::new(2, 8).unwrap();
        let a = Simulation::new(instance, sweep_procs(2, 8), Box::new(FixedDelay::new(3))).run();
        let b = Simulation::new(instance, sweep_procs(2, 8), Box::new(FixedDelay::new(3))).run();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one state machine per processor")]
    fn proc_count_mismatch_panics() {
        let instance = Instance::new(2, 1).unwrap();
        let _ = Simulation::new(instance, sweep_procs(1, 1), Box::new(UnitDelay));
    }
}
