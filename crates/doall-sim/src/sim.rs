//! The simulation driver: executes a Do-All algorithm against an adversary
//! and produces a [`RunReport`].

use crate::adversary::Delivery;
use crate::trace::{NoTrace, Recorder};
use crate::{Adversary, BroadcastBus, Mailboxes, SimView, Trace, TraceEvent, TraceMode};
use doall_core::{
    BitSet, DoAllProcess, Instance, Message, MessageTally, ProcId, RunReport, WorkTally,
};
use std::sync::Arc;

/// Default safety cutoff: ticks after which a run is abandoned as
/// non-terminating (the adversary can always prevent termination by
/// freezing everyone; a report with `completed == false` is returned).
/// Override per run with [`SimulationBuilder::max_ticks`] — lower-bound
/// experiments shorten it, long sweeps raise it.
pub const DEFAULT_MAX_TICKS: u64 = 2_000_000;

/// A single execution of a Do-All algorithm under an adversary.
///
/// The driver advances global time one unit at a time. Each unit it asks
/// the adversary which processors complete a local step, delivers due
/// messages to exactly the stepping processors, executes their steps
/// (charging one work unit each), fans out any submitted broadcasts with
/// adversary-assigned delays (charging `p − 1` messages each), and checks
/// for σ: the first time at which all tasks have been performed *and* some
/// processor knows it. Work and messages are counted up to and including
/// time σ, matching Definitions 2.1 and 2.2.
///
/// Construct via [`Simulation::builder`]; tracing is opt-in through
/// [`TraceMode`], and the trace-free instantiation of the inner loop
/// contains no recording code at all.
///
/// # Example
///
/// ```
/// use doall_core::{DoAllProcess, Instance, Message, ProcId, StepOutcome, TaskId};
/// use doall_sim::{adversary::UnitDelay, Simulation};
///
/// // A one-processor "algorithm" that sweeps its tasks in order.
/// #[derive(Clone)]
/// struct Sweep { t: usize, next: usize }
/// impl DoAllProcess for Sweep {
///     fn pid(&self) -> ProcId { ProcId::new(0) }
///     fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
///         if self.next < self.t {
///             self.next += 1;
///             StepOutcome::perform(TaskId::new(self.next - 1))
///         } else {
///             StepOutcome::internal()
///         }
///     }
///     fn knows_all_done(&self) -> bool { self.next >= self.t }
///     fn clone_box(&self) -> Box<dyn DoAllProcess> { Box::new(self.clone()) }
/// }
///
/// let instance = Instance::new(1, 10).unwrap();
/// let report = Simulation::builder(instance)
///     .procs(vec![Box::new(Sweep { t: 10, next: 0 })])
///     .adversary(Box::new(UnitDelay))
///     .build()
///     .run();
/// assert!(report.completed);
/// assert_eq!(report.work, 10);
/// ```
pub struct Simulation {
    instance: Instance,
    procs: Vec<Box<dyn DoAllProcess>>,
    adversary: Box<dyn Adversary>,
    max_ticks: u64,
    trace: TraceMode,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("instance", &self.instance)
            .field("adversary", &self.adversary.name())
            .field("max_ticks", &self.max_ticks)
            .finish_non_exhaustive()
    }
}

/// Configures and constructs a [`Simulation`].
///
/// Obtained from [`Simulation::builder`]. `procs` and `adversary` are
/// mandatory; `max_ticks` defaults to [`DEFAULT_MAX_TICKS`] and `trace`
/// to [`TraceMode::Off`].
#[must_use = "call .build() to obtain a Simulation"]
pub struct SimulationBuilder {
    instance: Instance,
    procs: Option<Vec<Box<dyn DoAllProcess>>>,
    adversary: Option<Box<dyn Adversary>>,
    max_ticks: u64,
    trace: TraceMode,
}

impl std::fmt::Debug for SimulationBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulationBuilder")
            .field("instance", &self.instance)
            .field("max_ticks", &self.max_ticks)
            .finish_non_exhaustive()
    }
}

impl SimulationBuilder {
    /// The processor state machines, one per processor of the instance.
    pub fn procs(mut self, procs: Vec<Box<dyn DoAllProcess>>) -> Self {
        self.procs = Some(procs);
        self
    }

    /// The adversary driving schedules and message delays.
    pub fn adversary(mut self, adversary: Box<dyn Adversary>) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// Tick cutoff after which the run is abandoned (returning
    /// `completed == false`). Defaults to [`DEFAULT_MAX_TICKS`].
    pub fn max_ticks(mut self, ticks: u64) -> Self {
        self.max_ticks = ticks;
        self
    }

    /// Event-trace mode. Defaults to [`TraceMode::Off`], which compiles
    /// to a trace-free inner loop.
    pub fn trace(mut self, mode: TraceMode) -> Self {
        self.trace = mode;
        self
    }

    /// Builds the simulation.
    ///
    /// # Panics
    ///
    /// Panics if `procs` or `adversary` was not provided, or if the
    /// number of processor state machines does not match the instance.
    #[must_use]
    pub fn build(self) -> Simulation {
        // lint:allow(H001) — documented `# Panics` contract of build()
        let procs = self.procs.expect("SimulationBuilder needs .procs(…)");
        let adversary = self
            .adversary
            // lint:allow(H001) — documented `# Panics` contract of build()
            .expect("SimulationBuilder needs .adversary(…)");
        assert_eq!(
            procs.len(),
            self.instance.processors(),
            "need exactly one state machine per processor"
        );
        Simulation {
            instance: self.instance,
            procs,
            adversary,
            max_ticks: self.max_ticks,
            trace: self.trace,
        }
    }
}

/// The recycled per-run scratch state: both delivery engines, the
/// ground-truth task set, the work tally, and the inbox buffer. A batch
/// resets one arena per replicate instead of reallocating any of it.
struct SimArena {
    mailboxes: Mailboxes,
    bus: BroadcastBus,
    tasks_done: BitSet,
    work: WorkTally,
    inbox: Vec<Message>,
}

impl SimArena {
    fn new() -> Self {
        Self {
            mailboxes: Mailboxes::new(0),
            bus: BroadcastBus::new(0),
            tasks_done: BitSet::new(0),
            work: WorkTally::new(0),
            inbox: Vec::new(),
        }
    }

    fn reset(&mut self, processors: usize, tasks: usize) {
        self.mailboxes.reset(processors);
        self.bus.reset(processors);
        if self.tasks_done.len() == tasks {
            self.tasks_done.clear();
        } else {
            self.tasks_done = BitSet::new(tasks);
        }
        self.work.reset(processors);
        self.inbox.clear();
    }
}

impl Simulation {
    /// Starts building a simulation of `instance`. Provide the processor
    /// state machines and the adversary, then call
    /// [`build`](SimulationBuilder::build).
    pub fn builder(instance: Instance) -> SimulationBuilder {
        SimulationBuilder {
            instance,
            procs: None,
            adversary: None,
            max_ticks: DEFAULT_MAX_TICKS,
            trace: TraceMode::Off,
        }
    }

    /// Batch entry point: runs `runs` independent executions of the same
    /// instance, one per seed `0..runs`, each with its own processor set
    /// and adversary, and returns the reports in seed order.
    ///
    /// This is the building block of the sweep harness: a grid cell maps
    /// to one `run_batch` call whose reports are then aggregated (see
    /// [`crate::analysis::summarize`]). The factories receive the seed so
    /// randomized algorithms/adversaries derive their state from it —
    /// which is what makes batches reproducible and independent of any
    /// outer parallelism.
    ///
    /// `procs_for` *fills* a recycled vector rather than returning a
    /// fresh one, and every run reuses one arena (mailboxes, broadcast
    /// bus, tallies, inbox scratch), so a batch's per-replicate
    /// allocations are only what the algorithms themselves allocate.
    /// Runs are untraced; reports are byte-identical to per-replicate
    /// construction via [`Simulation::builder`].
    ///
    /// # Panics
    ///
    /// Panics if a factory fills in the wrong number of processors (same
    /// contract as [`SimulationBuilder::build`]).
    #[must_use]
    pub fn run_batch(
        instance: Instance,
        runs: u64,
        max_ticks: u64,
        mut procs_for: impl FnMut(u64, &mut Vec<Box<dyn DoAllProcess>>),
        mut adversary_for: impl FnMut(u64) -> Box<dyn Adversary>,
    ) -> Vec<RunReport> {
        let mut arena = SimArena::new();
        let mut procs: Vec<Box<dyn DoAllProcess>> = Vec::new();
        (0..runs)
            .map(|seed| {
                procs.clear();
                procs_for(seed, &mut procs);
                let mut adversary = adversary_for(seed);
                execute(
                    instance,
                    &mut procs,
                    adversary.as_mut(),
                    max_ticks,
                    &mut arena,
                    &mut NoTrace,
                )
            })
            .collect()
    }

    /// Runs the execution to σ (or the tick cutoff) and returns the
    /// report. Use [`run_traced`](Self::run_traced) to also retrieve the
    /// trace.
    #[must_use]
    pub fn run(self) -> RunReport {
        self.run_traced().0
    }

    /// Runs the execution, returning the report and the trace (when a
    /// recording [`TraceMode`] was selected at build time).
    #[must_use]
    pub fn run_traced(mut self) -> (RunReport, Option<Trace>) {
        let mut arena = SimArena::new();
        let max_ticks = self.max_ticks;
        match self.trace {
            TraceMode::Off => {
                let report = execute(
                    self.instance,
                    &mut self.procs,
                    self.adversary.as_mut(),
                    max_ticks,
                    &mut arena,
                    &mut NoTrace,
                );
                (report, None)
            }
            TraceMode::Buffered(capacity) => {
                let mut trace = Trace::with_capacity(capacity);
                let report = execute(
                    self.instance,
                    &mut self.procs,
                    self.adversary.as_mut(),
                    max_ticks,
                    &mut arena,
                    &mut trace,
                );
                (report, Some(trace))
            }
            TraceMode::Recycled(ref mut buffer) => {
                let mut trace = std::mem::replace(buffer, Trace::with_capacity(0));
                trace.clear();
                let report = execute(
                    self.instance,
                    &mut self.procs,
                    self.adversary.as_mut(),
                    max_ticks,
                    &mut arena,
                    &mut trace,
                );
                (report, Some(trace))
            }
        }
    }
}

/// The inner loop, monomorphized over the recorder: the
/// [`TraceMode::Off`] instantiation (`R = NoTrace`) contains no event
/// construction or recording branches at all.
fn execute<R: Recorder>(
    instance: Instance,
    procs: &mut [Box<dyn DoAllProcess>],
    adversary: &mut dyn Adversary,
    max_ticks: u64,
    arena: &mut SimArena,
    rec: &mut R,
) -> RunReport {
    let p = instance.processors();
    let t = instance.tasks();
    assert_eq!(
        procs.len(),
        p,
        "need exactly one state machine per processor"
    );
    arena.reset(p, t);
    let delivery = adversary.delivery();
    let mut msgs = MessageTally::new();
    let mut sigma: Option<u64> = None;
    let mut now: u64 = 0;

    while now < max_ticks {
        let plan = {
            let view = SimView {
                now,
                processors: p,
                tasks: t,
                tasks_done: &arena.tasks_done,
            };
            adversary.schedule(&view, procs, &arena.mailboxes)
        };
        assert_eq!(plan.len(), p, "adversary must plan every processor");

        let mut informed: Option<ProcId> = None;
        #[allow(clippy::needless_range_loop)] // plan and procs are indexed in lockstep
        for pid in 0..p {
            if !plan[pid] {
                continue;
            }
            arena.inbox.clear();
            if delivery == Delivery::UniformBroadcast {
                arena.bus.deliver_into(pid, now, &mut arena.inbox);
            }
            arena.mailboxes.drain_due_into(pid, now, &mut arena.inbox);
            let outcome = procs[pid].step(&arena.inbox);
            arena.work.charge(pid);

            if let Some(task) = outcome.performed {
                arena.tasks_done.insert(task.index());
            }
            if R::ENABLED {
                rec.record(TraceEvent::Step {
                    now,
                    pid: ProcId::new(pid),
                    performed: outcome.performed,
                    broadcast: outcome.broadcast.is_some(),
                });
            }
            if let Some(bits) = outcome.broadcast {
                let from = ProcId::new(pid);
                match outcome.targets {
                    None => {
                        // Full broadcast: `p − 1` messages charged either
                        // way; the delivery engine differs.
                        let recipients = p - 1;
                        msgs.charge(recipients as u64);
                        if R::ENABLED {
                            rec.record(TraceEvent::Send {
                                now,
                                from,
                                recipients,
                            });
                        }
                        if recipients > 0 {
                            match delivery {
                                Delivery::UniformBroadcast => {
                                    // One delay per broadcast (the
                                    // adversary promised it is
                                    // recipient-oblivious), one shared
                                    // payload on the bus.
                                    let view = SimView {
                                        now,
                                        processors: p,
                                        tasks: t,
                                        tasks_done: &arena.tasks_done,
                                    };
                                    let delay = adversary.message_delay(
                                        &view,
                                        from,
                                        ProcId::new((pid + 1) % p),
                                    );
                                    assert!(
                                        delay >= 1,
                                        "message delays are at least one time unit"
                                    );
                                    arena.bus.push(from, now + delay, &bits);
                                }
                                Delivery::PerRecipient => {
                                    for to in (0..p).filter(|&to| to != pid) {
                                        let view = SimView {
                                            now,
                                            processors: p,
                                            tasks: t,
                                            tasks_done: &arena.tasks_done,
                                        };
                                        let delay =
                                            adversary.message_delay(&view, from, ProcId::new(to));
                                        assert!(
                                            delay >= 1,
                                            "message delays are at least one time unit"
                                        );
                                        // Zero-copy fan-out: every
                                        // envelope shares the one payload
                                        // allocation.
                                        arena.mailboxes.push(
                                            to,
                                            now + delay,
                                            Message::new(from, Arc::clone(&bits)),
                                        );
                                    }
                                }
                            }
                        }
                    }
                    Some(targets) => {
                        // Multicast (gossip): recipient sets are partial,
                        // so delivery is always materialized exactly.
                        let recipients = targets
                            .iter()
                            .filter(|to| to.index() != pid && to.index() < p)
                            .count();
                        msgs.charge(recipients as u64);
                        if R::ENABLED {
                            rec.record(TraceEvent::Send {
                                now,
                                from,
                                recipients,
                            });
                        }
                        for to in targets
                            .into_iter()
                            .map(ProcId::index)
                            .filter(|&to| to != pid && to < p)
                        {
                            let view = SimView {
                                now,
                                processors: p,
                                tasks: t,
                                tasks_done: &arena.tasks_done,
                            };
                            let delay = adversary.message_delay(&view, from, ProcId::new(to));
                            assert!(delay >= 1, "message delays are at least one time unit");
                            arena.mailboxes.push(
                                to,
                                now + delay,
                                Message::new(from, Arc::clone(&bits)),
                            );
                        }
                    }
                }
            }
            if informed.is_none() && procs[pid].knows_all_done() {
                informed = Some(ProcId::new(pid));
            }
        }

        if let Some(pid) = informed {
            // σ per Definition 2.1: every step completed at time σ is
            // still charged (the loop above ran the whole tick).
            assert!(
                arena.tasks_done.is_full(),
                "processor {pid} claims completion but tasks remain — algorithm bug"
            );
            sigma = Some(now);
            if R::ENABLED {
                rec.record(TraceEvent::Completed { now, informed: pid });
            }
            break;
        }
        now += 1;
    }

    RunReport {
        work: arena.work.total(),
        messages: msgs.total(),
        sigma,
        completed: arena.tasks_done.is_full() && sigma.is_some(),
        work_per_processor: arena.work.per_processor().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{FixedDelay, UnitDelay};
    use doall_core::{StepOutcome, TaskId};

    /// Performs tasks `start..t` then nothing; knows completion only of its
    /// own share — used to test σ semantics with communication-free procs.
    #[derive(Clone)]
    struct Sweep {
        pid: ProcId,
        next: usize,
        t: usize,
    }

    impl DoAllProcess for Sweep {
        fn pid(&self) -> ProcId {
            self.pid
        }
        fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
            if self.next < self.t {
                let z = TaskId::new(self.next);
                self.next += 1;
                StepOutcome::perform(z)
            } else {
                StepOutcome::internal()
            }
        }
        fn knows_all_done(&self) -> bool {
            self.next >= self.t
        }
        fn clone_box(&self) -> Box<dyn DoAllProcess> {
            Box::new(self.clone())
        }
    }

    fn sweep_procs(p: usize, t: usize) -> Vec<Box<dyn DoAllProcess>> {
        (0..p)
            .map(|i| {
                Box::new(Sweep {
                    pid: ProcId::new(i),
                    next: 0,
                    t,
                }) as Box<dyn DoAllProcess>
            })
            .collect()
    }

    fn sim(
        instance: Instance,
        procs: Vec<Box<dyn DoAllProcess>>,
        adversary: Box<dyn Adversary>,
    ) -> Simulation {
        Simulation::builder(instance)
            .procs(procs)
            .adversary(adversary)
            .build()
    }

    #[test]
    fn solo_sweep_work_equals_t() {
        let instance = Instance::new(1, 25).unwrap();
        let report = sim(instance, sweep_procs(1, 25), Box::new(UnitDelay)).run();
        assert!(report.completed);
        assert_eq!(report.work, 25);
        assert_eq!(report.sigma, Some(24), "σ is the tick of the last task");
        assert_eq!(report.messages, 0);
    }

    #[test]
    fn parallel_sweeps_charge_everyone_until_sigma() {
        // Two identical sweeps: both finish at tick t−1, work = 2t.
        let instance = Instance::new(2, 10).unwrap();
        let report = sim(instance, sweep_procs(2, 10), Box::new(UnitDelay)).run();
        assert!(report.completed);
        assert_eq!(report.work, 20);
        assert_eq!(report.work_per_processor, vec![10, 10]);
    }

    #[test]
    fn incomplete_run_reports_honestly() {
        /// Never performs anything.
        #[derive(Clone)]
        struct Idler;
        impl DoAllProcess for Idler {
            fn pid(&self) -> ProcId {
                ProcId::new(0)
            }
            fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
                StepOutcome::internal()
            }
            fn knows_all_done(&self) -> bool {
                false
            }
            fn clone_box(&self) -> Box<dyn DoAllProcess> {
                Box::new(Idler)
            }
        }
        let instance = Instance::new(1, 3).unwrap();
        let report = Simulation::builder(instance)
            .procs(vec![Box::new(Idler)])
            .adversary(Box::new(UnitDelay))
            .max_ticks(50)
            .build()
            .run();
        assert!(!report.completed);
        assert_eq!(report.sigma, None);
        assert_eq!(report.work, 50, "idle steps are still charged");
    }

    #[test]
    fn broadcast_counts_p_minus_one_and_delivers() {
        /// Proc 0 performs the single task and broadcasts; proc 1 waits to
        /// learn of it.
        #[derive(Clone)]
        struct Teller {
            pid: ProcId,
            sent: bool,
        }
        impl DoAllProcess for Teller {
            fn pid(&self) -> ProcId {
                self.pid
            }
            fn step(&mut self, inbox: &[Message]) -> StepOutcome {
                if self.pid.index() == 0 {
                    if !self.sent {
                        self.sent = true;
                        let mut bits = BitSet::new(1);
                        bits.insert(0);
                        return StepOutcome::perform_and_broadcast(TaskId::new(0), bits);
                    }
                } else if inbox.iter().any(|m| m.bits().contains(0)) {
                    self.sent = true; // "learned"
                }
                StepOutcome::internal()
            }
            fn knows_all_done(&self) -> bool {
                self.sent
            }
            fn clone_box(&self) -> Box<dyn DoAllProcess> {
                Box::new(self.clone())
            }
        }
        let instance = Instance::new(3, 1).unwrap();
        let procs: Vec<Box<dyn DoAllProcess>> = (0..3)
            .map(|i| {
                Box::new(Teller {
                    pid: ProcId::new(i),
                    sent: false,
                }) as Box<dyn DoAllProcess>
            })
            .collect();
        let report = sim(instance, procs, Box::new(FixedDelay::new(4))).run();
        assert!(report.completed);
        assert_eq!(report.messages, 2, "one broadcast to p−1 = 2 recipients");
        // Proc 0 knows at tick 0 → σ = 0 and only tick 0 is charged.
        assert_eq!(report.sigma, Some(0));
        assert_eq!(report.work, 3);
    }

    #[test]
    fn fixed_delay_defers_knowledge() {
        /// Only proc 0 performs; procs learn via broadcast; completion
        /// requires a non-performing proc to know (proc 0 never "knows").
        #[derive(Clone)]
        struct OneWay {
            pid: ProcId,
            done_seen: bool,
            performed: bool,
        }
        impl DoAllProcess for OneWay {
            fn pid(&self) -> ProcId {
                self.pid
            }
            fn step(&mut self, inbox: &[Message]) -> StepOutcome {
                if self.pid.index() == 0 {
                    if !self.performed {
                        self.performed = true;
                        let mut bits = BitSet::new(1);
                        bits.insert(0);
                        return StepOutcome::perform_and_broadcast(TaskId::new(0), bits);
                    }
                } else if inbox.iter().any(|m| m.bits().contains(0)) {
                    self.done_seen = true;
                }
                StepOutcome::internal()
            }
            fn knows_all_done(&self) -> bool {
                self.done_seen
            }
            fn clone_box(&self) -> Box<dyn DoAllProcess> {
                Box::new(self.clone())
            }
        }
        let mk = || {
            (0..2)
                .map(|i| {
                    Box::new(OneWay {
                        pid: ProcId::new(i),
                        done_seen: false,
                        performed: false,
                    }) as Box<dyn DoAllProcess>
                })
                .collect::<Vec<_>>()
        };
        let instance = Instance::new(2, 1).unwrap();
        let fast = sim(instance, mk(), Box::new(FixedDelay::new(1))).run();
        let slow = sim(instance, mk(), Box::new(FixedDelay::new(10))).run();
        // Broadcast at tick 0; delivered at tick d; receiver knows at d.
        assert_eq!(fast.sigma, Some(1));
        assert_eq!(slow.sigma, Some(10));
        assert!(slow.work > fast.work, "delay inflates charged work");
    }

    #[test]
    fn trace_records_key_events() {
        let instance = Instance::new(1, 2).unwrap();
        let (report, trace) = Simulation::builder(instance)
            .procs(sweep_procs(1, 2))
            .adversary(Box::new(UnitDelay))
            .trace(TraceMode::Buffered(64))
            .build()
            .run_traced();
        assert!(report.completed);
        let trace = trace.unwrap();
        let steps = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Step { .. }))
            .count();
        assert_eq!(steps, 2);
        assert!(matches!(
            trace.events().last(),
            Some(TraceEvent::Completed { now: 1, .. })
        ));
    }

    #[test]
    fn recycled_trace_keeps_capacity_and_is_reused() {
        let instance = Instance::new(1, 2).unwrap();
        let buffer = Trace::with_capacity(64);
        let (_, trace) = Simulation::builder(instance)
            .procs(sweep_procs(1, 2))
            .adversary(Box::new(UnitDelay))
            .trace(TraceMode::Recycled(buffer))
            .build()
            .run_traced();
        let trace = trace.unwrap();
        assert_eq!(trace.capacity(), 64);
        assert!(!trace.events().is_empty());
        // Hand it straight back in: cleared on entry, same capacity out.
        let (_, trace2) = Simulation::builder(instance)
            .procs(sweep_procs(1, 2))
            .adversary(Box::new(UnitDelay))
            .trace(TraceMode::Recycled(trace))
            .build()
            .run_traced();
        let trace2 = trace2.unwrap();
        assert_eq!(trace2.capacity(), 64);
        assert_eq!(trace2.dropped(), 0);
    }

    #[test]
    fn off_and_buffered_produce_identical_reports() {
        let instance = Instance::new(4, 16).unwrap();
        let off = Simulation::builder(instance)
            .procs(sweep_procs(4, 16))
            .adversary(Box::new(FixedDelay::new(3)))
            .build()
            .run();
        let (buffered, trace) = Simulation::builder(instance)
            .procs(sweep_procs(4, 16))
            .adversary(Box::new(FixedDelay::new(3)))
            .trace(TraceMode::Buffered(1 << 16))
            .build()
            .run_traced();
        assert_eq!(off, buffered, "tracing must never perturb a run");
        assert!(trace.is_some());
    }

    #[test]
    fn run_batch_returns_reports_in_seed_order() {
        let instance = Instance::new(1, 5).unwrap();
        let reports = Simulation::run_batch(
            instance,
            3,
            1_000,
            |_, procs| procs.extend(sweep_procs(1, 5)),
            |seed| Box::new(FixedDelay::new(seed + 1)),
        );
        assert_eq!(reports.len(), 3);
        // Communication-free sweeps: every seed yields the same report.
        assert!(reports.iter().all(|r| r.completed && r.work == 5));
    }

    #[test]
    fn run_batch_matches_per_replicate_construction() {
        let instance = Instance::new(2, 8).unwrap();
        let batched = Simulation::run_batch(
            instance,
            4,
            1_000,
            |_, procs| procs.extend(sweep_procs(2, 8)),
            |seed| Box::new(FixedDelay::new(seed + 1)),
        );
        let individual: Vec<RunReport> = (0..4)
            .map(|seed| {
                Simulation::builder(instance)
                    .procs(sweep_procs(2, 8))
                    .adversary(Box::new(FixedDelay::new(seed + 1)))
                    .max_ticks(1_000)
                    .build()
                    .run()
            })
            .collect();
        assert_eq!(batched, individual, "arena recycling must not leak state");
    }

    #[test]
    fn determinism_same_procs_same_adversary() {
        let instance = Instance::new(2, 8).unwrap();
        let a = sim(instance, sweep_procs(2, 8), Box::new(FixedDelay::new(3))).run();
        let b = sim(instance, sweep_procs(2, 8), Box::new(FixedDelay::new(3))).run();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one state machine per processor")]
    fn proc_count_mismatch_panics() {
        let instance = Instance::new(2, 1).unwrap();
        let _ = sim(instance, sweep_procs(1, 1), Box::new(UnitDelay));
    }

    #[test]
    #[should_panic(expected = "needs .adversary(")]
    fn missing_adversary_panics() {
        let instance = Instance::new(1, 1).unwrap();
        let _ = Simulation::builder(instance)
            .procs(sweep_procs(1, 1))
            .build();
    }
}
