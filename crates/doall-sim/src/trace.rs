//! Optional structured execution traces.

use doall_core::{ProcId, TaskId};

/// One observable event in a simulated execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Processor `pid` completed a local step at global time `now`.
    Step {
        /// Global time of the step.
        now: u64,
        /// The stepping processor.
        pid: ProcId,
        /// Task performed during the step, if any.
        performed: Option<TaskId>,
        /// Whether the step submitted a broadcast.
        broadcast: bool,
    },
    /// A broadcast from `from` was fanned out at time `now` (counted as
    /// `recipients` point-to-point messages).
    Send {
        /// Global time of submission.
        now: u64,
        /// The broadcasting processor.
        from: ProcId,
        /// Number of point-to-point messages charged.
        recipients: usize,
    },
    /// σ was reached: all tasks performed and `informed` knows it.
    Completed {
        /// σ — the completion time per Definition 2.1.
        now: u64,
        /// The first processor with complete knowledge.
        informed: ProcId,
    },
}

/// Whether (and into what) a simulation records its event trace.
///
/// Chosen at build time via `SimulationBuilder::trace`. `Off` is not
/// merely "record nothing": the simulator monomorphizes its inner loop on
/// the recorder, so the trace-free instantiation contains no per-event
/// branches or event construction at all.
#[derive(Debug, Default)]
pub enum TraceMode {
    /// No trace. The default, and the fast path: the inner loop is
    /// compiled without any recording code.
    #[default]
    Off,
    /// Record into a fresh collector retaining at most this many events.
    Buffered(usize),
    /// Record into an existing collector, reusing its allocation (and
    /// keeping its capacity). The collector is cleared first, so callers
    /// hand the trace returned by a previous `run_traced` straight back
    /// in — batch sweeps recycle one buffer per worker instead of growing
    /// a fresh multi-million-entry buffer per replicate.
    Recycled(Trace),
}

/// The compile-time recording hook the simulation loop is monomorphized
/// over: one instantiation per variant, so `TraceMode::Off` yields an
/// inner loop with no recording code at all (`ENABLED` is a constant the
/// optimizer folds away, together with the event construction feeding
/// `record`).
pub(crate) trait Recorder {
    /// Whether this recorder keeps events — `false` compiles recording
    /// sites out entirely.
    const ENABLED: bool;

    /// Consumes one event.
    fn record(&mut self, event: TraceEvent);
}

/// The `TraceMode::Off` recorder: a no-op the optimizer erases.
pub(crate) struct NoTrace;

impl Recorder for NoTrace {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

impl Recorder for Trace {
    const ENABLED: bool = true;

    #[inline]
    fn record(&mut self, event: TraceEvent) {
        Trace::record(self, event);
    }
}

/// A bounded in-memory trace collector.
///
/// Traces are for debugging and the examples; complexity measurements never
/// depend on them. The collector drops events beyond `capacity` (keeping
/// the earliest), recording how many were dropped.
#[derive(Debug, Clone)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: usize,
}

impl Trace {
    /// Creates a collector retaining at most `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (or counts it as dropped when full).
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Empties the collector for reuse, keeping the event allocation and
    /// the capacity. Long trace-mode sweeps hand one collector from run
    /// to run (see [`TraceMode::Recycled`]) instead of growing a fresh
    /// multi-million-entry buffer per replicate.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// The capacity this collector was created with — callers recycling
    /// buffers across runs of different sizes check this before reuse
    /// (an undersized buffer would truncate, which the profile analysis
    /// rejects).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained events, in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events that exceeded capacity and were dropped.
    #[must_use]
    pub fn dropped(&self) -> usize {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_until_capacity() {
        let mut t = Trace::with_capacity(2);
        for i in 0..4 {
            t.record(TraceEvent::Send {
                now: i,
                from: ProcId::new(0),
                recipients: 1,
            });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 2);
        assert!(matches!(t.events()[0], TraceEvent::Send { now: 0, .. }));
    }
}
