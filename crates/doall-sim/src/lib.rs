//! Discrete-event simulator of the paper's execution model: `p`
//! asynchronous message-passing processors driven by an omniscient
//! *d-adversary* (Section 2 of Kowalski & Shvartsman).
//!
//! # The model
//!
//! Time is measured in *global time units* — the smallest possible gap
//! between consecutive clock ticks of any processor — so every processor
//! completes **at most one local step per unit**, and at most `d` local
//! steps during any window of `d` units. The adversary:
//!
//! * decides, each time unit, which processors complete a step (arbitrary
//!   delays between local clock ticks; a crash is an infinite delay — at
//!   least one processor must survive);
//! * assigns every point-to-point message a delay of at most `d` units
//!   (`d` is *unknown* to the processors and no upper bound on it may be
//!   assumed by the algorithms).
//!
//! Work is charged per Definition 2.1 (one unit per completed local step,
//! summed until σ — the first time all tasks are performed *and* some
//! processor knows it); messages per Definition 2.2 (a broadcast to `m`
//! destinations counts `m`), charged at submission time.
//!
//! # Adversaries
//!
//! The [`Adversary`] trait exposes exactly the powers the paper grants:
//! step scheduling (with full knowledge of processor states — it may clone
//! and dry-run them, as the lower-bound constructions of Theorems 3.1/3.4
//! do) and per-message delays. The suite in [`adversary`] contains the
//! benign patterns used for upper-bound experiments and the two
//! lower-bound adversaries.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod analysis;
mod network;
mod sim;
mod trace;
mod view;

pub use adversary::{Adversary, Delivery};
pub use network::{BroadcastBus, Mailboxes};
pub use sim::{Simulation, SimulationBuilder, DEFAULT_MAX_TICKS};
pub use trace::{Trace, TraceEvent, TraceMode};
pub use view::SimView;
