//! The omniscient adversary's read-only view of the simulation.

use doall_core::BitSet;

/// What the adversary sees when making a decision.
///
/// The paper's adversary is omniscient: it also sees processor states and
/// pending messages, which the [`crate::Adversary`] trait receives as
/// separate arguments (so that this cheap, copyable core view can be
/// constructed per tick without borrowing fights).
#[derive(Debug, Clone, Copy)]
pub struct SimView<'a> {
    /// The current global time (unknown to the processors themselves).
    pub now: u64,
    /// Number of processors `p`.
    pub processors: usize,
    /// Number of tasks `t`.
    pub tasks: usize,
    /// Ground truth: which tasks have actually been performed so far.
    pub tasks_done: &'a BitSet,
}

impl<'a> SimView<'a> {
    /// Number of tasks not yet performed (`u_s` in the lower-bound proofs).
    #[must_use]
    pub fn undone_count(&self) -> usize {
        self.tasks - self.tasks_done.count()
    }

    /// Iterator over the indices of unperformed tasks (the set `U_s`).
    pub fn undone(&self) -> impl Iterator<Item = usize> + 'a {
        self.tasks_done.iter_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undone_counts_complement() {
        let mut done = BitSet::new(5);
        done.insert(1);
        done.insert(3);
        let view = SimView {
            now: 7,
            processors: 2,
            tasks: 5,
            tasks_done: &done,
        };
        assert_eq!(view.undone_count(), 3);
        assert_eq!(view.undone().collect::<Vec<_>>(), vec![0, 2, 4]);
    }
}
