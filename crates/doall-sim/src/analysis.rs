//! Post-hoc analysis of execution traces: primary/secondary executions,
//! redundancy, and per-processor activity.
//!
//! Section 4 of the paper distinguishes *primary* job executions — the
//! performances of a job not yet performed by anyone at the time the
//! performing step began — from *secondary* (redundant) ones. Executions
//! within the same global time unit are concurrent, so several processors
//! performing the same job at the same tick are all primary ("several
//! processors may be executing the same job concurrently for the first
//! time"); this is exactly why `Cont(Σ)` can exceed `n`. Lemma 4.2 bounds
//! the primary executions of ObliDo by `Cont(Σ)`; the experiment harness
//! verifies that bound with [`execution_profile`].

use crate::{Trace, TraceEvent};
use doall_core::RunReport;

/// Aggregate of a batch of runs (one grid cell of a sweep): mean, median,
/// and max of work and messages, plus completion accounting.
///
/// Produced by [`summarize`] from the reports of
/// [`crate::Simulation::run_batch`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSummary {
    /// Number of runs aggregated.
    pub runs: usize,
    /// How many of them completed (reached σ before the tick cutoff).
    pub completed: usize,
    /// Mean work across the runs.
    pub mean_work: f64,
    /// Median work across the runs (midpoint average for even counts).
    pub median_work: f64,
    /// Maximum work across the runs.
    pub max_work: u64,
    /// Mean message count across the runs.
    pub mean_messages: f64,
    /// Median message count across the runs.
    pub median_messages: f64,
    /// Maximum message count across the runs.
    pub max_messages: u64,
}

impl BatchSummary {
    /// `true` iff every run in the batch completed.
    #[must_use]
    pub fn all_completed(&self) -> bool {
        self.completed == self.runs
    }
}

fn median(sorted: &[u64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2] as f64
    } else {
        (sorted[n / 2 - 1] as f64 + sorted[n / 2] as f64) / 2.0
    }
}

/// Aggregates a batch of [`RunReport`]s into mean/median/max work and
/// message statistics.
///
/// # Panics
///
/// Panics on an empty batch (an average over zero runs is a bug in the
/// caller, not a value to propagate).
#[must_use]
pub fn summarize(reports: &[RunReport]) -> BatchSummary {
    assert!(!reports.is_empty(), "cannot summarize an empty batch");
    let mut works: Vec<u64> = reports.iter().map(|r| r.work).collect();
    let mut msgs: Vec<u64> = reports.iter().map(|r| r.messages).collect();
    works.sort_unstable();
    msgs.sort_unstable();
    let n = reports.len() as f64;
    BatchSummary {
        runs: reports.len(),
        completed: reports.iter().filter(|r| r.completed).count(),
        mean_work: works.iter().sum::<u64>() as f64 / n,
        median_work: median(&works),
        // lint:allow(H001) — invariant: callers are asserted to pass ≥ 1 report
        max_work: *works.last().expect("non-empty"),
        mean_messages: msgs.iter().sum::<u64>() as f64 / n,
        median_messages: median(&msgs),
        // lint:allow(H001) — invariant: callers are asserted to pass ≥ 1 report
        max_messages: *msgs.last().expect("non-empty"),
    }
}

/// A mergeable partial aggregate of execution profiles — the building
/// block that lets the sweep harness shard a cell's replicates across
/// workers and still produce the exact totals a sequential pass would.
///
/// Each worker folds the [`ExecutionProfile`]s of its replicate chunk
/// into one of these via [`ProfilePartial::record`]; the chunks are then
/// combined with [`ProfilePartial::merge`]. All fields are integer sums,
/// so the merged result is independent of chunk boundaries and merge
/// order — no floating-point reassociation can creep in before the final
/// division in [`ProfilePartial::mean_primary`] /
/// [`ProfilePartial::mean_secondary`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfilePartial {
    /// Number of profiles folded in.
    pub runs: usize,
    /// Sum of primary executions over the folded profiles.
    pub primary_executions: usize,
    /// Sum of secondary (redundant) executions over the folded profiles.
    pub secondary_executions: usize,
}

impl ProfilePartial {
    /// Folds one run's profile into the partial.
    pub fn record(&mut self, profile: &ExecutionProfile) {
        self.runs += 1;
        self.primary_executions += profile.primary_executions;
        self.secondary_executions += profile.secondary_executions;
    }

    /// Combines another partial into this one (associative and
    /// commutative: any merge tree over the same runs yields the same
    /// sums).
    pub fn merge(&mut self, other: &ProfilePartial) {
        self.runs += other.runs;
        self.primary_executions += other.primary_executions;
        self.secondary_executions += other.secondary_executions;
    }

    /// Mean primary executions per run.
    ///
    /// # Panics
    ///
    /// Panics if no profiles were recorded (a mean over zero runs is a
    /// caller bug, mirroring [`summarize`]).
    #[must_use]
    pub fn mean_primary(&self) -> f64 {
        assert!(self.runs > 0, "no profiles recorded");
        self.primary_executions as f64 / self.runs as f64
    }

    /// Mean secondary executions per run.
    ///
    /// # Panics
    ///
    /// Panics if no profiles were recorded.
    #[must_use]
    pub fn mean_secondary(&self) -> f64 {
        assert!(self.runs > 0, "no profiles recorded");
        self.secondary_executions as f64 / self.runs as f64
    }
}

/// Aggregate statistics extracted from an execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionProfile {
    /// Performances of a task nobody had completed before the tick began
    /// (concurrent firsts all count).
    pub primary_executions: usize,
    /// All remaining performances (redundant work).
    pub secondary_executions: usize,
    /// Number of times each task was performed, indexed by task.
    pub multiplicity: Vec<usize>,
    /// Total steps observed (including non-performing steps).
    pub steps: usize,
    /// Total broadcasts observed.
    pub broadcasts: usize,
}

impl ExecutionProfile {
    /// Total task performances (primary + secondary).
    #[must_use]
    pub fn total_executions(&self) -> usize {
        self.primary_executions + self.secondary_executions
    }

    /// The largest number of times any single task was performed.
    #[must_use]
    pub fn max_multiplicity(&self) -> usize {
        self.multiplicity.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of performances that were redundant.
    #[must_use]
    pub fn redundancy(&self) -> f64 {
        let total = self.total_executions();
        if total == 0 {
            0.0
        } else {
            self.secondary_executions as f64 / total as f64
        }
    }
}

/// Replays `trace` (from [`crate::Simulation::run_traced`]) and computes
/// the execution profile over `tasks` tasks.
///
/// Tick-batched semantics: a performance is primary iff the task had not
/// been performed before the step's tick began. The trace must be
/// complete (not capacity-truncated) for the counts to be exact; pass a
/// generous capacity.
///
/// # Panics
///
/// Panics if the trace dropped events (the profile would silently
/// undercount).
#[must_use]
pub fn execution_profile(trace: &Trace, tasks: usize) -> ExecutionProfile {
    assert_eq!(
        trace.dropped(),
        0,
        "trace was capacity-truncated; profile would be wrong"
    );
    let mut done_before_tick = vec![false; tasks];
    let mut done_this_tick: Vec<usize> = Vec::new();
    let mut current_tick = u64::MAX;
    let mut profile = ExecutionProfile {
        primary_executions: 0,
        secondary_executions: 0,
        multiplicity: vec![0; tasks],
        steps: 0,
        broadcasts: 0,
    };
    for ev in trace.events() {
        match ev {
            TraceEvent::Step { now, performed, .. } => {
                if *now != current_tick {
                    current_tick = *now;
                    for z in done_this_tick.drain(..) {
                        done_before_tick[z] = true;
                    }
                }
                profile.steps += 1;
                if let Some(task) = performed {
                    let z = task.index();
                    profile.multiplicity[z] += 1;
                    if done_before_tick[z] {
                        profile.secondary_executions += 1;
                    } else {
                        profile.primary_executions += 1;
                        done_this_tick.push(z);
                    }
                }
            }
            TraceEvent::Send { .. } => profile.broadcasts += 1,
            TraceEvent::Completed { .. } => {}
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use doall_core::{ProcId, TaskId};

    fn step(now: u64, pid: usize, task: Option<usize>) -> TraceEvent {
        TraceEvent::Step {
            now,
            pid: ProcId::new(pid),
            performed: task.map(TaskId::new),
            broadcast: false,
        }
    }

    #[test]
    fn concurrent_firsts_are_all_primary() {
        let mut trace = Trace::with_capacity(16);
        // Tick 0: both processors perform task 0 — both primary.
        trace.record(step(0, 0, Some(0)));
        trace.record(step(0, 1, Some(0)));
        // Tick 1: task 0 again — secondary; task 1 — primary.
        trace.record(step(1, 0, Some(0)));
        trace.record(step(1, 1, Some(1)));
        let p = execution_profile(&trace, 2);
        assert_eq!(p.primary_executions, 3);
        assert_eq!(p.secondary_executions, 1);
        assert_eq!(p.multiplicity, vec![3, 1]);
        assert_eq!(p.total_executions(), 4);
        assert_eq!(p.max_multiplicity(), 3);
        assert!((p.redundancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn non_performing_steps_count_as_steps_only() {
        let mut trace = Trace::with_capacity(8);
        trace.record(step(0, 0, None));
        trace.record(step(1, 0, Some(0)));
        let p = execution_profile(&trace, 1);
        assert_eq!(p.steps, 2);
        assert_eq!(p.primary_executions, 1);
        assert_eq!(p.secondary_executions, 0);
    }

    #[test]
    fn broadcasts_counted() {
        let mut trace = Trace::with_capacity(8);
        trace.record(TraceEvent::Send {
            now: 0,
            from: ProcId::new(0),
            recipients: 3,
        });
        let p = execution_profile(&trace, 1);
        assert_eq!(p.broadcasts, 1);
        assert_eq!(p.redundancy(), 0.0);
    }

    fn report(work: u64, messages: u64, completed: bool) -> doall_core::RunReport {
        doall_core::RunReport {
            work,
            messages,
            sigma: completed.then_some(work),
            completed,
            work_per_processor: vec![work],
        }
    }

    #[test]
    fn summarize_mean_median_max() {
        let s = summarize(&[
            report(10, 1, true),
            report(20, 3, true),
            report(90, 2, false),
        ]);
        assert_eq!(s.runs, 3);
        assert_eq!(s.completed, 2);
        assert!(!s.all_completed());
        assert!((s.mean_work - 40.0).abs() < 1e-12);
        assert!((s.median_work - 20.0).abs() < 1e-12);
        assert_eq!(s.max_work, 90);
        assert!((s.mean_messages - 2.0).abs() < 1e-12);
        assert!((s.median_messages - 2.0).abs() < 1e-12);
        assert_eq!(s.max_messages, 3);
    }

    #[test]
    fn summarize_even_count_median_is_midpoint() {
        let s = summarize(&[report(10, 0, true), report(30, 0, true)]);
        assert!((s.median_work - 20.0).abs() < 1e-12);
        assert!(s.all_completed());
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn summarize_rejects_empty() {
        let _ = summarize(&[]);
    }

    #[test]
    fn profile_partial_merge_is_chunk_invariant() {
        let profiles: Vec<ExecutionProfile> = (0..6)
            .map(|i| ExecutionProfile {
                primary_executions: 3 * i + 1,
                secondary_executions: i,
                multiplicity: vec![],
                steps: 0,
                broadcasts: 0,
            })
            .collect();
        // One sequential fold...
        let mut whole = ProfilePartial::default();
        for p in &profiles {
            whole.record(p);
        }
        // ...vs chunked folds merged in order, for every chunk size.
        for chunk in 1..=profiles.len() {
            let mut merged = ProfilePartial::default();
            for slice in profiles.chunks(chunk) {
                let mut part = ProfilePartial::default();
                for p in slice {
                    part.record(p);
                }
                merged.merge(&part);
            }
            assert_eq!(merged, whole, "chunk size {chunk}");
        }
        assert_eq!(whole.runs, 6);
        assert!((whole.mean_primary() - (1 + 4 + 7 + 10 + 13 + 16) as f64 / 6.0).abs() < 1e-12);
        assert!((whole.mean_secondary() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no profiles recorded")]
    fn profile_partial_rejects_empty_mean() {
        let _ = ProfilePartial::default().mean_primary();
    }

    #[test]
    #[should_panic(expected = "capacity-truncated")]
    fn truncated_trace_rejected() {
        let mut trace = Trace::with_capacity(1);
        trace.record(step(0, 0, Some(0)));
        trace.record(step(1, 0, Some(0)));
        let _ = execution_profile(&trace, 1);
    }
}
