//! Time-varying adversaries: bursty network delays and targeted
//! processor slowdown.
//!
//! The d-adversary is only constrained by the *ceiling* `d`; real systems
//! see latency that oscillates (congestion episodes) and stragglers that
//! are persistently slow rather than crashed. These adversaries exercise
//! those patterns; the algorithms must handle them unchanged since they
//! assume nothing about delay structure.

use super::{Adversary, Delivery};
use crate::{Mailboxes, SimView};
use doall_core::{DoAllProcess, ProcId};

/// Delay oscillates between `1` (calm phase) and `d` (congested phase),
/// switching every `period` time units — a square-wave latency profile
/// bounded by `d`.
///
/// Degenerate case: at `d = 1` the congested delay equals the calm
/// delay, so the square wave flattens to constant delay 1 — behaviour
/// identical to [`super::UnitDelay`] whatever the period. Callers that
/// sweep `d` should treat `d = 1` bursty cells as a `unit` baseline, not
/// a distinct scenario.
#[derive(Debug, Clone)]
pub struct BurstyDelay {
    d: u64,
    period: u64,
}

impl BurstyDelay {
    /// Creates the adversary: phases of `period` units alternate between
    /// delay 1 and delay `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `period == 0`.
    #[must_use]
    pub fn new(d: u64, period: u64) -> Self {
        assert!(d >= 1, "message delay bound must be at least 1");
        assert!(period >= 1, "phase period must be at least 1");
        Self { d, period }
    }

    /// Whether global time `now` falls in a congested phase.
    #[must_use]
    pub fn congested(&self, now: u64) -> bool {
        (now / self.period) % 2 == 1
    }
}

impl Adversary for BurstyDelay {
    fn name(&self) -> &str {
        "bursty-delay"
    }

    fn message_delay(&mut self, view: &SimView<'_>, _from: ProcId, _to: ProcId) -> u64 {
        if self.congested(view.now) {
            self.d
        } else {
            1
        }
    }

    fn delivery(&self) -> Delivery {
        Delivery::UniformBroadcast
    }
}

/// A persistent-straggler adversary: a fixed set of processors advances
/// only once every `slowdown` time units; everyone else runs full speed.
/// Message delays delegate to an inner adversary.
///
/// Unlike a crash, stragglers keep contributing (slowly) — the pattern
/// that makes "wait for everyone" strategies pathological and
/// work-stealing ones shine.
pub struct Stragglers {
    inner: Box<dyn Adversary>,
    slow: Vec<bool>,
    slowdown: u64,
}

impl std::fmt::Debug for Stragglers {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stragglers")
            .field("inner", &self.inner.name())
            .field("slow", &self.slow)
            .field("slowdown", &self.slowdown)
            .finish()
    }
}

impl Stragglers {
    /// Creates the adversary: processors with `slow[pid] == true` step
    /// only when `now % slowdown == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `slowdown == 0`, `slow` is empty, or every processor is
    /// marked slow — the layout must leave at least one full-speed
    /// processor, mirroring the crash model's ≥ 1 survivor restriction
    /// (though stragglers, unlike crashed processors, do eventually
    /// step).
    #[must_use]
    pub fn new(inner: Box<dyn Adversary>, slow: Vec<bool>, slowdown: u64) -> Self {
        assert!(slowdown >= 1, "slowdown factor must be at least 1");
        assert!(!slow.is_empty(), "need at least one processor");
        assert!(
            slow.contains(&false),
            "at least one processor must run full speed"
        );
        Self {
            inner,
            slow,
            slowdown,
        }
    }
}

impl Adversary for Stragglers {
    fn name(&self) -> &str {
        "stragglers"
    }

    fn schedule(
        &mut self,
        view: &SimView<'_>,
        _procs: &[Box<dyn DoAllProcess>],
        _mailboxes: &Mailboxes,
    ) -> Vec<bool> {
        let on_beat = view.now % self.slowdown == 0;
        (0..view.processors)
            .map(|pid| on_beat || !self.slow.get(pid).copied().unwrap_or(false))
            .collect()
    }

    fn message_delay(&mut self, view: &SimView<'_>, from: ProcId, to: ProcId) -> u64 {
        self.inner.message_delay(view, from, to)
    }

    fn delivery(&self) -> Delivery {
        self.inner.delivery()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::FixedDelay;
    use doall_core::BitSet;

    #[test]
    fn bursty_square_wave() {
        let mut a = BurstyDelay::new(9, 4);
        let done = BitSet::new(1);
        let delay_at = |a: &mut BurstyDelay, now| {
            let view = SimView {
                now,
                processors: 2,
                tasks: 1,
                tasks_done: &done,
            };
            a.message_delay(&view, ProcId::new(0), ProcId::new(1))
        };
        // Calm: ticks 0..4; congested: 4..8; calm: 8..12 …
        for now in 0..4 {
            assert_eq!(delay_at(&mut a, now), 1, "calm at {now}");
        }
        for now in 4..8 {
            assert_eq!(delay_at(&mut a, now), 9, "congested at {now}");
        }
        assert_eq!(delay_at(&mut a, 8), 1);
        assert!(!a.congested(0) && a.congested(5));
    }

    #[test]
    fn stragglers_step_on_beats_only() {
        let mut a = Stragglers::new(Box::new(FixedDelay::new(2)), vec![true, false, true], 3);
        let done = BitSet::new(1);
        let m = Mailboxes::new(3);
        let plan_at = |a: &mut Stragglers, now| {
            let view = SimView {
                now,
                processors: 3,
                tasks: 1,
                tasks_done: &done,
            };
            a.schedule(&view, &[], &m)
        };
        assert_eq!(plan_at(&mut a, 0), vec![true, true, true], "on-beat");
        assert_eq!(plan_at(&mut a, 1), vec![false, true, false]);
        assert_eq!(plan_at(&mut a, 2), vec![false, true, false]);
        assert_eq!(plan_at(&mut a, 3), vec![true, true, true]);
    }

    #[test]
    fn stragglers_delegate_delay() {
        let mut a = Stragglers::new(Box::new(FixedDelay::new(7)), vec![false], 2);
        let done = BitSet::new(1);
        let view = SimView {
            now: 0,
            processors: 1,
            tasks: 1,
            tasks_done: &done,
        };
        assert_eq!(a.message_delay(&view, ProcId::new(0), ProcId::new(0)), 7);
    }
}
