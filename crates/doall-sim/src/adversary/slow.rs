//! Step-scheduling adversaries: disparate processor speeds.

use super::{Adversary, Delivery};
use crate::{Mailboxes, SimView};
use doall_core::{DoAllProcess, ProcId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Only a rotating window of `k` processors steps per time unit — models
/// `p − k` processors being persistently slow, with the slow set drifting.
///
/// Message delays delegate to an inner adversary.
pub struct RoundRobin {
    inner: Box<dyn Adversary>,
    k: usize,
}

impl std::fmt::Debug for RoundRobin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundRobin")
            .field("inner", &self.inner.name())
            .field("k", &self.k)
            .finish()
    }
}

impl RoundRobin {
    /// At each time unit `τ`, processors `τ·k … τ·k + k − 1 (mod p)` step.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(inner: Box<dyn Adversary>, k: usize) -> Self {
        assert!(k > 0, "at least one processor must step per unit");
        Self { inner, k }
    }
}

impl Adversary for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn schedule(
        &mut self,
        view: &SimView<'_>,
        _procs: &[Box<dyn DoAllProcess>],
        _mailboxes: &Mailboxes,
    ) -> Vec<bool> {
        let p = view.processors;
        let k = self.k.min(p);
        let start = (view.now as usize).wrapping_mul(k) % p;
        let mut plan = vec![false; p];
        for off in 0..k {
            plan[(start + off) % p] = true;
        }
        plan
    }

    fn message_delay(&mut self, view: &SimView<'_>, from: ProcId, to: ProcId) -> u64 {
        self.inner.message_delay(view, from, to)
    }

    fn delivery(&self) -> Delivery {
        self.inner.delivery()
    }
}

/// Every processor steps independently with probability `prob` per time
/// unit — a jittery, heterogeneous-speed cluster.
///
/// To avoid deadlocking the simulation, if the coin flips would stall
/// everyone the adversary forces one uniformly chosen processor to step
/// (the paper's adversary can always delay everyone for a while, but a
/// zero-progress execution has unbounded work and teaches nothing in an
/// upper-bound experiment).
pub struct RandomSubset {
    inner: Box<dyn Adversary>,
    prob: f64,
    rng: StdRng,
}

impl std::fmt::Debug for RandomSubset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomSubset")
            .field("inner", &self.inner.name())
            .field("prob", &self.prob)
            .finish()
    }
}

impl RandomSubset {
    /// Creates the adversary; each processor steps with probability `prob`
    /// each unit.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < prob ≤ 1`.
    #[must_use]
    pub fn new(inner: Box<dyn Adversary>, prob: f64, seed: u64) -> Self {
        assert!(prob > 0.0 && prob <= 1.0, "prob must be in (0, 1]");
        Self {
            inner,
            prob,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for RandomSubset {
    fn name(&self) -> &str {
        "random-subset"
    }

    fn schedule(
        &mut self,
        view: &SimView<'_>,
        _procs: &[Box<dyn DoAllProcess>],
        _mailboxes: &Mailboxes,
    ) -> Vec<bool> {
        let p = view.processors;
        let mut plan: Vec<bool> = (0..p).map(|_| self.rng.random_bool(self.prob)).collect();
        if !plan.iter().any(|&b| b) {
            plan[self.rng.random_range(0..p)] = true;
        }
        plan
    }

    fn message_delay(&mut self, view: &SimView<'_>, from: ProcId, to: ProcId) -> u64 {
        self.inner.message_delay(view, from, to)
    }

    fn delivery(&self) -> Delivery {
        self.inner.delivery()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::FixedDelay;
    use doall_core::BitSet;

    #[test]
    fn round_robin_rotates() {
        let mut a = RoundRobin::new(Box::new(FixedDelay::new(1)), 2);
        let done = BitSet::new(1);
        let m = Mailboxes::new(4);
        let mk = |now| SimView {
            now,
            processors: 4,
            tasks: 1,
            tasks_done: &done,
        };
        assert_eq!(a.schedule(&mk(0), &[], &m), vec![true, true, false, false]);
        assert_eq!(a.schedule(&mk(1), &[], &m), vec![false, false, true, true]);
        assert_eq!(a.schedule(&mk(2), &[], &m), vec![true, true, false, false]);
    }

    #[test]
    fn round_robin_exactly_k_step() {
        let mut a = RoundRobin::new(Box::new(FixedDelay::new(1)), 3);
        let done = BitSet::new(1);
        let m = Mailboxes::new(7);
        for now in 0..20 {
            let view = SimView {
                now,
                processors: 7,
                tasks: 1,
                tasks_done: &done,
            };
            let plan = a.schedule(&view, &[], &m);
            assert_eq!(plan.iter().filter(|&&b| b).count(), 3, "now={now}");
        }
    }

    #[test]
    fn random_subset_always_makes_progress() {
        // Tiny probability: the forced-progress rule must kick in.
        let mut a = RandomSubset::new(Box::new(FixedDelay::new(1)), 0.001, 9);
        let done = BitSet::new(1);
        let m = Mailboxes::new(5);
        for now in 0..50 {
            let view = SimView {
                now,
                processors: 5,
                tasks: 1,
                tasks_done: &done,
            };
            let plan = a.schedule(&view, &[], &m);
            assert!(plan.iter().any(|&b| b), "someone must step");
        }
    }

    #[test]
    fn random_subset_is_seeded() {
        let done = BitSet::new(1);
        let m = Mailboxes::new(6);
        let run = |seed| {
            let mut a = RandomSubset::new(Box::new(FixedDelay::new(1)), 0.5, seed);
            (0..10)
                .map(|now| {
                    let view = SimView {
                        now,
                        processors: 6,
                        tasks: 1,
                        tasks_done: &done,
                    };
                    a.schedule(&view, &[], &m)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
    }
}
