//! The Theorem 3.1 adversary: forces any *deterministic* Do-All algorithm
//! to perform work `Ω(t + p·min{d, t}·log_{d+1}(d + t))`.
//!
//! Construction (following the proof):
//!
//! * Computation is partitioned into *stages* of `L = min{d, ⌈t/6⌉}` time
//!   units. Every message submitted during a stage is delivered exactly at
//!   the stage's end, so no information crosses a stage boundary inward —
//!   legal for a d-adversary because `L ≤ d`.
//! * At the start of stage `s`, with `U_s` the still-unperformed tasks
//!   (`u_s = |U_s|`), the adversary *dry-runs* every processor for `L`
//!   steps (cloning its state machine and feeding it the messages that are
//!   due at the boundary, then nothing — exactly what the real stage will
//!   look like for an undelayed processor). The tasks of `U_s` the clone
//!   performs form the set `J_s(i)`.
//! * By the pigeonhole claim in the proof, at least `u_s/(3L)` tasks lie in
//!   at most `2pL/u_s` of the sets `J_s(i)`. The adversary picks such a
//!   low-coverage set `J_s` and freezes (delays for the whole stage) every
//!   processor whose `J_s(i)` meets `J_s`; at least `p/3` processors keep
//!   running, yet all of `J_s` stays unperformed — so at least
//!   `u_s/(3L)` tasks survive into stage `s + 1` while `Ω(p·L)` work is
//!   expended.
//!
//! The dry-run prediction is exact for deterministic algorithms (the
//! clone's trajectory equals the real one because frozen-out messages
//! cannot arrive mid-stage). For randomized algorithms use
//! [`super::RandomizedLbAdversary`].

use super::Adversary;
use crate::{Mailboxes, SimView};
use doall_core::{DoAllProcess, ProcId};

/// Adaptive lower-bound adversary for deterministic algorithms
/// (Theorem 3.1).
#[derive(Debug)]
pub struct LowerBoundAdversary {
    d: u64,
    stage_len: u64,
    /// Current stage's frozen set (`true` = delayed for the whole stage).
    frozen: Vec<bool>,
    /// First tick of the stage currently planned, or `None` before the
    /// first call.
    planned_stage: Option<u64>,
    /// Number of stages the adversary has constructed (for reporting).
    stages: u64,
}

impl LowerBoundAdversary {
    /// Creates the adversary for delay bound `d ≥ 1` and instance size
    /// `tasks`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `tasks == 0`.
    #[must_use]
    pub fn new(d: u64, tasks: usize) -> Self {
        let stage_len = d.min(((tasks as u64) / 6).max(1));
        Self::with_stage_len(d, tasks, stage_len)
    }

    /// Creates the adversary with an explicit stage length `L` instead of
    /// the paper's `min{d, max(⌊t/6⌋, 1)}` — the knob behind the grid
    /// harness's `lb:<stage>` keys. Messages submitted during a stage are
    /// delivered at its end, so `L ≤ d` is required for the construction
    /// to remain a legal d-adversary.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`, `tasks == 0`, `stage_len == 0`, or
    /// `stage_len > d`.
    #[must_use]
    pub fn with_stage_len(d: u64, tasks: usize, stage_len: u64) -> Self {
        assert!(d >= 1, "message delay bound must be at least 1");
        assert!(tasks >= 1, "need at least one task");
        assert!(stage_len >= 1, "stage length must be at least 1");
        assert!(
            stage_len <= d,
            "stage length {stage_len} exceeds the delay bound {d}"
        );
        Self {
            d,
            stage_len,
            frozen: Vec::new(),
            planned_stage: None,
            stages: 0,
        }
    }

    /// The delay bound `d` this adversary was constructed with.
    #[must_use]
    pub fn d(&self) -> u64 {
        self.d
    }

    /// The stage length `L = min{d, max(⌊t/6⌋, 1)}`.
    #[must_use]
    pub fn stage_len(&self) -> u64 {
        self.stage_len
    }

    /// Number of stages planned so far.
    #[must_use]
    pub fn stages_planned(&self) -> u64 {
        self.stages
    }

    fn stage_start(&self, now: u64) -> u64 {
        now / self.stage_len * self.stage_len
    }

    /// Builds the stage plan: dry-run every processor, pick `J_s`, freeze
    /// the processors that would touch it.
    fn plan_stage(
        &mut self,
        view: &SimView<'_>,
        procs: &[Box<dyn DoAllProcess>],
        mailboxes: &Mailboxes,
    ) {
        let p = view.processors;
        self.stages += 1;
        self.frozen = vec![false; p];

        let undone: Vec<usize> = view.undone().collect();
        let us = undone.len();
        if us == 0 {
            return; // completion is imminent; nothing to defend
        }
        let l = self.stage_len as usize;

        // Dry-run each processor for L steps: boundary inbox first, then
        // silence (exactly the real stage for an unfrozen processor).
        let mut sets: Vec<Vec<usize>> = Vec::with_capacity(p);
        let mut counts: Vec<u32> = vec![0; view.tasks];
        for (pid, proc_) in procs.iter().enumerate() {
            let mut clone = proc_.clone_box();
            let mut performed: Vec<usize> = Vec::new();
            let mut inbox = mailboxes.peek_due(pid, view.now);
            for _ in 0..l {
                let outcome = clone.step(&inbox);
                inbox.clear();
                if let Some(task) = outcome.performed {
                    let z = task.index();
                    if !view.tasks_done.contains(z) {
                        performed.push(z);
                    }
                }
                if clone.knows_all_done() {
                    break;
                }
            }
            performed.sort_unstable();
            performed.dedup();
            for &z in &performed {
                counts[z] += 1;
            }
            sets.push(performed);
        }

        // J_s: up to ⌈u_s/(3L)⌉ unperformed tasks with coverage
        // ≤ 2pL/u_s (the pigeonhole claim guarantees enough exist).
        let threshold = 2.0 * p as f64 * l as f64 / us as f64;
        let target = us.div_ceil(3 * l).max(1);
        let mut js: Vec<usize> = undone
            .iter()
            .copied()
            .filter(|&z| f64::from(counts[z]) <= threshold)
            .take(target)
            .collect();
        if js.is_empty() {
            // Degenerate tail (e.g. every remaining task is covered by
            // everyone): defend the single least-covered task.
            if let Some(&z) = undone.iter().min_by_key(|&&z| counts[z]) {
                js.push(z);
            }
        }
        let js_mask: std::collections::BTreeSet<usize> = js.into_iter().collect();

        for (pid, set) in sets.iter().enumerate() {
            if set.iter().any(|z| js_mask.contains(z)) {
                self.frozen[pid] = true;
            }
        }
        // The claim guarantees |P_s| ≥ p/3 in the regime of the proof; in
        // degenerate tails everyone might touch J_s, and freezing everyone
        // would stall the run without adding to the bound. Keep at least
        // one processor running — necessarily one that will perform J_s
        // tasks, ending the game, which is the right outcome at the tail.
        if self.frozen.iter().all(|&f| f) {
            self.frozen[0] = false;
        }
    }
}

impl Adversary for LowerBoundAdversary {
    fn name(&self) -> &str {
        "lower-bound(det)"
    }

    fn schedule(
        &mut self,
        view: &SimView<'_>,
        procs: &[Box<dyn DoAllProcess>],
        mailboxes: &Mailboxes,
    ) -> Vec<bool> {
        let start = self.stage_start(view.now);
        if self.planned_stage != Some(start) {
            self.plan_stage(view, procs, mailboxes);
            self.planned_stage = Some(start);
        }
        self.frozen.iter().map(|&f| !f).collect()
    }

    fn message_delay(&mut self, view: &SimView<'_>, _from: ProcId, _to: ProcId) -> u64 {
        // Deliver exactly at the next stage boundary: delay ≤ L ≤ d.
        (view.now / self.stage_len + 1) * self.stage_len - view.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doall_core::{BitSet, Message, StepOutcome, TaskId};

    /// A trivial deterministic process that sweeps tasks in index order.
    #[derive(Clone)]
    struct Sweep {
        pid: ProcId,
        next: usize,
        t: usize,
    }

    impl DoAllProcess for Sweep {
        fn pid(&self) -> ProcId {
            self.pid
        }
        fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
            if self.next < self.t {
                let task = TaskId::new(self.next);
                self.next += 1;
                StepOutcome::perform(task)
            } else {
                StepOutcome::internal()
            }
        }
        fn knows_all_done(&self) -> bool {
            self.next >= self.t
        }
        fn clone_box(&self) -> Box<dyn DoAllProcess> {
            Box::new(self.clone())
        }
    }

    fn sweeps(p: usize, t: usize) -> Vec<Box<dyn DoAllProcess>> {
        (0..p)
            .map(|i| {
                Box::new(Sweep {
                    pid: ProcId::new(i),
                    next: 0,
                    t,
                }) as Box<dyn DoAllProcess>
            })
            .collect()
    }

    #[test]
    fn stage_len_is_min_of_d_and_t_over_6() {
        assert_eq!(LowerBoundAdversary::new(4, 60).stage_len(), 4);
        assert_eq!(LowerBoundAdversary::new(100, 60).stage_len(), 10);
        assert_eq!(LowerBoundAdversary::new(3, 2).stage_len(), 1);
    }

    #[test]
    fn freezes_identical_processors_but_keeps_one() {
        // All processors sweep identically, so every J_s(i) is the same;
        // everyone touches J_s and the keep-one fallback must fire.
        let mut adv = LowerBoundAdversary::new(2, 30);
        let procs = sweeps(4, 30);
        let done = BitSet::new(30);
        let view = SimView {
            now: 0,
            processors: 4,
            tasks: 30,
            tasks_done: &done,
        };
        let m = Mailboxes::new(4);
        let plan = adv.schedule(&view, &procs, &m);
        assert!(plan.iter().any(|&b| b), "progress is preserved");
        assert_eq!(adv.stages_planned(), 1);
    }

    #[test]
    fn replans_only_at_stage_boundaries() {
        let mut adv = LowerBoundAdversary::new(5, 60); // L = 5
        let procs = sweeps(3, 60);
        let done = BitSet::new(60);
        let m = Mailboxes::new(3);
        for now in 0..5 {
            let view = SimView {
                now,
                processors: 3,
                tasks: 60,
                tasks_done: &done,
            };
            adv.schedule(&view, &procs, &m);
        }
        assert_eq!(adv.stages_planned(), 1, "one plan for ticks 0..5");
        let view = SimView {
            now: 5,
            processors: 3,
            tasks: 60,
            tasks_done: &done,
        };
        adv.schedule(&view, &procs, &m);
        assert_eq!(adv.stages_planned(), 2);
    }

    #[test]
    fn delays_deliver_at_stage_boundary() {
        let mut adv = LowerBoundAdversary::new(4, 240); // L = 4
        let done = BitSet::new(240);
        for now in 0..12u64 {
            let view = SimView {
                now,
                processors: 2,
                tasks: 240,
                tasks_done: &done,
            };
            let delay = adv.message_delay(&view, ProcId::new(0), ProcId::new(1));
            assert!((1..=4).contains(&delay));
            assert_eq!((now + delay) % 4, 0, "lands on a boundary");
        }
    }

    #[test]
    fn diverse_processors_leave_majority_running() {
        // Processors sweeping from different offsets have disjoint J_s(i);
        // the adversary should freeze only a minority.
        #[derive(Clone)]
        struct OffsetSweep {
            pid: ProcId,
            next: usize,
            t: usize,
        }
        impl DoAllProcess for OffsetSweep {
            fn pid(&self) -> ProcId {
                self.pid
            }
            fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
                let task = TaskId::new(self.next % self.t);
                self.next += 1;
                StepOutcome::perform(task)
            }
            fn knows_all_done(&self) -> bool {
                false
            }
            fn clone_box(&self) -> Box<dyn DoAllProcess> {
                Box::new(self.clone())
            }
        }
        let t = 120;
        let p = 6;
        let procs: Vec<Box<dyn DoAllProcess>> = (0..p)
            .map(|i| {
                Box::new(OffsetSweep {
                    pid: ProcId::new(i),
                    next: i * 20,
                    t,
                }) as Box<dyn DoAllProcess>
            })
            .collect();
        let mut adv = LowerBoundAdversary::new(4, t);
        let done = BitSet::new(t);
        let view = SimView {
            now: 0,
            processors: p,
            tasks: t,
            tasks_done: &done,
        };
        let plan = adv.schedule(&view, &procs, &Mailboxes::new(p));
        let running = plan.iter().filter(|&&b| b).count();
        assert!(
            running * 3 >= p,
            "at least p/3 processors keep running (got {running}/{p})"
        );
    }
}
