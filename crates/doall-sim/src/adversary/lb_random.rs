//! The Theorem 3.4 adversary: forces any *randomized* algorithm to
//! `Ω(t + p·min{d, t}·log_{d+1}(d + t))` expected work.
//!
//! The deterministic dry-run of Theorem 3.1 does not apply to randomized
//! algorithms (an adaptive adversary cannot pre-commit to their coin
//! flips), so the proof replaces it with an *online* rule, illustrated in
//! the paper's Fig. 1:
//!
//! * stages of `L = min{d, ⌈t/6⌉}` units, stage-boundary delivery (as in
//!   Theorem 3.1);
//! * at the start of stage `s`, the adversary fixes a defended set
//!   `J_s ⊆ U_s` of `⌈u_s/(L+1)⌉` unperformed tasks — Lemma 3.3 proves a
//!   good choice exists for *any* task distribution, and for the
//!   symmetric algorithms under attack (PaRan1/PaRan2 pick uniformly) all
//!   sets of this size are equivalent, so we sample uniformly;
//! * during the stage the adversary watches each running processor and
//!   **delays it the moment its next step would perform a task of `J_s`**
//!   (detected by a one-step peek on a clone: the clone carries the same
//!   RNG state, so the prediction is exact — this is precisely the
//!   omniscient adaptivity the model grants), keeping it frozen to the
//!   stage end.
//!
//! Lemma 3.3 guarantees that with probability `≥ 1 − e^{−p/512}` at least
//! `p/64` processors survive the stage unfrozen while all of `J_s` remains
//! unperformed.

use super::Adversary;
use crate::{Mailboxes, SimView};
use doall_core::{DoAllProcess, ProcId};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Adaptive online lower-bound adversary for randomized algorithms
/// (Theorem 3.4).
#[derive(Debug)]
pub struct RandomizedLbAdversary {
    stage_len: u64,
    rng: StdRng,
    // BTreeSet, not HashSet: membership-only today, but a deterministic
    // container keeps any future iteration (debug dumps, tracing) stable
    // across processes — the D001 invariant.
    defended: BTreeSet<usize>,
    frozen: Vec<bool>,
    planned_stage: Option<u64>,
    stages: u64,
}

impl RandomizedLbAdversary {
    /// Creates the adversary for delay bound `d ≥ 1` and instance size
    /// `tasks`, with the given RNG seed for the `J_s` choices.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` or `tasks == 0`.
    #[must_use]
    pub fn new(d: u64, tasks: usize, seed: u64) -> Self {
        let stage_len = d.min(((tasks as u64) / 6).max(1));
        Self::with_stage_len(d, tasks, stage_len, seed)
    }

    /// Creates the adversary with an explicit stage length `L` instead of
    /// the paper's `min{d, max(⌊t/6⌋, 1)}` — the knob behind the grid
    /// harness's `lbrand:<stage>` keys. Stage-boundary delivery means
    /// `L ≤ d` is required for the construction to remain a legal
    /// d-adversary.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`, `tasks == 0`, `stage_len == 0`, or
    /// `stage_len > d`.
    #[must_use]
    pub fn with_stage_len(d: u64, tasks: usize, stage_len: u64, seed: u64) -> Self {
        assert!(d >= 1, "message delay bound must be at least 1");
        assert!(tasks >= 1, "need at least one task");
        assert!(stage_len >= 1, "stage length must be at least 1");
        assert!(
            stage_len <= d,
            "stage length {stage_len} exceeds the delay bound {d}"
        );
        Self {
            stage_len,
            rng: StdRng::seed_from_u64(seed),
            defended: BTreeSet::new(),
            frozen: Vec::new(),
            planned_stage: None,
            stages: 0,
        }
    }

    /// The stage length `L = min{d, max(⌊t/6⌋, 1)}`.
    #[must_use]
    pub fn stage_len(&self) -> u64 {
        self.stage_len
    }

    /// Number of stages begun so far.
    #[must_use]
    pub fn stages_planned(&self) -> u64 {
        self.stages
    }

    fn begin_stage(&mut self, view: &SimView<'_>) {
        self.stages += 1;
        self.frozen = vec![false; view.processors];
        self.defended.clear();

        let undone: Vec<usize> = view.undone().collect();
        let us = undone.len();
        if us == 0 {
            return;
        }
        let l = self.stage_len as usize;
        // |J_s| = ⌈u_s/(L+1)⌉, uniformly sampled (Lemma 3.3 existence; all
        // sets equivalent for symmetric algorithms).
        let size = us.div_ceil(l + 1).max(1).min(us);
        // Keep at least one task undefended so the run can always progress;
        // defending everything would stall the simulation rather than
        // charging work (the proof never needs J_s = U_s either).
        let size = size.min(us - 1).max(if us > 1 { 1 } else { 0 });
        if size == 0 {
            return;
        }
        for idx in sample(&mut self.rng, us, size) {
            self.defended.insert(undone[idx]);
        }
    }
}

impl Adversary for RandomizedLbAdversary {
    fn name(&self) -> &str {
        "lower-bound(rand)"
    }

    fn schedule(
        &mut self,
        view: &SimView<'_>,
        procs: &[Box<dyn DoAllProcess>],
        mailboxes: &Mailboxes,
    ) -> Vec<bool> {
        let start = view.now / self.stage_len * self.stage_len;
        if self.planned_stage != Some(start) {
            self.begin_stage(view);
            self.planned_stage = Some(start);
        }
        if !self.defended.is_empty() {
            // Delay-on-touch: peek one step ahead of every running
            // processor; freeze it if it is about to perform a defended
            // task. The clone carries identical state (including RNG), so
            // the peek is an exact prediction of the real step.
            for (pid, proc_) in procs.iter().enumerate() {
                if self.frozen[pid] {
                    continue;
                }
                let inbox = mailboxes.peek_due(pid, view.now);
                let mut clone = proc_.clone_box();
                let outcome = clone.step(&inbox);
                if let Some(task) = outcome.performed {
                    if self.defended.contains(&task.index()) {
                        self.frozen[pid] = true;
                    }
                }
            }
        }
        if self.frozen.iter().all(|&f| f) {
            // Keep progress alive in degenerate tails (see the
            // deterministic adversary for the rationale).
            self.frozen[0] = false;
        }
        self.frozen.iter().map(|&f| !f).collect()
    }

    fn message_delay(&mut self, view: &SimView<'_>, _from: ProcId, _to: ProcId) -> u64 {
        (view.now / self.stage_len + 1) * self.stage_len - view.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doall_core::{BitSet, Message, StepOutcome, TaskId};
    use rand::Rng;

    /// A process that performs uniformly random tasks (a miniature
    /// PaRan2).
    #[derive(Clone)]
    struct RandomPicker {
        pid: ProcId,
        t: usize,
        rng: StdRng,
        done: usize,
    }

    impl DoAllProcess for RandomPicker {
        fn pid(&self) -> ProcId {
            self.pid
        }
        fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
            let z = self.rng.random_range(0..self.t);
            self.done += 1;
            StepOutcome::perform(TaskId::new(z))
        }
        fn knows_all_done(&self) -> bool {
            false
        }
        fn clone_box(&self) -> Box<dyn DoAllProcess> {
            Box::new(self.clone())
        }
    }

    fn pickers(p: usize, t: usize) -> Vec<Box<dyn DoAllProcess>> {
        (0..p)
            .map(|i| {
                Box::new(RandomPicker {
                    pid: ProcId::new(i),
                    t,
                    rng: StdRng::seed_from_u64(i as u64),
                    done: 0,
                }) as Box<dyn DoAllProcess>
            })
            .collect()
    }

    #[test]
    fn freezes_processors_touching_defended_tasks() {
        let t = 60;
        let p = 8;
        let procs = pickers(p, t);
        let mut adv = RandomizedLbAdversary::new(6, t, 42);
        let done = BitSet::new(t);
        let view = SimView {
            now: 0,
            processors: p,
            tasks: t,
            tasks_done: &done,
        };
        let m = Mailboxes::new(p);
        let plan = adv.schedule(&view, &procs, &m);
        // The peek predicts each picker's first draw exactly; with
        // |J_s| = ⌈60/7⌉ = 9 defended of 60 tasks, freezing is possible
        // but not certain — just verify the invariants.
        assert_eq!(plan.len(), p);
        assert!(plan.iter().any(|&b| b), "someone keeps running");
        assert_eq!(adv.stages_planned(), 1);
    }

    #[test]
    fn peek_prediction_is_exact() {
        // A frozen processor must be exactly one that would have performed
        // a defended task: verify by replaying the real step.
        let t = 30;
        let p = 6;
        let mut procs = pickers(p, t);
        let mut adv = RandomizedLbAdversary::new(3, t, 7);
        let done = BitSet::new(t);
        let view = SimView {
            now: 0,
            processors: p,
            tasks: t,
            tasks_done: &done,
        };
        let m = Mailboxes::new(p);
        let plan = adv.schedule(&view, &procs, &m);
        for (pid, &stepping) in plan.iter().enumerate() {
            let outcome = procs[pid].step(&[]);
            let task = outcome.performed.unwrap().index();
            if !stepping {
                assert!(
                    adv.defended.contains(&task),
                    "frozen {pid} would indeed have performed defended task {task}"
                );
            } else {
                assert!(
                    !adv.defended.contains(&task),
                    "running {pid} does not touch the defended set on this step"
                );
            }
        }
    }

    #[test]
    fn defended_set_size_follows_lemma() {
        let t = 120;
        let mut adv = RandomizedLbAdversary::new(5, t, 1); // L = 5
        let done = BitSet::new(t);
        let view = SimView {
            now: 0,
            processors: 4,
            tasks: t,
            tasks_done: &done,
        };
        adv.begin_stage(&view);
        // ⌈120/6⌉ = 20 defended tasks.
        assert_eq!(adv.defended.len(), 20);
    }

    #[test]
    fn boundary_delivery() {
        let t = 600;
        let mut adv = RandomizedLbAdversary::new(10, t, 0);
        let done = BitSet::new(t);
        for now in 0..25u64 {
            let view = SimView {
                now,
                processors: 2,
                tasks: t,
                tasks_done: &done,
            };
            let delay = adv.message_delay(&view, ProcId::new(0), ProcId::new(1));
            assert!((1..=10).contains(&delay));
            assert_eq!((now + delay) % 10, 0);
        }
    }
}
