//! The adversary interface and the adversary suite.
//!
//! The paper's adversary (Section 2.2) is omniscient and adaptive: during
//! the execution it chooses, per time unit, which processors complete a
//! local step (arbitrary step delays; crash = infinite delay, with at least
//! one survivor) and assigns each message a delay of at most `d` units. The
//! [`Adversary`] trait mirrors those two powers exactly; implementations
//! receive read access to processor states (and may clone/dry-run them —
//! this is how the Theorem 3.1 and 3.4 lower-bound adversaries are built)
//! and to pending mailboxes.

mod basic;
mod bursty;
mod crash;
mod lb_random;
mod lower_bound;
mod slow;

pub use basic::{FixedDelay, RandomDelay, StageAligned, UnitDelay};
pub use bursty::{BurstyDelay, Stragglers};
pub use crash::CrashSchedule;
pub use lb_random::RandomizedLbAdversary;
pub use lower_bound::LowerBoundAdversary;
pub use slow::{RandomSubset, RoundRobin};

use crate::{Mailboxes, SimView};
use doall_core::{DoAllProcess, ProcId};

/// How an adversary exercises its delay power — which delivery engine
/// the simulator may use.
///
/// This is a *promise made by the adversary*, checked nowhere: declaring
/// [`UniformBroadcast`](Self::UniformBroadcast) without honouring its
/// contract silently changes executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Delivery {
    /// The general case (and the default): delays may differ per
    /// recipient, or depend on adversary state advanced per
    /// [`message_delay`](Adversary::message_delay) call (seeded RNGs), or
    /// the adversary inspects pending mailboxes when scheduling. The
    /// simulator materializes one in-flight message per recipient and
    /// calls `message_delay` once per `(from, to)` pair, in recipient
    /// order.
    #[default]
    PerRecipient,
    /// The adversary promises that (1) `message_delay` is a pure
    /// function of the view and the sender — the same value for every
    /// recipient of a broadcast, with no per-call state advanced — and
    /// (2) its scheduling never reads the mailboxes. The simulator may
    /// then call `message_delay` once per broadcast and deliver full
    /// broadcasts through the shared [`crate::BroadcastBus`], which
    /// stores each payload once and coalesces same-instant broadcasts by
    /// union instead of materializing `p − 1` envelopes. Work, message,
    /// and σ accounting are unchanged — only the delivery engine is.
    UniformBroadcast,
}

/// An omniscient, adaptive d-adversary.
///
/// Both powers default to the benign choice (everyone steps, minimal
/// delay 1), so simple adversaries override only one method.
pub trait Adversary: Send {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> &str {
        "adversary"
    }

    /// Which processors complete a local step at time `view.now`.
    ///
    /// `procs` are the live processor states (the adversary may clone and
    /// dry-run them — the simulator will execute the *real* step on the
    /// originals afterwards); `mailboxes` hold the in-flight messages, so
    /// the adversary can see what each processor is about to receive.
    ///
    /// Returning `false` for a processor models a delay between its local
    /// clock ticks; returning `false` forever models a crash. The simulator
    /// never delivers messages to or charges work for non-stepping
    /// processors at that tick.
    fn schedule(
        &mut self,
        view: &SimView<'_>,
        procs: &[Box<dyn DoAllProcess>],
        mailboxes: &Mailboxes,
    ) -> Vec<bool> {
        let _ = (procs, mailboxes);
        vec![true; view.processors]
    }

    /// The delay, in global time units (`≥ 1`), of a message submitted at
    /// `view.now` from `from` to `to`. A *d-adversary* must return values
    /// `≤ d`; the simulator records the maximum returned value so
    /// experiment reports can state the effective `d` of the execution.
    fn message_delay(&mut self, view: &SimView<'_>, from: ProcId, to: ProcId) -> u64 {
        let _ = (view, from, to);
        1
    }

    /// Which delivery engine this adversary's promises allow (see
    /// [`Delivery`]). Defaults to the fully general
    /// [`Delivery::PerRecipient`]; adversaries whose delays are
    /// recipient-oblivious and stateless, and whose scheduling ignores
    /// the mailboxes, should return
    /// [`Delivery::UniformBroadcast`] to unlock the zero-copy broadcast
    /// bus. Wrappers that delegate `message_delay` to an inner adversary
    /// must delegate this too.
    fn delivery(&self) -> Delivery {
        Delivery::PerRecipient
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doall_core::BitSet;

    struct Defaulted;
    impl Adversary for Defaulted {}

    #[test]
    fn default_schedule_steps_everyone() {
        let done = BitSet::new(3);
        let view = SimView {
            now: 0,
            processors: 4,
            tasks: 3,
            tasks_done: &done,
        };
        let mut a = Defaulted;
        let plan = a.schedule(&view, &[], &Mailboxes::new(4));
        assert_eq!(plan, vec![true; 4]);
        assert_eq!(a.message_delay(&view, ProcId::new(0), ProcId::new(1)), 1);
        assert_eq!(a.name(), "adversary");
    }
}
