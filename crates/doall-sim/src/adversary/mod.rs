//! The adversary interface and the adversary suite.
//!
//! The paper's adversary (Section 2.2) is omniscient and adaptive: during
//! the execution it chooses, per time unit, which processors complete a
//! local step (arbitrary step delays; crash = infinite delay, with at least
//! one survivor) and assigns each message a delay of at most `d` units. The
//! [`Adversary`] trait mirrors those two powers exactly; implementations
//! receive read access to processor states (and may clone/dry-run them —
//! this is how the Theorem 3.1 and 3.4 lower-bound adversaries are built)
//! and to pending mailboxes.

mod basic;
mod bursty;
mod crash;
mod lb_random;
mod lower_bound;
mod slow;

pub use basic::{FixedDelay, RandomDelay, StageAligned, UnitDelay};
pub use bursty::{BurstyDelay, Stragglers};
pub use crash::CrashSchedule;
pub use lb_random::RandomizedLbAdversary;
pub use lower_bound::LowerBoundAdversary;
pub use slow::{RandomSubset, RoundRobin};

use crate::{Mailboxes, SimView};
use doall_core::{DoAllProcess, ProcId};

/// An omniscient, adaptive d-adversary.
///
/// Both powers default to the benign choice (everyone steps, minimal
/// delay 1), so simple adversaries override only one method.
pub trait Adversary: Send {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> &str {
        "adversary"
    }

    /// Which processors complete a local step at time `view.now`.
    ///
    /// `procs` are the live processor states (the adversary may clone and
    /// dry-run them — the simulator will execute the *real* step on the
    /// originals afterwards); `mailboxes` hold the in-flight messages, so
    /// the adversary can see what each processor is about to receive.
    ///
    /// Returning `false` for a processor models a delay between its local
    /// clock ticks; returning `false` forever models a crash. The simulator
    /// never delivers messages to or charges work for non-stepping
    /// processors at that tick.
    fn schedule(
        &mut self,
        view: &SimView<'_>,
        procs: &[Box<dyn DoAllProcess>],
        mailboxes: &Mailboxes,
    ) -> Vec<bool> {
        let _ = (procs, mailboxes);
        vec![true; view.processors]
    }

    /// The delay, in global time units (`≥ 1`), of a message submitted at
    /// `view.now` from `from` to `to`. A *d-adversary* must return values
    /// `≤ d`; the simulator records the maximum returned value so
    /// experiment reports can state the effective `d` of the execution.
    fn message_delay(&mut self, view: &SimView<'_>, from: ProcId, to: ProcId) -> u64 {
        let _ = (view, from, to);
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doall_core::BitSet;

    struct Defaulted;
    impl Adversary for Defaulted {}

    #[test]
    fn default_schedule_steps_everyone() {
        let done = BitSet::new(3);
        let view = SimView {
            now: 0,
            processors: 4,
            tasks: 3,
            tasks_done: &done,
        };
        let mut a = Defaulted;
        let plan = a.schedule(&view, &[], &Mailboxes::new(4));
        assert_eq!(plan, vec![true; 4]);
        assert_eq!(a.message_delay(&view, ProcId::new(0), ProcId::new(1)), 1);
        assert_eq!(a.name(), "adversary");
    }
}
