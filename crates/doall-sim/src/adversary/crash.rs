//! Crash failures layered over another adversary.

use super::{Adversary, Delivery};
use crate::{Mailboxes, SimView};
use doall_core::{DoAllProcess, ProcId};

/// Crashes processors at scheduled times, delegating everything else to an
/// inner adversary.
///
/// A crash is modelled exactly as the paper does — an infinite delay: a
/// crashed processor never completes another step. The constructor enforces
/// the paper's only restriction, that at least one processor never crashes.
pub struct CrashSchedule {
    inner: Box<dyn Adversary>,
    crash_at: Vec<Option<u64>>,
}

impl std::fmt::Debug for CrashSchedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashSchedule")
            .field("inner", &self.inner.name())
            .field("crash_at", &self.crash_at)
            .finish()
    }
}

impl CrashSchedule {
    /// Wraps `inner` with crash times: `crash_at[i] = Some(τ)` crashes
    /// processor `i` at global time `τ` (it completes no step at any time
    /// `≥ τ`), `None` means it never crashes.
    ///
    /// # Panics
    ///
    /// Panics if every entry is `Some` (the paper requires at least one
    /// non-faulty processor) or if `crash_at` is empty.
    #[must_use]
    pub fn new(inner: Box<dyn Adversary>, crash_at: Vec<Option<u64>>) -> Self {
        assert!(!crash_at.is_empty(), "need at least one processor");
        assert!(
            crash_at.iter().any(Option::is_none),
            "at least one processor must survive (the paper's only fault restriction)"
        );
        Self { inner, crash_at }
    }

    /// Convenience: crash every processor except `survivor` at time `τ`.
    ///
    /// # Panics
    ///
    /// Panics if `survivor` is out of range.
    #[must_use]
    pub fn all_but_one(
        inner: Box<dyn Adversary>,
        processors: usize,
        survivor: usize,
        at: u64,
    ) -> Self {
        assert!(survivor < processors, "survivor index out of range");
        let crash_at = (0..processors)
            .map(|i| if i == survivor { None } else { Some(at) })
            .collect();
        Self::new(inner, crash_at)
    }

    fn alive(&self, pid: usize, now: u64) -> bool {
        self.crash_at[pid].is_none_or(|at| now < at)
    }
}

impl Adversary for CrashSchedule {
    fn name(&self) -> &str {
        "crash-schedule"
    }

    fn schedule(
        &mut self,
        view: &SimView<'_>,
        procs: &[Box<dyn DoAllProcess>],
        mailboxes: &Mailboxes,
    ) -> Vec<bool> {
        let mut plan = self.inner.schedule(view, procs, mailboxes);
        for (pid, stepping) in plan.iter_mut().enumerate() {
            if !self.alive(pid, view.now) {
                *stepping = false;
            }
        }
        plan
    }

    fn message_delay(&mut self, view: &SimView<'_>, from: ProcId, to: ProcId) -> u64 {
        self.inner.message_delay(view, from, to)
    }

    fn delivery(&self) -> Delivery {
        self.inner.delivery()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::FixedDelay;
    use doall_core::BitSet;

    #[test]
    fn crashed_processors_stop_stepping() {
        let mut a = CrashSchedule::new(Box::new(FixedDelay::new(2)), vec![Some(3), None, Some(0)]);
        let done = BitSet::new(1);
        let mk = |now| SimView {
            now,
            processors: 3,
            tasks: 1,
            tasks_done: &done,
        };
        let m = Mailboxes::new(3);
        assert_eq!(a.schedule(&mk(0), &[], &m), vec![true, true, false]);
        assert_eq!(a.schedule(&mk(2), &[], &m), vec![true, true, false]);
        assert_eq!(a.schedule(&mk(3), &[], &m), vec![false, true, false]);
        assert_eq!(a.schedule(&mk(100), &[], &m), vec![false, true, false]);
    }

    #[test]
    fn delegates_delay_to_inner() {
        let mut a = CrashSchedule::new(Box::new(FixedDelay::new(9)), vec![None, Some(1)]);
        let done = BitSet::new(1);
        let view = SimView {
            now: 0,
            processors: 2,
            tasks: 1,
            tasks_done: &done,
        };
        assert_eq!(a.message_delay(&view, ProcId::new(0), ProcId::new(1)), 9);
    }

    #[test]
    #[should_panic(expected = "at least one processor must survive")]
    fn all_crashed_rejected() {
        let _ = CrashSchedule::new(Box::new(FixedDelay::new(1)), vec![Some(0), Some(5)]);
    }

    #[test]
    fn all_but_one_builder() {
        let mut a = CrashSchedule::all_but_one(Box::new(FixedDelay::new(1)), 4, 2, 10);
        let done = BitSet::new(1);
        let view = SimView {
            now: 10,
            processors: 4,
            tasks: 1,
            tasks_done: &done,
        };
        let m = Mailboxes::new(4);
        assert_eq!(a.schedule(&view, &[], &m), vec![false, false, true, false]);
    }
}
