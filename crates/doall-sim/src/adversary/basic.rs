//! Delay-only adversaries: every processor steps every time unit; only
//! message delays vary.

use super::{Adversary, Delivery};
use crate::SimView;
use doall_core::ProcId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The most benign adversary: every message is delivered at the next time
/// unit (delay 1) and every processor steps every unit. This is the `d = 1`
/// baseline of the delay sweeps.
#[derive(Debug, Clone, Default)]
pub struct UnitDelay;

impl Adversary for UnitDelay {
    fn name(&self) -> &str {
        "unit-delay"
    }

    fn delivery(&self) -> Delivery {
        Delivery::UniformBroadcast
    }
}

/// A d-adversary that always uses the full allowance: every message is
/// delayed exactly `d` units.
///
/// This is the worst *oblivious* delay pattern and the one under which the
/// upper-bound theorems are exercised in the experiments.
#[derive(Debug, Clone)]
pub struct FixedDelay {
    d: u64,
}

impl FixedDelay {
    /// Creates the adversary with maximum delay `d ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0` (the paper's `d` is a positive integer; delay 1
    /// means "delivered at the next time unit").
    #[must_use]
    pub fn new(d: u64) -> Self {
        assert!(d >= 1, "message delay bound must be at least 1");
        Self { d }
    }

    /// The delay bound `d`.
    #[must_use]
    pub fn d(&self) -> u64 {
        self.d
    }
}

impl Adversary for FixedDelay {
    fn name(&self) -> &str {
        "fixed-delay"
    }

    fn message_delay(&mut self, _view: &SimView<'_>, _from: ProcId, _to: ProcId) -> u64 {
        self.d
    }

    fn delivery(&self) -> Delivery {
        Delivery::UniformBroadcast
    }
}

/// A d-adversary drawing each message delay independently and uniformly
/// from `1..=d` — the "random network latency" model used in examples and
/// expected-work experiments.
#[derive(Debug)]
pub struct RandomDelay {
    d: u64,
    rng: StdRng,
}

impl RandomDelay {
    /// Creates the adversary with delay bound `d ≥ 1` and an RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: u64, seed: u64) -> Self {
        assert!(d >= 1, "message delay bound must be at least 1");
        Self {
            d,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Adversary for RandomDelay {
    fn name(&self) -> &str {
        "random-delay"
    }

    fn message_delay(&mut self, _view: &SimView<'_>, _from: ProcId, _to: ProcId) -> u64 {
        self.rng.random_range(1..=self.d)
    }
}

/// The canonical adversary of the lower-bound proofs: time is partitioned
/// into stages of length `d`, and every message submitted during a stage is
/// delivered exactly at the stage boundary (so nothing sent within a stage
/// is seen inside it). Delay is always `≤ d`.
#[derive(Debug, Clone)]
pub struct StageAligned {
    d: u64,
}

impl StageAligned {
    /// Creates the adversary with stage length `d ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn new(d: u64) -> Self {
        assert!(d >= 1, "stage length must be at least 1");
        Self { d }
    }

    /// The stage length `d`.
    #[must_use]
    pub fn d(&self) -> u64 {
        self.d
    }

    /// The first tick of the stage after the one containing `now`.
    #[must_use]
    pub fn next_boundary(&self, now: u64) -> u64 {
        (now / self.d + 1) * self.d
    }
}

impl Adversary for StageAligned {
    fn name(&self) -> &str {
        "stage-aligned"
    }

    fn message_delay(&mut self, view: &SimView<'_>, _from: ProcId, _to: ProcId) -> u64 {
        self.next_boundary(view.now) - view.now
    }

    fn delivery(&self) -> Delivery {
        Delivery::UniformBroadcast
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doall_core::BitSet;

    fn view(now: u64, done: &BitSet) -> SimView<'_> {
        SimView {
            now,
            processors: 2,
            tasks: done.len(),
            tasks_done: done,
        }
    }

    #[test]
    fn fixed_delay_constant() {
        let done = BitSet::new(1);
        let mut a = FixedDelay::new(7);
        assert_eq!(a.d(), 7);
        for now in 0..5 {
            assert_eq!(
                a.message_delay(&view(now, &done), ProcId::new(0), ProcId::new(1)),
                7
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_delay_rejected() {
        let _ = FixedDelay::new(0);
    }

    #[test]
    fn random_delay_within_bound_and_seeded() {
        let done = BitSet::new(1);
        let mut a = RandomDelay::new(5, 3);
        let mut b = RandomDelay::new(5, 3);
        for now in 0..100 {
            let da = a.message_delay(&view(now, &done), ProcId::new(0), ProcId::new(1));
            let db = b.message_delay(&view(now, &done), ProcId::new(0), ProcId::new(1));
            assert!((1..=5).contains(&da));
            assert_eq!(da, db, "same seed, same stream");
        }
    }

    #[test]
    fn stage_aligned_delivers_at_boundary() {
        let done = BitSet::new(1);
        let mut a = StageAligned::new(4);
        // now=0 → boundary 4 (delay 4); now=3 → boundary 4 (delay 1);
        // now=4 → boundary 8 (delay 4).
        assert_eq!(
            a.message_delay(&view(0, &done), ProcId::new(0), ProcId::new(1)),
            4
        );
        assert_eq!(
            a.message_delay(&view(3, &done), ProcId::new(0), ProcId::new(1)),
            1
        );
        assert_eq!(
            a.message_delay(&view(4, &done), ProcId::new(0), ProcId::new(1)),
            4
        );
        assert_eq!(a.next_boundary(7), 8);
    }

    #[test]
    fn stage_delay_never_exceeds_d() {
        let done = BitSet::new(1);
        let mut a = StageAligned::new(6);
        for now in 0..50 {
            let d = a.message_delay(&view(now, &done), ProcId::new(0), ProcId::new(1));
            assert!((1..=6).contains(&d));
        }
    }
}
