//! D003 clean counterpart: doall-runtime is not a deterministic crate.
pub fn seed_from_env() -> Option<String> {
    std::env::var("DOALL_SEED").ok()
}
