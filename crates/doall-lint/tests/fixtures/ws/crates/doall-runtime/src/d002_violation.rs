//! D002 fixture: a wall-clock read outside the measured-only modules.
pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}
