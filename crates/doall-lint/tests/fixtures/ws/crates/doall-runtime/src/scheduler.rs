//! D002 clean counterpart: scheduler.rs is a measured-only module.
pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}
