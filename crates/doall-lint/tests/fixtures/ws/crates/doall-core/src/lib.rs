//! H002 fixture: a crate root missing `#![forbid(unsafe_code)]`.
pub fn noop() {}
