//! D004 fixture: float accumulation in channel-order loops must fire.
use std::sync::mpsc::Receiver;

pub fn total(rx: &Receiver<f64>) -> f64 {
    let mut total = 0.0f64;
    while let Ok(sample) = rx.recv() {
        total += sample;
    }
    total
}

pub fn drained(rx: &Receiver<f64>) -> f64 {
    // lint:allow(D004) — fixture: the justified escape hatch
    rx.try_iter().sum()
}
