//! D003 fixture: ambient environment in a deterministic crate.
pub fn seed_from_env() -> Option<String> {
    std::env::var("DOALL_SEED").ok()
}
