//! D004 fixture: the blessed pattern — drain, sort, then fold — stays
//! silent, because the fold order no longer depends on arrival order.
use std::sync::mpsc::Receiver;

pub fn total(rx: &Receiver<f64>) -> f64 {
    let mut samples: Vec<f64> = rx.try_iter().collect();
    samples.sort_by(f64::total_cmp);
    let mut total = 0.0f64;
    for sample in &samples {
        total += sample;
    }
    total
}
