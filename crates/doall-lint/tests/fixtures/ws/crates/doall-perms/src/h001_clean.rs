//! H001 clean counterpart: panics inside test regions never fire.
pub fn double(x: u32) -> u32 {
    x * 2
}

#[cfg(test)]
mod tests {
    #[test]
    fn doubles() {
        assert_eq!(super::double(2).checked_mul(1).unwrap(), 4);
    }
}
