//! H001 fixture: a panicking shortcut in a library crate.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
