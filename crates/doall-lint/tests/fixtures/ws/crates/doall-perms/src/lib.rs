//! H002 clean counterpart: the root carries the forbid attribute.
#![forbid(unsafe_code)]

pub fn noop() {}
