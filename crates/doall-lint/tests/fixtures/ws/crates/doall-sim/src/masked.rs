//! Masking fixture: tokens in comments, strings, and test regions only.
// A HashMap mentioned in a comment never fires.
pub const DOC: &str = "HashMap in a string literal";

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn map() {
        let mut m: HashMap<u8, u8> = HashMap::new();
        m.insert(1, 2).unwrap_or_default();
        assert!(m.contains_key(&1));
    }
}
