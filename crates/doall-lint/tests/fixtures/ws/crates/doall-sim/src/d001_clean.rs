//! D001 clean counterpart: ordered collections are fine.
use std::collections::BTreeMap;

pub type Index = BTreeMap<u32, u32>;
