//! Suppression fixture: same-line and line-above markers.
use std::collections::HashMap; // lint:allow(D001) — fixture: same-line marker
// lint:allow(D001) — fixture: marker on the line above
use std::collections::HashSet;
use std::collections::HashMap as Unsuppressed;
