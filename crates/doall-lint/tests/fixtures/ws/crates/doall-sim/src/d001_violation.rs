//! D001 fixture: a hash-ordered collection in a deterministic crate.
use std::collections::HashMap;
