//! Property test: the lint report is a pure function of the file *set*,
//! not the file *order*. `lint_files` takes an explicit list precisely
//! so this is testable — a shuffled discovery order (filesystems differ
//! in readdir order) must render byte-identically to the sorted one,
//! or CI's archived reports would churn across runners.
//!
//! Shuffles are driven by a small deterministic LCG expanded from the
//! proptest-drawn seed, the same idiom as `doall-bench`'s
//! `scenario_props.rs` — the failing integer reproduces the permutation
//! exactly.

use doall_lint::{lint_files, walk, LintOptions};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn fixture_ws() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

/// A tiny deterministic stream expanding one `u64` seed into the draws
/// a Fisher–Yates shuffle needs.
struct Gene(u64);

impl Gene {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }
}

fn shuffle<T>(v: &mut [T], g: &mut Gene) {
    for i in (1..v.len()).rev() {
        let j = (g.next() as usize) % (i + 1);
        v.swap(i, j);
    }
}

proptest! {
    /// The headline property: rendered output (text and JSON) is
    /// byte-identical across arbitrary file-discovery orders.
    #[test]
    fn report_is_independent_of_discovery_order(seed in any::<u64>()) {
        let root = fixture_ws();
        let sorted = walk::discover(&root).unwrap();
        prop_assert!(sorted.len() > 2, "fixture corpus went missing");
        let opts = LintOptions::default();
        let baseline = lint_files(&root, &sorted, &opts).unwrap();

        let mut shuffled = sorted.clone();
        let mut g = Gene(seed);
        shuffle(&mut shuffled, &mut g);
        let report = lint_files(&root, &shuffled, &opts).unwrap();

        prop_assert_eq!(report.render_text(), baseline.render_text());
        prop_assert_eq!(report.render_json(), baseline.render_json());
    }
}
