//! Fixture-driven integration tests: every rule is demonstrated by a
//! violating fixture (with a clean counterpart beside it), suppression
//! markers behave as documented, and the report is byte-identical
//! across runs. The final test lints the real workspace — the same gate
//! CI runs — so a regression that dirties the tree fails here first.

use doall_lint::{lint_root, LintOptions, RuleId};
use std::path::{Path, PathBuf};

fn fixture_ws() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws")
}

#[test]
fn every_rule_fires_on_its_fixture_with_exact_anchors() {
    let report = lint_root(&fixture_ws(), &LintOptions::default()).unwrap();
    let got: Vec<(String, usize, RuleId)> = report
        .diagnostics
        .iter()
        .map(|d| (d.path.clone(), d.line, d.rule))
        .collect();
    // The full expected set: one firing fixture per rule, the suppression
    // fixture's single uncovered line — and nothing else, which is the
    // clean-counterpart assertion (d001_clean.rs, scheduler.rs,
    // d003_clean.rs, d004_clean.rs, h001_clean.rs, masked.rs, and the
    // perms crate root all stay silent).
    let want = [
        (
            "crates/doall-bench/src/d003_violation.rs".to_string(),
            3,
            RuleId::D003,
        ),
        (
            "crates/doall-bench/src/d004_violation.rs".to_string(),
            7,
            RuleId::D004,
        ),
        ("crates/doall-core/src/lib.rs".to_string(), 1, RuleId::H002),
        (
            "crates/doall-perms/src/h001_violation.rs".to_string(),
            3,
            RuleId::H001,
        ),
        (
            "crates/doall-runtime/src/d002_violation.rs".to_string(),
            3,
            RuleId::D002,
        ),
        (
            "crates/doall-sim/src/d001_violation.rs".to_string(),
            2,
            RuleId::D001,
        ),
        (
            "crates/doall-sim/src/suppressed.rs".to_string(),
            5,
            RuleId::D001,
        ),
    ];
    assert_eq!(got, want, "fixture diagnostics drifted");
    assert_eq!(report.files_scanned, 14);
    assert_eq!(
        report.suppressed, 3,
        "same-line + line-above + D004 drain markers"
    );
    assert!(!report.is_clean());
}

#[test]
fn only_filter_restricts_the_fixture_scan() {
    let report = lint_root(
        &fixture_ws(),
        &LintOptions {
            only: vec![RuleId::D001],
        },
    )
    .unwrap();
    assert!(report.diagnostics.iter().all(|d| d.rule == RuleId::D001));
    assert_eq!(report.diagnostics.len(), 2, "{:?}", report.diagnostics);
    assert_eq!(report.suppressed, 2, "suppressions count under --only too");
    let d002 = lint_root(
        &fixture_ws(),
        &LintOptions {
            only: vec![RuleId::D002],
        },
    )
    .unwrap();
    assert_eq!(d002.diagnostics.len(), 1, "{:?}", d002.diagnostics);
    assert_eq!(d002.diagnostics[0].rule, RuleId::D002);
    assert_eq!(d002.suppressed, 0, "D001 markers don't apply to D002");
}

#[test]
fn reports_are_byte_identical_across_runs() {
    let opts = LintOptions::default();
    let a = lint_root(&fixture_ws(), &opts).unwrap();
    let b = lint_root(&fixture_ws(), &opts).unwrap();
    assert_eq!(a.render_text(), b.render_text());
    assert_eq!(a.render_json(), b.render_json());
    // And the rendered text carries clickable path:line anchors.
    assert!(a
        .render_text()
        .contains("crates/doall-sim/src/d001_violation.rs:2: D001"));
    assert!(a.render_json().contains("\"rule\": \"H002\""));
}

#[test]
fn the_real_workspace_is_lint_clean() {
    // CARGO_MANIFEST_DIR = crates/doall-lint; two levels up is the repo.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let report = lint_root(&root, &LintOptions::default()).unwrap();
    assert!(
        report.is_clean(),
        "the workspace must stay lint-clean; fix or justify:\n{}",
        report.render_text()
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
}
