//! Determinism-preserving static analysis for the doall workspace —
//! the machine-checked invariant layer behind `doall lint`.
//!
//! Every guarantee this reproduction makes (byte-exact baselines across
//! `--threads` × `--shard-size`, replayable adversary searches, the
//! 197-cell CI comparison at `--tolerance 0`) rests on project
//! invariants that used to live only in reviewers' heads. This crate
//! enforces them:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `D001` | no `HashMap`/`HashSet` in deterministic crates |
//! | `D002` | wall-clock reads only in `doall-runtime`'s scheduler/transport/fault |
//! | `D003` | no `std::env`/`thread::current` in deterministic crates |
//! | `D004` | no float accumulation (`+=`, `.sum()`) over unordered iteration in deterministic crates |
//! | `H001` | no `unwrap()`/`expect()`/`panic!` in library-crate non-test code |
//! | `H002` | every workspace crate root carries `#![forbid(unsafe_code)]` |
//!
//! The engine is hand-rolled in the repo's no-crates.io spirit (same as
//! the `.scn` parser): a [`walk`] pass discovers sources (skipping
//! `vendor/`, `target/`, and fixture corpora), a [`scan`] pass masks
//! comments, string/char literals, and `#[cfg(test)]`/`mod tests`
//! regions so rules only ever see shipped code, and the [`rules`]
//! registry produces diagnostics that are **sorted and byte-identical
//! across runs, machines, and file-discovery orders**. A finding is
//! silenced by a `// lint:allow(<RULE>) — justification` comment on the
//! offending line or the line above; CI separately enforces that every
//! in-tree suppression carries a written justification.
//!
//! Exit-code contract (via the `doall lint` subcommand): 0 clean,
//! 1 diagnostics, 2 errors — the same shape as `doall compare`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod report;
pub mod rules;
pub mod scan;
pub mod walk;

pub use report::LintReport;
pub use rules::{Diagnostic, RuleId};
pub use walk::find_workspace_root;

use std::fs;
use std::path::Path;

/// What to lint and which rules to run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Restrict the run to these rules (empty = all).
    pub only: Vec<RuleId>,
}

/// Lints the workspace rooted at `root`: discover sources, then
/// [`lint_files`].
///
/// # Errors
///
/// Returns a message for I/O failures (unreadable root or file). A
/// *dirty* workspace is not an error — inspect
/// [`LintReport::is_clean`].
pub fn lint_root(root: &Path, opts: &LintOptions) -> Result<LintReport, String> {
    let files = walk::discover(root).map_err(|e| format!("cannot walk {}: {e}", root.display()))?;
    lint_files(root, &files, opts)
}

/// Lints an explicit file list (workspace-relative paths). The report is
/// independent of the order of `files`: each file is scanned in
/// isolation and diagnostics are sorted by `(path, line, rule)` at the
/// end — the property the discovery-order shuffle test pins down.
///
/// # Errors
///
/// Returns a message naming the first unreadable file.
pub fn lint_files(root: &Path, files: &[String], opts: &LintOptions) -> Result<LintReport, String> {
    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    for rel in files {
        let text =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("cannot read {rel}: {e}"))?;
        let masked = scan::mask(&text);
        let mut raw = Vec::new();
        rules::scan_file(rel, &masked, &opts.only, &mut raw);
        for d in raw {
            if is_suppressed(&masked.raw_lines, d.line, d.rule) {
                suppressed += 1;
            } else {
                diagnostics.push(d);
            }
        }
    }
    diagnostics.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(LintReport {
        diagnostics,
        files_scanned: files.len(),
        suppressed,
    })
}

/// Is a diagnostic for `rule` at 1-based `line` silenced by a
/// `lint:allow(<rule>)` marker on that line or the one above?
///
/// The marker lives in a comment, so it is read from the *raw* line
/// view (the code view has comments blanked). Several rules may share
/// one marker: `lint:allow(D001, H001)`.
fn is_suppressed(raw_lines: &[String], line: usize, rule: RuleId) -> bool {
    let candidates = [line.checked_sub(2), line.checked_sub(1)];
    for idx in candidates.into_iter().flatten() {
        let Some(text) = raw_lines.get(idx) else {
            continue;
        };
        if allow_rules(text).contains(&rule) {
            return true;
        }
    }
    false
}

/// The rules named by a `lint:allow(...)` marker on `line` (empty if no
/// marker, or none parse).
fn allow_rules(line: &str) -> Vec<RuleId> {
    let Some(pos) = line.find("lint:allow(") else {
        return Vec::new();
    };
    let rest = &line[pos + "lint:allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    rest[..close]
        .split(',')
        .filter_map(|s| RuleId::parse(s.trim()).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(root: &Path, rel: &str, text: &str) {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, text).unwrap();
    }

    fn temp_ws(tag: &str) -> std::path::PathBuf {
        let root = std::env::temp_dir().join(format!("doall_lint_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        root
    }

    #[test]
    fn lint_root_discovers_scans_and_sorts() {
        let root = temp_ws("root");
        write(
            &root,
            "crates/doall-sim/src/b.rs",
            "use std::collections::HashMap;\n",
        );
        write(
            &root,
            "crates/doall-sim/src/a.rs",
            "fn f() { let x: HashSet<u8> = make(); }\n",
        );
        let report = lint_root(&root, &LintOptions::default()).unwrap();
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.diagnostics.len(), 2);
        // Sorted by path: a.rs before b.rs.
        assert_eq!(report.diagnostics[0].path, "crates/doall-sim/src/a.rs");
        assert_eq!(report.diagnostics[1].path, "crates/doall-sim/src/b.rs");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn suppression_on_same_or_previous_line() {
        let root = temp_ws("suppress");
        write(
            &root,
            "crates/doall-sim/src/a.rs",
            "use std::collections::HashMap; // lint:allow(D001) — membership only\n\
             // lint:allow(D001) — scratch map, never iterated into results\n\
             fn f() { let x: HashMap<u8, u8> = make(); }\n\
             fn g() { let y: HashMap<u8, u8> = make(); }\n",
        );
        let report = lint_root(&root, &LintOptions::default()).unwrap();
        assert_eq!(report.suppressed, 2);
        assert_eq!(report.diagnostics.len(), 1, "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].line, 4, "g() is not covered");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn suppression_is_rule_specific() {
        let root = temp_ws("rulespec");
        write(
            &root,
            "crates/doall-sim/src/a.rs",
            "// lint:allow(D003) — wrong rule named\n\
             fn f() { let x: HashMap<u8, u8> = make(); }\n",
        );
        let report = lint_root(&root, &LintOptions::default()).unwrap();
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.suppressed, 0);
        // A multi-rule marker covers both.
        write(
            &root,
            "crates/doall-sim/src/a.rs",
            "// lint:allow(D001, D003) — fixture\n\
             fn f() { let x: HashMap<u8, u8> = std::env::var(\"X\").into(); }\n",
        );
        let report = lint_root(&root, &LintOptions::default()).unwrap();
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.suppressed, 2);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn only_filter_and_unreadable_files() {
        let root = temp_ws("only");
        write(
            &root,
            "crates/doall-sim/src/a.rs",
            "fn f() { let x: HashMap<u8, u8> = make(); let h = std::env::var(\"H\"); }\n",
        );
        let all = lint_root(&root, &LintOptions::default()).unwrap();
        assert_eq!(all.diagnostics.len(), 2);
        let only = lint_root(
            &root,
            &LintOptions {
                only: vec![RuleId::D003],
            },
        )
        .unwrap();
        assert_eq!(only.diagnostics.len(), 1);
        assert_eq!(only.diagnostics[0].rule, RuleId::D003);
        let missing = lint_files(
            &root,
            &["crates/doall-sim/src/nope.rs".to_string()],
            &LintOptions::default(),
        );
        assert!(missing.is_err());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn allow_marker_parsing() {
        assert_eq!(allow_rules("// lint:allow(D001) — x"), vec![RuleId::D001]);
        assert_eq!(
            allow_rules("// lint:allow(D001,H001) — x"),
            vec![RuleId::D001, RuleId::H001]
        );
        assert!(allow_rules("// lint:allow(").is_empty());
        assert!(allow_rules("// lint:allow(BOGUS) — x").is_empty());
        assert!(allow_rules("no marker here").is_empty());
    }
}
