//! Deterministic rendering of lint results: a `path:line:`-anchored text
//! table and a hand-rolled JSON document (no serde), both byte-identical
//! across runs, discovery orders, and machines.

use crate::rules::Diagnostic;
use std::fmt::Write as _;

/// The outcome of one lint run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Unsuppressed findings, sorted by `(path, line, rule)`.
    pub diagnostics: Vec<Diagnostic>,
    /// How many `*.rs` files were scanned.
    pub files_scanned: usize,
    /// How many would-be diagnostics a `lint:allow` silenced.
    pub suppressed: usize,
}

impl LintReport {
    /// No diagnostics — the process should exit 0.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The human-readable report: one `path:line: RULE message` line per
    /// finding plus a summary trailer.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}:{}: {} {}", d.path, d.line, d.rule, d.message);
        }
        if self.is_clean() {
            let _ = writeln!(
                out,
                "doall lint: clean — {} files scanned, {} suppression{} honored",
                self.files_scanned,
                self.suppressed,
                plural(self.suppressed)
            );
        } else {
            let _ = writeln!(
                out,
                "doall lint: {} diagnostic{} in {} files scanned ({} suppressed)",
                self.diagnostics.len(),
                plural(self.diagnostics.len()),
                self.files_scanned,
                self.suppressed
            );
        }
        out
    }

    /// The machine-readable report CI archives as an artifact.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"tool\": \"doall-lint\",\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"suppressed\": {},", self.suppressed);
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"rule\": \"{}\", ", d.rule);
            let _ = write!(out, "\"path\": \"{}\", ", escape(&d.path));
            let _ = write!(out, "\"line\": {}, ", d.line);
            let _ = write!(out, "\"message\": \"{}\"", escape(&d.message));
            out.push('}');
        }
        if self.diagnostics.is_empty() {
            out.push_str("]\n}\n");
        } else {
            out.push_str("\n  ]\n}\n");
        }
        out
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Minimal JSON string escaping (paths and messages are ASCII-ish, but
/// quotes/backslashes/control characters must not corrupt the document).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn diag(path: &str, line: usize, rule: RuleId) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_string(),
            line,
            message: format!("{} violated", rule.summary()),
        }
    }

    #[test]
    fn clean_report_renders_summary_only() {
        let r = LintReport {
            diagnostics: vec![],
            files_scanned: 12,
            suppressed: 1,
        };
        let text = r.render_text();
        assert!(text.contains("clean"), "{text}");
        assert!(text.contains("12 files"), "{text}");
        assert!(text.contains("1 suppression honored"), "{text}");
        assert!(r.is_clean());
        let json = r.render_json();
        assert!(json.contains("\"clean\": true"), "{json}");
        assert!(json.contains("\"diagnostics\": []"), "{json}");
    }

    #[test]
    fn findings_render_with_exact_anchors() {
        let r = LintReport {
            diagnostics: vec![
                diag("crates/doall-sim/src/a.rs", 41, RuleId::D001),
                diag("src/lib.rs", 1, RuleId::H002),
            ],
            files_scanned: 3,
            suppressed: 0,
        };
        let text = r.render_text();
        assert!(
            text.contains("crates/doall-sim/src/a.rs:41: D001"),
            "{text}"
        );
        assert!(text.contains("src/lib.rs:1: H002"), "{text}");
        assert!(text.contains("2 diagnostics in 3 files"), "{text}");
        let json = r.render_json();
        assert!(json.contains("\"rule\": \"D001\""), "{json}");
        assert!(json.contains("\"line\": 41"), "{json}");
        assert!(json.contains("\"clean\": false"), "{json}");
    }

    #[test]
    fn json_escapes_hostile_strings() {
        let r = LintReport {
            diagnostics: vec![Diagnostic {
                rule: RuleId::D001,
                path: "a\"b\\c.rs".to_string(),
                line: 1,
                message: "tab\there".to_string(),
            }],
            files_scanned: 1,
            suppressed: 0,
        };
        let json = r.render_json();
        assert!(json.contains("a\\\"b\\\\c.rs"), "{json}");
        assert!(json.contains("tab\\there"), "{json}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let r = LintReport {
            diagnostics: vec![diag("x.rs", 2, RuleId::H001)],
            files_scanned: 1,
            suppressed: 2,
        };
        assert_eq!(r.render_text(), r.render_text());
        assert_eq!(r.render_json(), r.render_json());
    }
}
