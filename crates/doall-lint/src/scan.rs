//! Source masking: reduce a Rust file to the lines of *shipped code* the
//! rules are allowed to fire on.
//!
//! Two passes over the text, both hand-rolled (no syn, no proc-macro
//! machinery — the same no-dependency culture as the `.scn` parser):
//!
//! 1. a character state machine blanks comments (line, nested block,
//!    doc), string literals (plain, raw `r#"…"#`, byte, escapes), and
//!    character literals (distinguished from lifetimes by lookahead),
//!    preserving the line structure so diagnostics keep exact anchors;
//! 2. a brace-depth walker blanks *test regions*: any item introduced by
//!    `#[cfg(test)]` or `#[test]`, and any `mod tests { … }` block.
//!
//! The masked lines contain only code that compiles into the shipped
//! artifact; `HashSet` in a doc example, `Instant::now` in a comment, or
//! `unwrap()` inside `mod tests` can never produce a diagnostic.

/// A file reduced to rule-scannable form.
#[derive(Debug)]
pub struct MaskedFile {
    /// The original lines, verbatim — suppression comments
    /// (`lint:allow(...)`) are read from here, since pass 1 blanks them
    /// from the code view.
    pub raw_lines: Vec<String>,
    /// The same lines with comments, literals, and test regions blanked
    /// to spaces. Index `i` is line `i + 1` of the file.
    pub code_lines: Vec<String>,
}

/// Masks `text` (see the module docs for what is blanked).
#[must_use]
pub fn mask(text: &str) -> MaskedFile {
    let raw_lines: Vec<String> = text.lines().map(str::to_string).collect();
    let without_literals = blank_comments_and_literals(text);
    let code_lines = blank_test_regions(&without_literals);
    MaskedFile {
        raw_lines,
        code_lines,
    }
}

/// Pass 1: comments and literals become spaces; newlines survive.
fn blank_comments_and_literals(text: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        CharLit,
    }
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            out.push('\n');
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    state = State::LineComment;
                    out.push(' ');
                    i += 1;
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                }
                '"' => {
                    // A quote opens a raw string when immediately preceded
                    // by `r`/`br` plus hashes (`r"`, `r#"`, `br##"`, …);
                    // the prefix chars were already emitted as code, which
                    // is harmless — they form no token the rules match.
                    let mut j = i;
                    let mut hashes = 0;
                    while j > 0 && chars[j - 1] == '#' {
                        hashes += 1;
                        j -= 1;
                    }
                    let rawness = j > 0
                        && chars[j - 1] == 'r'
                        && (j < 2 || !is_ident(chars[j - 2]) || chars[j - 2] == 'b');
                    if rawness {
                        state = State::RawStr(hashes);
                    } else {
                        state = State::Str;
                    }
                    out.push(' ');
                    i += 1;
                }
                '\'' => {
                    // Lifetime or char literal? `'\…'` and `'x'` are
                    // literals; `'a` (no closing quote nearby) and `'_`
                    // are lifetimes, left in the code view.
                    let next = chars.get(i + 1);
                    let is_char = match next {
                        Some('\\') => true,
                        Some(&n) => chars.get(i + 2) == Some(&'\'') && n != '\'',
                        None => false,
                    };
                    if is_char {
                        state = State::CharLit;
                        out.push(' ');
                    } else {
                        out.push(c);
                    }
                    i += 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                out.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => match c {
                // Escapes: blank the pair, but a string-continuation
                // backslash before a newline must keep the newline so
                // line anchors stay exact.
                '\\' => {
                    if chars.get(i + 1) == Some(&'\n') {
                        out.push_str(" \n");
                    } else {
                        out.push_str("  ");
                    }
                    i += 2;
                }
                '"' => {
                    state = State::Code;
                    out.push(' ');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                let closes = c == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                if closes {
                    state = State::Code;
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::CharLit => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                }
                '\'' => {
                    state = State::Code;
                    out.push(' ');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
        }
    }
    out.lines().map(str::to_string).collect()
}

/// Pass 2: blanks test regions from the literal-free line view.
///
/// A region starts at `#[cfg(test)]`, `#[test]`, or a `mod tests`
/// item head and ends at the matching close brace of the item's body
/// (or at the terminating `;` for brace-less forms like `mod tests;`).
/// Attributes between the marker and the body (e.g. `#[allow(…)]`) are
/// blanked with it.
fn blank_test_regions(lines: &[String]) -> Vec<String> {
    #[derive(Clone, Copy, PartialEq)]
    enum Region {
        Code,
        /// Saw a test marker; blanking until the item's `{` (then
        /// `Skipping`) or a `;` (then back to `Code`).
        Pending,
        /// Inside the braced body; the payload is the brace depth still
        /// open within the region.
        Skipping(u32),
    }
    let mut region = Region::Code;
    lines
        .iter()
        .map(|line| {
            let chars: Vec<char> = line.chars().collect();
            let mut out = String::with_capacity(line.len());
            let mut i = 0;
            while i < chars.len() {
                match region {
                    Region::Code => {
                        if let Some(len) = test_marker_at(&chars, i) {
                            region = Region::Pending;
                            for _ in 0..len {
                                out.push(' ');
                            }
                            i += len;
                        } else {
                            out.push(chars[i]);
                            i += 1;
                        }
                    }
                    Region::Pending => {
                        match chars[i] {
                            '{' => region = Region::Skipping(1),
                            ';' => region = Region::Code,
                            _ => {}
                        }
                        out.push(' ');
                        i += 1;
                    }
                    Region::Skipping(depth) => {
                        match chars[i] {
                            '{' => region = Region::Skipping(depth + 1),
                            '}' => {
                                region = if depth == 1 {
                                    Region::Code
                                } else {
                                    Region::Skipping(depth - 1)
                                };
                            }
                            _ => {}
                        }
                        out.push(' ');
                        i += 1;
                    }
                }
            }
            out
        })
        .collect()
}

/// If a test marker starts at `chars[i]`, returns its length.
fn test_marker_at(chars: &[char], i: usize) -> Option<usize> {
    for marker in ["#[cfg(test)]", "#[test]"] {
        if starts_with_at(chars, i, marker) {
            return Some(marker.chars().count());
        }
    }
    // `mod tests` as an item head (token-bounded on both sides: `mod
    // tests_util` or `sim_mod tests` must not match).
    let marker = "mod tests";
    if starts_with_at(chars, i, marker)
        && (i == 0 || !is_ident(chars[i - 1]))
        && chars
            .get(i + marker.chars().count())
            .is_none_or(|&c| !is_ident(c))
    {
        return Some(marker.chars().count());
    }
    None
}

fn starts_with_at(chars: &[char], i: usize, needle: &str) -> bool {
    needle
        .chars()
        .enumerate()
        .all(|(k, n)| chars.get(i + k) == Some(&n))
}

pub(crate) fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(text: &str) -> String {
        mask(text).code_lines.join("\n")
    }

    #[test]
    fn line_and_block_comments_are_blanked() {
        let text = "let a = 1; // HashMap here\n/* HashSet */ let b = 2;\n";
        let masked = code(text);
        assert!(!masked.contains("HashMap"));
        assert!(!masked.contains("HashSet"));
        assert!(masked.contains("let a = 1;"));
        assert!(masked.contains("let b = 2;"));
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let text = "/* outer /* HashMap */ still comment */ let x = 1;";
        let masked = code(text);
        assert!(!masked.contains("HashMap"));
        assert!(!masked.contains("still"));
        assert!(masked.contains("let x = 1;"));
    }

    #[test]
    fn doc_comments_and_doc_examples_are_blanked() {
        let text = "/// use std::collections::HashMap;\n//! Instant::now\npub fn f() {}\n";
        let masked = code(text);
        assert!(!masked.contains("HashMap"));
        assert!(!masked.contains("Instant"));
        assert!(masked.contains("pub fn f() {}"));
    }

    #[test]
    fn string_literals_are_blanked() {
        let text =
            "let s = \"HashMap\"; let r = r\"HashSet\"; let h = r#\"panic!\"#; let done = 1;";
        let masked = code(text);
        assert!(!masked.contains("HashMap"));
        assert!(!masked.contains("HashSet"));
        assert!(!masked.contains("panic!"));
        assert!(masked.contains("let done = 1;"));
    }

    #[test]
    fn string_continuation_keeps_line_structure() {
        let text = "let s = \"abc\\\n   HashMap\";\nlet t = 3;\n";
        let m = mask(text);
        assert_eq!(m.code_lines.len(), 3);
        assert!(!m.code_lines.join("\n").contains("HashMap"));
        assert!(m.code_lines[2].contains("let t = 3;"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let text = "let s = \"a\\\"HashMap\\\"b\"; let t = 2;";
        let masked = code(text);
        assert!(!masked.contains("HashMap"));
        assert!(masked.contains("let t = 2;"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let text = "fn f<'a>(x: &'a str) { let q = '\"'; let z = 'Z'; let w = b'Y'; }";
        let masked = code(text);
        assert!(masked.contains("<'a>"), "{masked}");
        assert!(masked.contains("&'a str"), "{masked}");
        assert!(!masked.contains('Z'), "char literal payload blanked");
        assert!(!masked.contains('Y'), "byte-char payload blanked");
        // The `'\"'` char literal must not open a string.
        assert!(masked.contains("let z ="), "{masked}");
    }

    #[test]
    fn cfg_test_regions_are_blanked_to_the_matching_brace() {
        let text = "pub fn shipped() {}\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                        fn helper() { x.unwrap(); }\n\
                        #[test]\n\
                        fn t() { assert!(map.contains_key(&k)); }\n\
                    }\n\
                    pub fn also_shipped() { real(); }\n";
        let masked = code(text);
        assert!(!masked.contains("unwrap"));
        assert!(!masked.contains("contains_key"));
        assert!(masked.contains("pub fn shipped() {}"));
        assert!(masked.contains("pub fn also_shipped() { real(); }"));
    }

    #[test]
    fn bare_test_attr_and_mod_tests_are_regions_too() {
        let text = "#[test]\nfn t() { boom.unwrap(); }\nfn keep() {}\n\
                    mod tests { fn u() { panic!(); } }\nfn keep2() {}\n";
        let masked = code(text);
        assert!(!masked.contains("unwrap"));
        assert!(!masked.contains("panic!"));
        assert!(masked.contains("fn keep() {}"));
        assert!(masked.contains("fn keep2() {}"));
    }

    #[test]
    fn mod_tests_needs_token_boundaries() {
        let text = "mod tests_util { pub fn f() { x.unwrap(); } }\n";
        let masked = code(text);
        assert!(masked.contains("unwrap"), "tests_util is not a test mod");
    }

    #[test]
    fn braces_in_strings_do_not_confuse_region_tracking() {
        let text = "#[cfg(test)]\nmod tests { fn f() { let s = \"}\"; x.unwrap(); } }\n\
                    fn shipped() { y.unwrap(); }\n";
        let masked = code(text);
        // Pass 1 blanks the string before pass 2 counts braces, so the
        // `}` in the literal cannot close the region early…
        let shipped_line = masked.lines().last().unwrap();
        assert!(shipped_line.contains("unwrap"), "{masked}");
        // …and the test-region unwrap is gone.
        assert_eq!(masked.matches("unwrap").count(), 1, "{masked}");
    }

    #[test]
    fn cfg_test_on_single_item_ends_at_its_brace() {
        let text = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() { a.unwrap() }\n\
                    fn shipped() { b.expect(\"x\") }\n";
        let masked = code(text);
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains("expect"));
    }

    #[test]
    fn semicolon_ends_braceless_regions() {
        let text = "#[cfg(test)]\nmod tests;\nfn shipped() { c.unwrap() }\n";
        let masked = code(text);
        assert!(masked.contains("unwrap"), "{masked}");
    }

    #[test]
    fn line_count_is_preserved() {
        let text = "a\n\nb /* c\nd */ e\n\"f\ng\"\n";
        let m = mask(text);
        assert_eq!(m.raw_lines.len(), m.code_lines.len());
        assert_eq!(m.raw_lines.len(), 6);
    }
}
