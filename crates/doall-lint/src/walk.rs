//! Deterministic workspace source discovery.
//!
//! Walks the workspace root recursively, collecting every `*.rs` file as
//! a `/`-separated path relative to the root, **sorted by path** — the
//! rule engine re-sorts diagnostics anyway, but a canonical discovery
//! order makes `files scanned` counts and debugging stable across
//! filesystems.
//!
//! Skipped subtrees:
//!
//! * `vendor/` — vendored dependency stubs are not ours to lint;
//! * `target/` — build products;
//! * `fixtures/` — lint test corpora are *deliberate* violations
//!   (see `crates/doall-lint/tests/fixtures/`);
//! * dot-directories (`.git/`, `.github/`, …).

use std::fs;
use std::io;
use std::path::Path;

/// Directory names whose subtrees are never walked.
const SKIP_DIRS: &[&str] = &["vendor", "target", "fixtures"];

/// Collects every lintable `*.rs` file under `root`, sorted.
///
/// # Errors
///
/// Returns the first I/O error encountered (unreadable directory);
/// an unreadable root is an error, not an empty result.
pub fn discover(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    walk_dir(root, String::new(), &mut files)?;
    files.sort_unstable();
    Ok(files)
}

fn walk_dir(dir: &Path, rel: String, out: &mut Vec<String>) -> io::Result<()> {
    // Sort entries by name so traversal order (and therefore any I/O
    // error surfaced) is deterministic regardless of readdir order.
    let mut entries: Vec<(String, bool)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let is_dir = entry.file_type()?.is_dir();
        entries.push((name, is_dir));
    }
    entries.sort_unstable();
    for (name, is_dir) in entries {
        if is_dir {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            let child_rel = if rel.is_empty() {
                name.clone()
            } else {
                format!("{rel}/{name}")
            };
            walk_dir(&dir.join(&name), child_rel, out)?;
        } else if name.ends_with(".rs") {
            let path = if rel.is_empty() {
                name
            } else {
                format!("{rel}/{name}")
            };
            out.push(path);
        }
    }
    Ok(())
}

/// Ascends from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]` — how the CLI finds what to lint when run
/// from anywhere inside the repo.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(path: &Path) {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, "").unwrap();
    }

    #[test]
    fn discovers_sorted_and_skips_vendor_target_fixtures_dotdirs() {
        let root = std::env::temp_dir().join(format!("doall_lint_walk_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        touch(&root.join("src/lib.rs"));
        touch(&root.join("src/b.rs"));
        touch(&root.join("crates/x/src/a.rs"));
        touch(&root.join("crates/x/tests/fixtures/bad.rs"));
        touch(&root.join("vendor/dep/src/lib.rs"));
        touch(&root.join("target/debug/build.rs"));
        touch(&root.join(".git/hook.rs"));
        touch(&root.join("README.md"));
        let files = discover(&root).unwrap();
        assert_eq!(
            files,
            vec![
                "crates/x/src/a.rs".to_string(),
                "src/b.rs".to_string(),
                "src/lib.rs".to_string(),
            ]
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unreadable_root_is_an_error() {
        assert!(discover(Path::new("/nonexistent-doall-lint")).is_err());
    }

    #[test]
    fn finds_workspace_root_from_nested_dirs() {
        let root = std::env::temp_dir().join(format!("doall_lint_ws_{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        touch(&root.join("Cargo.toml"));
        fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").unwrap();
        touch(&root.join("crates/x/src/a.rs"));
        // Nested crate manifests without [workspace] are walked past.
        fs::write(
            root.join("crates/x/Cargo.toml"),
            "[package]\nname = \"x\"\n",
        )
        .unwrap();
        let found = find_workspace_root(&root.join("crates/x/src")).unwrap();
        assert_eq!(found, root);
        fs::remove_dir_all(&root).unwrap();
    }
}
