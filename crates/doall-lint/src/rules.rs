//! The rule registry: what each rule means, where it applies, and the
//! token patterns it fires on.
//!
//! Rules scan the *masked* code view of a file (comments, literals, and
//! test regions blanked — see [`crate::scan`]) and fire at most one
//! diagnostic per line per rule. Every diagnostic can be suppressed by a
//! `// lint:allow(<RULE>) — justification` comment on the same line or
//! the line directly above (CI separately enforces that every in-tree
//! suppression carries a written justification).
//!
//! # Scopes
//!
//! * **Deterministic crates** (D001/D003): `doall-sim`, `doall-bench`,
//!   `doall-algorithms`, `doall-perms`, `doall-bounds` — every byte of a
//!   result record is produced here, so iteration order and ambient
//!   process state must never influence them.
//! * **Library crates** (H001): the six crates other code builds on
//!   (`doall-core`, `doall-sim`, `doall-algorithms`, `doall-perms`,
//!   `doall-bounds`, `doall-runtime`). The harness (`doall-bench`), the
//!   CLI facade, and this linter are drivers: an invariant panic there
//!   surfaces as a process exit, which is the designed failure mode.
//! * Rules apply to `src/` code only — integration tests, benches, and
//!   examples are not shipped library code (and test regions inside
//!   `src/` are masked away before rules run).

use crate::scan::{is_ident, MaskedFile};
use std::fmt;

/// Crates whose result records must be bit-reproducible.
const DET_CRATES: &[&str] = &[
    "doall-algorithms",
    "doall-bench",
    "doall-bounds",
    "doall-perms",
    "doall-sim",
];

/// Library crates where panicking shortcuts are banned (H001).
const LIB_CRATES: &[&str] = &[
    "doall-algorithms",
    "doall-bounds",
    "doall-core",
    "doall-perms",
    "doall-runtime",
    "doall-sim",
];

/// The only files allowed to read wall clocks (D002): the measured-only
/// metrics (`wall_clock_ms`, backlog gauges) of the threads backend are
/// produced here and are exempt from value comparison by the comparator.
const D002_ALLOWED: &[&str] = &[
    "crates/doall-runtime/src/fault.rs",
    "crates/doall-runtime/src/scheduler.rs",
    "crates/doall-runtime/src/transport.rs",
];

/// A lint rule identifier. `D` rules guard determinism, `H` rules guard
/// hygiene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No hash-ordered collections in deterministic crates.
    D001,
    /// Wall-clock reads fenced inside doall-runtime's measured modules.
    D002,
    /// No ambient process state in deterministic crates.
    D003,
    /// No float accumulation over non-deterministically-ordered
    /// iteration in deterministic crates.
    D004,
    /// No panicking shortcuts in library-crate non-test code.
    H001,
    /// Every workspace crate root forbids `unsafe_code`.
    H002,
}

impl RuleId {
    /// Every rule, in diagnostic sort order.
    pub const ALL: [RuleId; 6] = [
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::D004,
        RuleId::H001,
        RuleId::H002,
    ];

    /// The canonical `D001`-style name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::H001 => "H001",
            RuleId::H002 => "H002",
        }
    }

    /// Parses a rule name (case-sensitive, the canonical spelling only).
    ///
    /// # Errors
    ///
    /// Returns a message naming the known rules for anything else.
    pub fn parse(s: &str) -> Result<Self, String> {
        RuleId::ALL
            .into_iter()
            .find(|r| r.as_str() == s)
            .ok_or_else(|| {
                format!(
                    "unknown rule `{s}` (known: {})",
                    RuleId::ALL.map(RuleId::as_str).join(", ")
                )
            })
    }

    /// One-line rationale, rendered in `doall lint` headers and docs.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D001 => "no HashMap/HashSet in deterministic crates",
            RuleId::D002 => "wall-clock reads only in doall-runtime scheduler/transport/fault",
            RuleId::D003 => "no ambient env/thread identity in deterministic crates",
            RuleId::D004 => {
                "no float accumulation over unordered iteration in deterministic crates"
            }
            RuleId::H001 => "no unwrap/expect/panic in library-crate non-test code",
            RuleId::H002 => "crate roots must carry #![forbid(unsafe_code)]",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a rule fired at `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line number (line 1 for whole-file rules).
    pub line: usize,
    /// Human-readable explanation naming the offending token.
    pub message: String,
}

/// If `path` is inside a crate's `src/` tree, the crate's name
/// (`"doall-sim"`, …; the root facade package is `"doall"`).
fn src_crate(path: &str) -> Option<&str> {
    if path.starts_with("src/") {
        return Some("doall");
    }
    let rest = path.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    tail.starts_with("src/").then_some(name)
}

/// Is `path` the root module of a workspace crate?
fn is_crate_root(path: &str) -> bool {
    path == "src/lib.rs"
        || (path.starts_with("crates/")
            && path.ends_with("/src/lib.rs")
            && path.matches('/').count() == 3)
}

/// Token patterns per rule: `(needle, what)` where `what` names the
/// construct in the diagnostic message. Needles are matched with an
/// identifier boundary on each side (a leading `.`/`:` counts as a
/// boundary, so `core::panic!` fires and `dont_panic!` does not).
const D001_TOKENS: &[(&str, &str)] = &[
    ("HashMap", "hash-ordered `HashMap`"),
    ("HashSet", "hash-ordered `HashSet`"),
];
const D002_TOKENS: &[(&str, &str)] = &[
    ("Instant::now", "wall-clock read `Instant::now`"),
    ("SystemTime", "wall-clock type `SystemTime`"),
];
const D003_TOKENS: &[(&str, &str)] = &[
    ("std::env", "process environment `std::env`"),
    ("env::args", "process arguments `env::args`"),
    ("env::var", "environment variable read `env::var`"),
    ("thread::current", "thread identity `thread::current`"),
];
/// Iteration sources whose order is not reproducible (D004): hash-seed
/// lotteries, filesystem enumeration order, channel arrival order, and
/// parallel scheduling order. `f64` addition is not associative, so a
/// sum folded in any of these orders is a different number on the next
/// run — collect into a `Vec`, sort, then fold.
const D004_SOURCES: &[(&str, &str)] = &[
    ("HashMap", "hash-ordered `HashMap` iteration"),
    ("HashSet", "hash-ordered `HashSet` iteration"),
    ("read_dir", "directory-order `read_dir`"),
    ("try_iter", "channel-arrival-order `try_iter`"),
    ("recv", "channel-arrival-order `recv`"),
    ("par_iter", "scheduling-order `par_iter`"),
];
/// Accumulation tokens D004 flags inside a tainted loop body.
const D004_ACCUMULATORS: &[&str] = &["+=", ".sum("];

const H001_TOKENS: &[(&str, &str)] = &[
    (".unwrap()", "panicking shortcut `.unwrap()`"),
    (".expect(", "panicking shortcut `.expect(…)`"),
    ("panic!", "explicit `panic!`"),
    ("unreachable!", "explicit `unreachable!`"),
    ("todo!", "placeholder `todo!`"),
    ("unimplemented!", "placeholder `unimplemented!`"),
];

/// Does `needle` occur in `line` with identifier boundaries?
fn has_token(line: &str, needle: &str) -> bool {
    let chars: Vec<char> = line.chars().collect();
    let pat: Vec<char> = needle.chars().collect();
    if pat.is_empty() || chars.len() < pat.len() {
        return false;
    }
    for start in 0..=chars.len() - pat.len() {
        if chars[start..start + pat.len()] != pat[..] {
            continue;
        }
        // A needle that starts (ends) with a non-identifier char — the
        // `.` of `.unwrap()`, the `(` of `.expect(` — is its own
        // boundary on that side.
        let before_ok = !is_ident(pat[0]) || start == 0 || !is_ident(chars[start - 1]);
        let end = start + pat.len();
        let last_is_ident = is_ident(pat[pat.len() - 1]);
        let after_ok = !last_is_ident || end == chars.len() || !is_ident(chars[end]);
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Runs every (selected) rule over one masked file, appending raw
/// (unsuppressed) diagnostics to `out`. Suppression is applied by the
/// caller, which owns the raw line view.
pub fn scan_file(path: &str, masked: &MaskedFile, only: &[RuleId], out: &mut Vec<Diagnostic>) {
    let enabled = |r: RuleId| only.is_empty() || only.contains(&r);
    let in_det = src_crate(path).is_some_and(|c| DET_CRATES.contains(&c));
    let in_lib = src_crate(path).is_some_and(|c| LIB_CRATES.contains(&c));
    let d002_applies = src_crate(path).is_some() && !D002_ALLOWED.contains(&path);

    // D004 loop-taint state: brace depth, a loop head seen but not yet
    // opened, and the stack of open blocks whose iteration order is not
    // reproducible (innermost last).
    let mut depth = 0usize;
    let mut pending: Option<&str> = None;
    let mut tainted: Vec<(usize, &str)> = Vec::new();

    for (idx, line) in masked.code_lines.iter().enumerate() {
        let lineno = idx + 1;
        let mut push = |rule: RuleId, what: &str, detail: String| {
            out.push(Diagnostic {
                rule,
                path: path.to_string(),
                line: lineno,
                message: format!("{what} {detail}"),
            });
        };
        if enabled(RuleId::D001) && in_det {
            if let Some((_, what)) = D001_TOKENS.iter().find(|(n, _)| has_token(line, n)) {
                push(
                    RuleId::D001,
                    what,
                    format!(
                        "in deterministic crate `{}` — iteration order is a hash-seed \
                         lottery; use BTreeMap/BTreeSet or a BitSet",
                        src_crate(path).unwrap_or_default()
                    ),
                );
            }
        }
        if enabled(RuleId::D002) && d002_applies {
            if let Some((_, what)) = D002_TOKENS.iter().find(|(n, _)| has_token(line, n)) {
                push(
                    RuleId::D002,
                    what,
                    "outside doall-runtime's measured-only modules \
                     (scheduler/transport/fault) — wall clocks may only feed \
                     measured metrics the comparator never value-checks"
                        .to_string(),
                );
            }
        }
        if enabled(RuleId::D003) && in_det {
            if let Some((_, what)) = D003_TOKENS.iter().find(|(n, _)| has_token(line, n)) {
                push(
                    RuleId::D003,
                    what,
                    format!(
                        "in deterministic crate `{}` — ambient process state must \
                         not influence result records",
                        src_crate(path).unwrap_or_default()
                    ),
                );
            }
        }
        if enabled(RuleId::D004) && in_det {
            let source = D004_SOURCES.iter().find(|(n, _)| has_token(line, n));
            let mut fired = false;
            if let Some((_, what)) = source {
                // Inline fold: the source and `.sum(` on one line.
                if has_token(line, ".sum(") {
                    push(
                        RuleId::D004,
                        "float `.sum()`",
                        format!(
                            "over {what} in deterministic crate `{}` — f64 addition is \
                             not associative, so the order *is* the result; collect \
                             into a Vec and sort before folding",
                            src_crate(path).unwrap_or_default()
                        ),
                    );
                    fired = true;
                }
                // A loop head over the source taints the block it opens.
                if has_token(line, "for") || has_token(line, "while") {
                    pending = Some(what);
                }
            }
            // The taint active on this line: innermost open tainted
            // block, or one opening on this very line (a one-line loop
            // closes again during the brace scan below).
            let mut active = tainted.last().map(|&(_, w)| w);
            for ch in line.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        if let Some(what) = pending.take() {
                            tainted.push((depth, what));
                            active = Some(what);
                        }
                    }
                    '}' => {
                        if tainted.last().is_some_and(|&(d, _)| d == depth) {
                            tainted.pop();
                        }
                        depth = depth.saturating_sub(1);
                    }
                    _ => {}
                }
            }
            if !fired {
                if let Some(what) = active {
                    if D004_ACCUMULATORS.iter().any(|n| has_token(line, n)) {
                        push(
                            RuleId::D004,
                            "float accumulation",
                            format!(
                                "inside a loop over {what} in deterministic crate `{}` — \
                                 f64 addition is not associative, so the order *is* the \
                                 result; collect into a Vec and sort before folding",
                                src_crate(path).unwrap_or_default()
                            ),
                        );
                    }
                }
            }
        }
        if enabled(RuleId::H001) && in_lib {
            if let Some((_, what)) = H001_TOKENS.iter().find(|(n, _)| has_token(line, n)) {
                push(
                    RuleId::H001,
                    what,
                    format!(
                        "in library crate `{}` non-test code — return an error or \
                         justify the invariant with lint:allow(H001)",
                        src_crate(path).unwrap_or_default()
                    ),
                );
            }
        }
    }

    if enabled(RuleId::H002) && is_crate_root(path) {
        let has_forbid = masked
            .code_lines
            .iter()
            .any(|l| l.contains("#![forbid(unsafe_code)]"));
        if !has_forbid {
            out.push(Diagnostic {
                rule: RuleId::H002,
                path: path.to_string(),
                line: 1,
                message: "crate root does not carry `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::mask;

    fn run(path: &str, text: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        scan_file(path, &mask(text), &[], &mut out);
        out
    }

    #[test]
    fn rule_ids_round_trip_and_reject_unknowns() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::parse(rule.as_str()).unwrap(), rule);
            assert!(!rule.summary().is_empty());
        }
        let e = RuleId::parse("D999").unwrap_err();
        assert!(e.contains("unknown rule"), "{e}");
        assert!(e.contains("D001"), "{e}");
        assert!(RuleId::parse("d001").is_err(), "case-sensitive");
    }

    #[test]
    fn src_crate_classifies_paths() {
        assert_eq!(src_crate("crates/doall-sim/src/sim.rs"), Some("doall-sim"));
        assert_eq!(src_crate("src/cli.rs"), Some("doall"));
        assert_eq!(src_crate("crates/doall-sim/tests/props.rs"), None);
        assert_eq!(src_crate("crates/doall-bench/benches/harness.rs"), None);
        assert_eq!(src_crate("examples/quickstart.rs"), None);
        assert_eq!(src_crate("tests/end_to_end.rs"), None);
    }

    #[test]
    fn crate_roots_are_lib_rs_only() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/doall-core/src/lib.rs"));
        assert!(!is_crate_root("crates/doall-core/src/bitset.rs"));
        assert!(!is_crate_root("crates/doall-core/src/nested/lib.rs"));
        assert!(!is_crate_root("vendor/rand/src/lib.rs"));
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("let m: HashMap<u32, u32>;", "HashMap"));
        assert!(!has_token("let m = MyHashMap::new();", "HashMap"));
        assert!(!has_token("let m = HashMapLike::new();", "HashMap"));
        assert!(has_token("core::panic!(\"x\")", "panic!"));
        assert!(!has_token("dont_panic!()", "panic!"));
        assert!(has_token("x.unwrap()", ".unwrap()"));
        assert!(!has_token("x.unwrap_or(3)", ".unwrap()"));
        assert!(has_token("std::env::args()", "std::env"));
    }

    #[test]
    fn d001_fires_only_in_deterministic_crates() {
        let text = "use std::collections::HashMap;\n";
        let hits = run("crates/doall-sim/src/x.rs", text);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RuleId::D001);
        assert_eq!(hits[0].line, 1);
        assert!(run("crates/doall-runtime/src/x.rs", text).is_empty());
        assert!(run("crates/doall-sim/tests/x.rs", text).is_empty());
    }

    #[test]
    fn d002_exempts_the_three_runtime_files() {
        let text = "let t0 = Instant::now();\n";
        assert!(run("crates/doall-runtime/src/scheduler.rs", text).is_empty());
        assert!(run("crates/doall-runtime/src/transport.rs", text).is_empty());
        assert!(run("crates/doall-runtime/src/fault.rs", text).is_empty());
        let hits = run("crates/doall-runtime/src/clock.rs", text);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RuleId::D002);
        assert_eq!(run("src/cli.rs", text)[0].rule, RuleId::D002);
    }

    #[test]
    fn d003_and_h001_scopes() {
        let env = "let home = std::env::var(\"HOME\");\n";
        assert_eq!(
            run("crates/doall-bench/src/x.rs", env)[0].rule,
            RuleId::D003
        );
        assert!(
            run("src/cli.rs", env).is_empty(),
            "facade is not a det crate"
        );
        let boom = "let v = x.unwrap();\n";
        assert_eq!(
            run("crates/doall-core/src/x.rs", boom)[0].rule,
            RuleId::H001
        );
        assert!(
            run("crates/doall-bench/src/x.rs", boom).is_empty(),
            "harness is a driver, not a library crate"
        );
    }

    #[test]
    fn d004_fires_on_accumulation_in_unordered_loops() {
        // A multi-line channel-drain loop: the `+=` inside is flagged.
        let multi = "pub fn total(rx: &Receiver<f64>) -> f64 {\n\
                     let mut total = 0.0;\n\
                     while let Ok(sample) = rx.recv() {\n\
                     total += sample;\n\
                     }\n\
                     total\n\
                     }\n";
        let hits = run("crates/doall-bench/src/x.rs", multi);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!((hits[0].rule, hits[0].line), (RuleId::D004, 4));
        // A one-line loop body still fires, on the loop line itself.
        let one = "while let Ok(s) = rx.recv() { total += s; }\n";
        assert_eq!(run("crates/doall-bench/src/x.rs", one).len(), 1);
        // Inline `.sum()` over a drain fires without any loop keyword.
        let inline = "let t: f64 = rx.try_iter().sum();\n";
        let hits = run("crates/doall-sim/src/x.rs", inline);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("try_iter"), "{}", hits[0].message);
        // Sorted-Vec accumulation is the blessed pattern: silent.
        let clean = "let mut samples: Vec<f64> = rx.try_iter().collect();\n\
                     samples.sort_by(f64::total_cmp);\n\
                     for s in &samples {\n\
                     total += s;\n\
                     }\n";
        assert!(run("crates/doall-bench/src/x.rs", clean).is_empty());
        // Accumulation after the tainted loop closed is clean too.
        let after = "for s in rx.try_iter() {\n\
                     v.push(s);\n\
                     }\n\
                     total += v[0];\n";
        assert!(run("crates/doall-bench/src/x.rs", after).is_empty());
        // Outside deterministic crates the rule does not apply.
        assert!(run("crates/doall-runtime/src/x.rs", multi).is_empty());
        assert!(run("src/cli.rs", multi).is_empty());
    }

    #[test]
    fn h002_wants_forbid_on_crate_roots_only() {
        let empty = "pub fn f() {}\n";
        let hits = run("crates/doall-core/src/lib.rs", empty);
        assert_eq!(hits.len(), 1);
        assert_eq!((hits[0].rule, hits[0].line), (RuleId::H002, 1));
        assert!(run("crates/doall-core/src/other.rs", empty).is_empty());
        let good = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(run("crates/doall-core/src/lib.rs", good).is_empty());
        // A forbid mentioned in a comment does not count.
        let comment_only = "// #![forbid(unsafe_code)]\npub fn f() {}\n";
        assert_eq!(run("src/lib.rs", comment_only).len(), 1);
    }

    #[test]
    fn one_diagnostic_per_line_per_rule() {
        let text = "let (a, b): (HashMap<u8, u8>, HashSet<u8>);\n";
        let hits = run("crates/doall-perms/src/x.rs", text);
        assert_eq!(hits.len(), 1, "two tokens, one line, one diagnostic");
    }

    #[test]
    fn only_filter_restricts_rules() {
        let text = "use std::collections::HashMap;\nlet v = x.unwrap();\n";
        let mut out = Vec::new();
        scan_file(
            "crates/doall-sim/src/x.rs",
            &mask(text),
            &[RuleId::H001],
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, RuleId::H001);
    }

    #[test]
    fn masked_regions_never_fire() {
        let text = "// HashMap in a comment\n\
                    const DOC: &str = \"HashMap in a string\";\n\
                    #[cfg(test)]\n\
                    mod tests {\n\
                        use std::collections::HashMap;\n\
                        #[test]\n\
                        fn t() { let x: HashMap<u8, u8> = HashMap::new(); }\n\
                    }\n";
        assert!(run("crates/doall-sim/src/x.rs", text).is_empty());
    }
}
