//! Statistical sanity checks tying the combinatorics to known
//! distributional facts.

use doall_perms::{d_lrm, harmonic, lrm, Permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The expected number of left-to-right maxima of a uniform random
/// permutation is exactly `H_n` (Knuth vol. 3): position `i` (1-based
/// from the end of the prefix) is a record with probability `1/i`.
#[test]
fn expected_lrm_is_harmonic() {
    let n = 64;
    let samples = 4000;
    let mut rng = StdRng::seed_from_u64(12345);
    let mut total = 0usize;
    for _ in 0..samples {
        total += lrm(&Permutation::random(n, &mut rng));
    }
    let mean = total as f64 / samples as f64;
    let expect = harmonic(n);
    // Var[lrm] = H_n − H_n^(2) < H_n ≈ 4.74; the sample mean's standard
    // error is ≈ √(4.74/4000) ≈ 0.034 — a ±5σ band is ±0.17.
    assert!(
        (mean - expect).abs() < 0.2,
        "sample mean {mean} vs H_{n} = {expect}"
    );
}

/// The expected number of d-lrm's of a uniform random permutation is
/// `Σ_i min(d/i, 1) = d + d·(H_n − H_d)` (the claim inside Lemma 4.3:
/// position i from the end is a d-record with probability min(d/i, 1)).
#[test]
fn expected_d_lrm_matches_lemma_4_3_claim() {
    let n = 48;
    let samples = 4000;
    for d in [2usize, 5, 12] {
        let mut rng = StdRng::seed_from_u64(999 + d as u64);
        let mut total = 0usize;
        for _ in 0..samples {
            total += d_lrm(&Permutation::random(n, &mut rng), d);
        }
        let mean = total as f64 / samples as f64;
        let expect = d as f64 + d as f64 * (harmonic(n) - harmonic(d));
        assert!(
            (mean - expect).abs() < 0.35,
            "d={d}: sample mean {mean} vs d(1 + H_n − H_d) = {expect}"
        );
    }
}

/// Records accumulate: a random permutation's lrm count is 1 with
/// probability exactly 1/n only when the maximum comes first; check the
/// frequency of that event as a distribution smoke test.
#[test]
fn max_first_frequency_is_one_over_n() {
    let n = 16;
    let samples = 20_000;
    let mut rng = StdRng::seed_from_u64(7);
    let mut max_first = 0usize;
    for _ in 0..samples {
        let p = Permutation::random(n, &mut rng);
        if p.apply(0) == n - 1 {
            max_first += 1;
        }
    }
    let freq = max_first as f64 / samples as f64;
    let expect = 1.0 / n as f64; // 0.0625
    assert!(
        (freq - expect).abs() < 0.01,
        "frequency {freq} vs 1/n = {expect}"
    );
}
