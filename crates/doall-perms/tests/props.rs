//! Property-based tests for permutation algebra and contention laws.

use doall_perms::{
    contention_wrt, d_contention_wrt, d_lrm, dcont_threshold, lrm, Permutation, Schedules,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_perm(n: usize, seed: u64) -> Permutation {
    Permutation::random(n, &mut StdRng::seed_from_u64(seed))
}

proptest! {
    /// π ∘ π⁻¹ = π⁻¹ ∘ π = identity.
    #[test]
    fn inverse_roundtrip(n in 1usize..40, seed in any::<u64>()) {
        let p = random_perm(n, seed);
        prop_assert_eq!(p.compose(&p.inverse()), Permutation::identity(n));
        prop_assert_eq!(p.inverse().compose(&p), Permutation::identity(n));
    }

    /// Composition is associative.
    #[test]
    fn compose_associative(n in 1usize..20, s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>()) {
        let a = random_perm(n, s1);
        let b = random_perm(n, s2);
        let c = random_perm(n, s3);
        prop_assert_eq!(a.compose(&b).compose(&c), a.compose(&b.compose(&c)));
    }

    /// (a ∘ b)⁻¹ = b⁻¹ ∘ a⁻¹.
    #[test]
    fn inverse_antihomomorphism(n in 1usize..20, s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = random_perm(n, s1);
        let b = random_perm(n, s2);
        prop_assert_eq!(a.compose(&b).inverse(), b.inverse().compose(&a.inverse()));
    }

    /// 1 ≤ lrm(π) ≤ n; lrm counts the first element always.
    #[test]
    fn lrm_range(n in 1usize..60, seed in any::<u64>()) {
        let p = random_perm(n, seed);
        let l = lrm(&p);
        prop_assert!(l >= 1);
        prop_assert!(l <= n);
    }

    /// d_lrm is monotone nondecreasing in d and hits n at d = n.
    #[test]
    fn d_lrm_monotone(n in 1usize..40, seed in any::<u64>()) {
        let p = random_perm(n, seed);
        let mut prev = 0usize;
        for d in 1..=n {
            let cur = d_lrm(&p, d);
            prop_assert!(cur >= prev);
            prop_assert!(cur >= d.min(n), "first d positions are always d-lrm");
            prev = cur;
        }
        prop_assert_eq!(prev, n);
    }

    /// d_lrm(π, 1) == lrm(π) — the generalization is conservative.
    #[test]
    fn d_lrm_generalizes_lrm(n in 1usize..40, seed in any::<u64>()) {
        let p = random_perm(n, seed);
        prop_assert_eq!(d_lrm(&p, 1), lrm(&p));
    }

    /// lrm(π) + lrm(reverse of π as value-complement) duality: the reversal
    /// permutation has exactly one maximum; composing with it flips order.
    #[test]
    fn reversal_conjugation_bounds(n in 2usize..30, seed in any::<u64>()) {
        let p = random_perm(n, seed);
        let rev = Permutation::reversal(n);
        // rev ∘ p replaces each value v by n−1−v, turning maxima into minima:
        // left-to-right minima count of p equals lrm(rev ∘ p).
        let lr_minima = {
            let s = p.as_slice();
            let mut m = u32::MAX;
            let mut c = 0;
            for &v in s {
                if v < m { c += 1; m = v; }
            }
            c
        };
        prop_assert_eq!(lrm(&rev.compose(&p)), lr_minima);
    }

    /// Contention w.r.t. any ϱ lies in [p, p·n]; p = #schedules.
    #[test]
    fn contention_wrt_range(
        n in 1usize..20,
        p in 1usize..6,
        seed in any::<u64>(),
        rho_seed in any::<u64>(),
    ) {
        let sigma: Vec<Permutation> =
            (0..p).map(|i| random_perm(n, seed.wrapping_add(i as u64))).collect();
        let rho = random_perm(n, rho_seed);
        let c = contention_wrt(&sigma, &rho);
        prop_assert!(c >= p);
        prop_assert!(c <= p * n);
    }

    /// d-contention w.r.t. ϱ is monotone in d and saturates at p·n.
    #[test]
    fn d_contention_wrt_monotone(
        n in 1usize..16,
        p in 1usize..5,
        seed in any::<u64>(),
        rho_seed in any::<u64>(),
    ) {
        let sigma: Vec<Permutation> =
            (0..p).map(|i| random_perm(n, seed.wrapping_add(i as u64))).collect();
        let rho = random_perm(n, rho_seed);
        let mut prev = 0usize;
        for d in 1..=n {
            let cur = d_contention_wrt(&sigma, &rho, d);
            prop_assert!(cur >= prev);
            prev = cur;
        }
        prop_assert_eq!(prev, p * n);
        // d = 1 case coincides with plain contention.
        prop_assert_eq!(d_contention_wrt(&sigma, &rho, 1), contention_wrt(&sigma, &rho));
    }

    /// Left-composition invariance: Cont(⟨ρ∘π_u⟩, ρ∘ϱ) = Cont(Σ, ϱ) — the
    /// symmetry the exhaustive search exploits.
    #[test]
    fn left_composition_invariance(
        n in 1usize..12,
        p in 1usize..4,
        seed in any::<u64>(),
        lift in any::<u64>(),
        rho_seed in any::<u64>(),
    ) {
        let sigma: Vec<Permutation> =
            (0..p).map(|i| random_perm(n, seed.wrapping_add(i as u64))).collect();
        let rho = random_perm(n, rho_seed);
        let lift = random_perm(n, lift);
        let lifted: Vec<Permutation> = sigma.iter().map(|s| lift.compose(s)).collect();
        prop_assert_eq!(
            contention_wrt(&lifted, &lift.compose(&rho)),
            contention_wrt(&sigma, &rho)
        );
    }

    /// The Thm 4.4 threshold dominates n ln n and is monotone in d.
    #[test]
    fn threshold_sane(n in 2usize..1000, p in 1usize..100, d in 1usize..500) {
        let th = dcont_threshold(n, p, d);
        prop_assert!(th > n as f64 * (n as f64).ln());
        prop_assert!(dcont_threshold(n, p, d + 1) > th);
    }

    /// Random schedule lists are valid and expose consistent dimensions.
    #[test]
    fn schedules_random_valid(count in 1usize..8, n in 1usize..30, seed in any::<u64>()) {
        let s = Schedules::random(count, n, seed);
        prop_assert_eq!(s.len(), count);
        prop_assert_eq!(s.n(), n);
        for u in 0..count {
            // each schedule is a genuine permutation: inverse roundtrips
            let p = s.get(u);
            prop_assert_eq!(p.compose(&p.inverse()), Permutation::identity(n));
        }
    }
}
