//! Construction of low-contention schedule lists.
//!
//! Lemma 4.1 (Anderson & Woll) guarantees that for every `n` there is a
//! list `Σ` of `n` permutations of `[n]` with `Cont(Σ) ≤ 3nH_n = O(n log n)`;
//! the paper finds such lists by exhaustive search ("this cost might be of
//! order `(n!)^n`"). DA(q) only ever needs them for a *constant* `q`, so we
//! provide:
//!
//! * [`exhaustive_min_contention`] — provably optimal lists for `q ≤ 4`
//!   (using the left-composition invariance of contention to fix
//!   `π_0 = identity`);
//! * [`hill_climb_low_contention`] — local search with **exact**
//!   certification for `q ≤ 8`;
//! * [`Schedules::random`] — random lists for the large-`n` regime, whose
//!   `d`-contention is bounded by Theorem 4.4 with overwhelming
//!   probability (this is what PaDet uses, per Corollary 4.5).
//!
//! The dispatching constructor [`low_contention_list`] picks the strongest
//! affordable method.

use crate::contention::{contention_exact, contention_of_list, ContentionEstimate};
use crate::dcontention::d_contention_of_list;
use crate::harmonic;
use crate::{PermError, Permutation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A validated, nonempty list of equal-size schedules
/// `Σ = ⟨π_0, …, π_{p−1}⟩`, the object both DA(q) and PaDet are
/// parameterized by.
///
/// ```
/// use doall_perms::Schedules;
///
/// // A Theorem 4.4-style random list: 8 schedules over [32].
/// let sigma = Schedules::random(8, 32, 42);
/// assert_eq!((sigma.len(), sigma.n()), (8, 32));
///
/// // Its d-contention grows with d and saturates at n·p.
/// let profile = sigma.d_contention_profile(&[1, 4, 32]);
/// assert!(profile[0].value <= profile[1].value);
/// assert_eq!(profile[2].value, 8 * 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedules {
    perms: Vec<Permutation>,
}

impl Schedules {
    /// Wraps a list of permutations.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::Empty`] for an empty list and
    /// [`PermError::NotABijection`] if the sizes disagree (the list would
    /// not be a subset of a single `S_n`).
    pub fn from_perms(perms: Vec<Permutation>) -> Result<Self, PermError> {
        let first = perms.first().ok_or(PermError::Empty)?;
        let n = first.n();
        if perms.iter().any(|p| p.n() != n) {
            return Err(PermError::NotABijection);
        }
        Ok(Self { perms })
    }

    /// A list of `count` independent uniformly random permutations of
    /// `[n]` — the Theorem 4.4 construction.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `n == 0`.
    #[must_use]
    pub fn random(count: usize, n: usize, seed: u64) -> Self {
        assert!(count > 0, "need at least one schedule");
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            perms: (0..count)
                .map(|_| Permutation::random(n, &mut rng))
                .collect(),
        }
    }

    /// `count` copies of the identity — the *worst possible* list
    /// (contention `count · n`), useful as an experimental control.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `n == 0`.
    #[must_use]
    pub fn worst(count: usize, n: usize) -> Self {
        assert!(count > 0, "need at least one schedule");
        Self {
            perms: vec![Permutation::identity(n); count],
        }
    }

    /// Size `n` of the underlying set.
    #[must_use]
    pub fn n(&self) -> usize {
        self.perms[0].n()
    }

    /// Number of schedules in the list.
    #[must_use]
    pub fn len(&self) -> usize {
        self.perms.len()
    }

    /// Always `false` (the type is validated nonempty); present for
    /// `len`/`is_empty` API symmetry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `u`-th schedule.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn get(&self, u: usize) -> &Permutation {
        &self.perms[u]
    }

    /// All schedules as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Permutation] {
        &self.perms
    }

    /// Contention of this list (exact for `n ≤ 8`, estimated otherwise).
    #[must_use]
    pub fn contention(&self) -> ContentionEstimate {
        contention_of_list(&self.perms)
    }

    /// `d`-contention of this list for each `d` in `ds` (exact for
    /// `n ≤ 8`, estimated otherwise).
    #[must_use]
    pub fn d_contention_profile(&self, ds: &[usize]) -> Vec<crate::DContentionEstimate> {
        ds.iter()
            .map(|&d| d_contention_of_list(&self.perms, d))
            .collect()
    }
}

/// The Lemma 4.1 existence bound `3nH_n` for lists of `n` permutations of
/// `[n]`.
#[must_use]
pub fn lemma41_bound(n: usize) -> f64 {
    3.0 * n as f64 * harmonic(n)
}

/// Exhaustive search for a minimum-contention list of `q` permutations of
/// `[q]`, exact by construction.
///
/// Contention is invariant under left-composition of the whole list with a
/// fixed permutation (substituting `ϱ → ρ⁻¹ϱ` in the max), so every
/// contention value is achieved by a list with `π_0 = identity`; we only
/// enumerate those, reducing the search space from `(q!)^q` to
/// `(q!)^{q−1}`.
///
/// # Panics
///
/// Panics unless `2 ≤ q ≤ 4` (beyond that the space is astronomically
/// large; use [`hill_climb_low_contention`]).
#[must_use]
pub fn exhaustive_min_contention(q: usize) -> (Schedules, usize) {
    assert!(
        (2..=4).contains(&q),
        "exhaustive search is only affordable for 2 ≤ q ≤ 4 (got {q})"
    );
    let all: Vec<Permutation> = Permutation::all(q).collect();
    let mut best: Option<(Vec<Permutation>, usize)> = None;
    let mut stack: Vec<Permutation> = vec![Permutation::identity(q)];
    search_lists(&all, q, &mut stack, &mut best);
    // lint:allow(H001) — invariant: the identity-rooted search always records a candidate
    let (perms, value) = best.expect("search space is nonempty");
    (Schedules { perms }, value)
}

fn search_lists(
    all: &[Permutation],
    q: usize,
    stack: &mut Vec<Permutation>,
    best: &mut Option<(Vec<Permutation>, usize)>,
) {
    if stack.len() == q {
        let value = contention_exact(stack);
        if best.as_ref().is_none_or(|(_, b)| value < *b) {
            *best = Some((stack.clone(), value));
        }
        return;
    }
    for candidate in all {
        stack.push(candidate.clone());
        search_lists(all, q, stack, best);
        stack.pop();
    }
}

/// Randomized hill-climbing for a low-contention list of `q` permutations
/// of `[q]`, with **exact** contention certification of the result.
///
/// Moves are transpositions within a single schedule; `restarts`
/// independent starts, first-improvement descent. Affordable up to
/// `q = 8` (each exact evaluation enumerates `q! ≤ 40320` references).
///
/// # Panics
///
/// Panics unless `2 ≤ q ≤ 8`.
#[must_use]
pub fn hill_climb_low_contention(q: usize, seed: u64, restarts: usize) -> (Schedules, usize) {
    assert!(
        (2..=8).contains(&q),
        "exact certification requires 2 ≤ q ≤ 8 (got {q})"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best: Option<(Vec<Permutation>, usize)> = None;

    for _ in 0..restarts.max(1) {
        let mut current: Vec<Permutation> =
            (0..q).map(|_| Permutation::random(q, &mut rng)).collect();
        let mut value = contention_exact(&current);
        // First-improvement descent with a bounded stall budget.
        let mut stall = 0usize;
        let budget = 8 * q * q;
        while stall < budget {
            let u = rng.random_range(0..q);
            let i = rng.random_range(0..q);
            let j = rng.random_range(0..q);
            if i == j {
                stall += 1;
                continue;
            }
            current[u].swap_positions(i, j);
            let v = contention_exact(&current);
            if v < value {
                value = v;
                stall = 0;
            } else {
                current[u].swap_positions(i, j);
                stall += 1;
            }
        }
        if best.as_ref().is_none_or(|(_, b)| value < *b) {
            best = Some((current, value));
        }
    }
    // lint:allow(H001) — invariant: restarts ≥ 1, so the loop records a best
    let (perms, value) = best.expect("at least one restart");
    (Schedules { perms }, value)
}

/// Constructs a list of `q` permutations of `[q]` with certified-low
/// contention, dispatching on `q`:
///
/// * `q ≤ 3` — provably optimal (exhaustive);
/// * `q ≤ 8` — hill-climbing with exact certification;
/// * otherwise — a random list with an estimated certificate (the
///   Theorem 4.4 regime).
///
/// Returns the list and its (certified or estimated) contention.
///
/// # Panics
///
/// Panics if `q < 2`.
#[must_use]
pub fn low_contention_list(q: usize, seed: u64) -> (Schedules, ContentionEstimate) {
    assert!(q >= 2, "DA(q) requires q ≥ 2");
    match q {
        2..=3 => {
            let (s, v) = exhaustive_min_contention(q);
            (
                s,
                ContentionEstimate {
                    value: v,
                    exact: true,
                },
            )
        }
        4..=8 => {
            let (s, v) = hill_climb_low_contention(q, seed, 3);
            (
                s,
                ContentionEstimate {
                    value: v,
                    exact: true,
                },
            )
        }
        _ => {
            let s = Schedules::random(q, q, seed);
            let c = s.contention();
            (s, c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_perms_validates() {
        assert_eq!(Schedules::from_perms(vec![]).unwrap_err(), PermError::Empty);
        let bad = Schedules::from_perms(vec![Permutation::identity(2), Permutation::identity(3)]);
        assert_eq!(bad.unwrap_err(), PermError::NotABijection);
        let ok = Schedules::from_perms(vec![Permutation::identity(3); 2]).unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.n(), 3);
    }

    #[test]
    fn exhaustive_q2_is_optimal() {
        let (s, v) = exhaustive_min_contention(2);
        assert_eq!(s.len(), 2);
        // For q = 2: the best list pairs the two orders; Cont = 3
        // (one schedule contributes 2, the other 1, whatever ϱ is).
        assert_eq!(v, 3);
        assert_eq!(contention_exact(s.as_slice()), 3);
    }

    #[test]
    fn exhaustive_q3_beats_lemma41() {
        let (s, v) = exhaustive_min_contention(3);
        assert_eq!(s.len(), 3);
        assert!(v as f64 <= lemma41_bound(3), "{v} vs {}", lemma41_bound(3));
        // Sanity: strictly better than the all-identical list (9).
        assert!(v < 9);
    }

    #[test]
    fn hill_climb_q4_certified() {
        let (s, v) = hill_climb_low_contention(4, 1, 2);
        assert_eq!(contention_exact(s.as_slice()), v, "certificate is exact");
        assert!(v as f64 <= lemma41_bound(4), "{v} vs {}", lemma41_bound(4));
    }

    #[test]
    fn hill_climb_matches_exhaustive_on_q3() {
        let (_, opt) = exhaustive_min_contention(3);
        let (_, hc) = hill_climb_low_contention(3, 5, 4);
        assert!(hc >= opt);
        assert!(hc <= opt + 2, "hill climbing should land near optimum");
    }

    #[test]
    fn dispatcher_modes() {
        let (s2, c2) = low_contention_list(2, 0);
        assert!(c2.exact);
        assert_eq!(s2.len(), 2);
        let (s5, c5) = low_contention_list(5, 0);
        assert!(c5.exact);
        assert_eq!(s5.len(), 5);
        assert!(c5.value as f64 <= lemma41_bound(5));
        let (s12, c12) = low_contention_list(12, 0);
        assert!(!c12.exact);
        assert_eq!(s12.len(), 12);
    }

    #[test]
    fn worst_list_has_maximal_contention() {
        let s = Schedules::worst(3, 3);
        assert_eq!(contention_exact(s.as_slice()), 9);
    }

    #[test]
    fn random_schedules_deterministic_by_seed() {
        let a = Schedules::random(4, 10, 99);
        let b = Schedules::random(4, 10, 99);
        assert_eq!(a, b);
        let c = Schedules::random(4, 10, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn d_contention_profile_monotone() {
        let s = Schedules::random(3, 6, 0);
        let prof = s.d_contention_profile(&[1, 2, 3, 6]);
        for w in prof.windows(2) {
            assert!(w[0].value <= w[1].value);
        }
        assert_eq!(prof.last().unwrap().value, 18, "saturates at n·p");
    }
}
