//! Contention of schedule lists (Anderson & Woll; Section 4 of the paper).
//!
//! For a list `Σ = ⟨π_0, …, π_{p−1}⟩` of permutations of `[n]` and a
//! reference permutation `ϱ ∈ S_n`,
//!
//! ```text
//! Cont(Σ, ϱ) = Σ_u lrm(ϱ⁻¹ ∘ π_u),      Cont(Σ) = max_{ϱ ∈ S_n} Cont(Σ, ϱ).
//! ```
//!
//! `Cont(Σ)` bounds the number of *primary* (first-time, possibly
//! concurrent) job executions of the oblivious algorithm ObliDo
//! (Lemma 4.2), and through the recursion of Lemma 5.3 drives the work of
//! DA(q). For any list, `n ≤ Cont(Σ) ≤ n·p` (each of the `p` schedules
//! contributes between 1 and `n` maxima); the paper states the `p = n`
//! special case `n ≤ Cont(Σ) ≤ n²`.

use crate::{lrm, Permutation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `Cont(Σ, ϱ) = Σ_u lrm(ϱ⁻¹ ∘ π_u)`.
///
/// # Panics
///
/// Panics if `sigma` is empty or the sizes disagree.
#[must_use]
pub fn contention_wrt(sigma: &[Permutation], rho: &Permutation) -> usize {
    assert!(
        !sigma.is_empty(),
        "contention of an empty list is undefined"
    );
    let rho_inv = rho.inverse();
    sigma
        .iter()
        .map(|pi| {
            assert_eq!(pi.n(), rho.n(), "schedule sizes must agree");
            lrm(&rho_inv.compose(pi))
        })
        .sum()
}

/// Exact `Cont(Σ) = max_ϱ Cont(Σ, ϱ)` by enumerating all `n!` reference
/// permutations.
///
/// Cost is `Θ(n! · p · n)`; intended for `n ≤ 8` (the DA(q) regime, where
/// `q` is a small constant). The paper's own search is likewise
/// brute-force: "this costs only a constant number of operations …
/// (however, this cost might be of order `(n!)^n`)".
///
/// # Panics
///
/// Panics if `sigma` is empty.
#[must_use]
pub fn contention_exact(sigma: &[Permutation]) -> usize {
    assert!(
        !sigma.is_empty(),
        "contention of an empty list is undefined"
    );
    let n = sigma[0].n();
    Permutation::all(n)
        .map(|rho| contention_wrt(sigma, &rho))
        .max()
        // lint:allow(H001) — invariant: S_n always has at least the identity
        .expect("S_n is nonempty")
}

/// Result of a contention computation: the value and whether it is exact
/// (enumeration over all of `S_n`) or a lower-bound estimate (sampling +
/// local search over `ϱ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionEstimate {
    /// The (estimated or exact) contention value.
    pub value: usize,
    /// `true` if `value` is the exact maximum over all of `S_n`.
    pub exact: bool,
}

/// Estimates `Cont(Σ)` from below: the max of `Cont(Σ, ϱ)` over `samples`
/// random `ϱ` plus a greedy swap ascent from the best sample.
///
/// This is only ever used for *reporting* on large `n` (DESIGN.md §2); the
/// algorithms rely on exact values for small `q` or on the probabilistic
/// bounds of Theorem 4.4.
///
/// # Panics
///
/// Panics if `sigma` is empty.
#[must_use]
pub fn contention_estimate(sigma: &[Permutation], samples: usize, seed: u64) -> usize {
    maximize_over_rho(sigma, samples, seed, contention_wrt)
}

/// `Cont(Σ)` with an automatic exact/estimate decision: exact for `n ≤ 8`,
/// sampled estimate (64 samples, seed 0) otherwise.
///
/// # Panics
///
/// Panics if `sigma` is empty.
#[must_use]
pub fn contention_of_list(sigma: &[Permutation]) -> ContentionEstimate {
    assert!(
        !sigma.is_empty(),
        "contention of an empty list is undefined"
    );
    let n = sigma[0].n();
    if n <= 8 {
        ContentionEstimate {
            value: contention_exact(sigma),
            exact: true,
        }
    } else {
        ContentionEstimate {
            value: contention_estimate(sigma, 64, 0),
            exact: false,
        }
    }
}

/// Shared maximizer over reference permutations: random sampling followed
/// by first-improvement swap ascent (bounded proposal budget). Also used by
/// the d-contention estimator.
pub(crate) fn maximize_over_rho(
    sigma: &[Permutation],
    samples: usize,
    seed: u64,
    objective: impl Fn(&[Permutation], &Permutation) -> usize,
) -> usize {
    assert!(
        !sigma.is_empty(),
        "contention of an empty list is undefined"
    );
    let n = sigma[0].n();
    let mut rng = StdRng::seed_from_u64(seed);

    // The identity is the natural first guess: for schedule lists built from
    // "forward-leaning" permutations it is often the worst case.
    let mut best_rho = Permutation::identity(n);
    let mut best = objective(sigma, &best_rho);

    for _ in 0..samples {
        let rho = Permutation::random(n, &mut rng);
        let v = objective(sigma, &rho);
        if v > best {
            best = v;
            best_rho = rho;
        }
    }

    // Greedy ascent: propose random transpositions, keep improvements.
    let budget = (4 * n).max(128);
    let mut rho = best_rho;
    for _ in 0..budget {
        if n < 2 {
            break;
        }
        let i = rng.random_range(0..n);
        let j = rng.random_range(0..n);
        if i == j {
            continue;
        }
        rho.swap_positions(i, j);
        let v = objective(sigma, &rho);
        if v > best {
            best = v;
        } else {
            rho.swap_positions(i, j); // revert
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perm(img: &[u32]) -> Permutation {
        Permutation::from_image(img.to_vec()).unwrap()
    }

    #[test]
    fn contention_wrt_identity_is_sum_of_lrm() {
        let sigma = vec![Permutation::identity(4), Permutation::reversal(4)];
        let id = Permutation::identity(4);
        assert_eq!(contention_wrt(&sigma, &id), 4 + 1);
    }

    #[test]
    fn single_identity_schedule_has_contention_n() {
        // Σ = ⟨ι⟩: Cont(Σ, ϱ) = lrm(ϱ⁻¹), maximized at ϱ = ι giving n.
        let sigma = vec![Permutation::identity(4)];
        assert_eq!(contention_exact(&sigma), 4);
    }

    #[test]
    fn identical_schedules_have_maximal_contention() {
        // p copies of the same permutation: worst ϱ aligns them all to the
        // identity, giving p·n.
        let sigma = vec![perm(&[2, 0, 1]); 3];
        assert_eq!(contention_exact(&sigma), 9);
    }

    #[test]
    fn contention_bounds_hold_for_all_lists_n3() {
        // Exhaustively check n ≤ Cont(Σ) ≤ n·p over all lists of 2
        // permutations of [3].
        let all: Vec<Permutation> = Permutation::all(3).collect();
        for a in &all {
            for b in &all {
                let sigma = vec![a.clone(), b.clone()];
                let c = contention_exact(&sigma);
                assert!((3..=6).contains(&c), "{a:?} {b:?}: {c}");
            }
        }
    }

    #[test]
    fn exact_beats_or_equals_estimate() {
        let sigma = vec![
            perm(&[0, 1, 2, 3]),
            perm(&[3, 2, 1, 0]),
            perm(&[1, 3, 0, 2]),
            perm(&[2, 0, 3, 1]),
        ];
        let exact = contention_exact(&sigma);
        let est = contention_estimate(&sigma, 16, 42);
        assert!(est <= exact);
        // With n = 4 the estimator nearly always finds the max; allow slack
        // but require it to be in range.
        assert!(est >= sigma[0].n());
    }

    #[test]
    fn of_list_is_exact_for_small_n() {
        let sigma = vec![Permutation::identity(5), Permutation::reversal(5)];
        let c = contention_of_list(&sigma);
        assert!(c.exact);
        assert_eq!(c.value, contention_exact(&sigma));
    }

    #[test]
    fn of_list_estimates_for_large_n() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sigma: Vec<Permutation> = (0..4).map(|_| Permutation::random(16, &mut rng)).collect();
        let c = contention_of_list(&sigma);
        assert!(!c.exact);
        assert!(c.value >= 16, "at least n");
        assert!(c.value <= 64, "at most n·p");
    }

    #[test]
    #[should_panic(expected = "empty list")]
    fn empty_list_panics() {
        let _ = contention_exact(&[]);
    }
}
