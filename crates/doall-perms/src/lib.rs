//! Permutations and their *contention*, the combinatorial engine of
//! Kowalski & Shvartsman's message-delay-sensitive Do-All algorithms
//! (Section 4 of the paper).
//!
//! # Background
//!
//! When asynchronous processors perform tasks following fixed schedules
//! (permutations of the task identifiers), the number of tasks performed
//! *redundantly* is governed by left-to-right maxima: if processor `p₂`
//! follows schedule `π₂ = π₁ ∘ ϱ` while `p₁` follows `π₁` and performs
//! everything first, the tasks `p₂` performs redundantly are exactly the
//! left-to-right maxima of `ϱ` (Section 4 intro; Knuth vol. 3).
//!
//! * [`lrm`] — left-to-right maxima of a schedule.
//! * [`d_lrm`] — the paper's generalization: `π(j)` is a
//!   *d-left-to-right maximum* if fewer than `d` earlier elements exceed it.
//! * [`contention_of_list`] — `Cont(Σ, ϱ) = Σ_u lrm(ϱ⁻¹ ∘ π_u)` and
//!   `Cont(Σ) = max_ϱ Cont(Σ, ϱ)` (Anderson & Woll); drives the work bound
//!   of the tree algorithm DA (Theorem 5.4).
//! * [`d_contention_of_list`] — `(d)-Cont(Σ)`, the delay-sensitive
//!   generalization; `(d)-Cont(Σ)` bounds the work of the schedule
//!   algorithms PaDet/PaRan1 against any `d`-adversary (Lemma 6.1).
//! * [`search`] — certified low-contention schedule lists: exhaustive for
//!   tiny `q`, hill-climbing with exact certification up to `q = 8`
//!   (Lemma 4.1 guarantees lists with `Cont(Σ) ≤ 3qH_q` exist), and random
//!   lists for the large-`n` regime of Corollary 4.5.
//!
//! All permutations are **zero-based** internally; "larger element" in the
//! lrm definitions refers to the natural order on `0..n`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod contention;
mod dcontention;
mod harmonic;
mod lrm;
mod permutation;
pub mod search;
pub mod structured;

pub use contention::{
    contention_estimate, contention_exact, contention_of_list, contention_wrt, ContentionEstimate,
};
pub use dcontention::{
    d_contention_estimate, d_contention_exact, d_contention_of_list, d_contention_wrt,
    dcont_threshold, DContentionEstimate,
};
pub use harmonic::harmonic;
pub use lrm::{d_lrm, lrm};
pub use permutation::{PermError, Permutation, Permutations};
pub use search::Schedules;
