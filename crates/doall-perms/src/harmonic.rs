//! Harmonic numbers, used by the Lemma 4.1 bound `Cont(Σ) ≤ 3nH_n`.

/// The `n`-th harmonic number `H_n = Σ_{j=1}^{n} 1/j`, with `H_0 = 0`.
///
/// Computed by direct summation from the small end for accuracy; the values
/// used in this workspace are tiny (`n ≤ 10⁶`), so no asymptotic expansion
/// is needed.
#[must_use]
pub fn harmonic(n: usize) -> f64 {
    (1..=n).rev().map(|j| 1.0 / j as f64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-15);
        assert!((harmonic(2) - 1.5).abs() < 1e-15);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn close_to_ln_plus_gamma() {
        // H_n ≈ ln n + γ for large n.
        const GAMMA: f64 = 0.577_215_664_901_532_9;
        let n = 100_000;
        let approx = (n as f64).ln() + GAMMA;
        assert!((harmonic(n) - approx).abs() < 1e-4);
    }

    #[test]
    fn strictly_increasing() {
        let mut prev = 0.0;
        for n in 1..100 {
            let h = harmonic(n);
            assert!(h > prev);
            prev = h;
        }
    }
}
