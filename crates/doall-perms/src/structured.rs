//! Structured (O(1)-storage, O(1)-evaluation) schedule constructions.
//!
//! The paper leaves open "how to construct such permutations efficiently"
//! (§7) — its deterministic lists come from exhaustive search (tiny `q`)
//! or the probabilistic method (Corollary 4.5), and the constructive
//! alternative it cites (Naor–Roth) needs `q` exponential in `1/ε³`.
//! This module provides the two classical cheap constructions so the
//! experiment harness (E15) can measure how their contention compares
//! with random lists:
//!
//! * [`rotation_schedules`] — `π_u(i) = (i + u·⌈n/p⌉) mod n`: what a
//!   practitioner would write first. Spreads *starting points* perfectly,
//!   but all processors sweep in the same direction, so its plain
//!   contention is poor (`Θ(n·p)` against the identity ordering) — a
//!   useful cautionary baseline.
//! * [`affine_schedules`] — `π_u(i) = (aᵤ·i + bᵤ) mod n` for `n` prime
//!   and distinct multipliers `aᵤ`: the direction varies per processor,
//!   which empirically brings `d`-contention close to random lists while
//!   needing only two words of state per schedule.

use crate::{PermError, Permutation, Schedules};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Rotation schedules: processor `u` starts at offset `u·⌈n/count⌉` and
/// wraps — perfect start-point spreading, identical sweep direction.
///
/// # Panics
///
/// Panics if `count == 0` or `n == 0`.
#[must_use]
pub fn rotation_schedules(count: usize, n: usize) -> Schedules {
    assert!(count > 0, "need at least one schedule");
    assert!(n > 0, "permutations must be nonempty");
    let stride = n.div_ceil(count);
    let perms = (0..count)
        .map(|u| {
            let off = (u * stride) % n;
            Permutation::from_image((0..n).map(|i| ((i + off) % n) as u32).collect())
                // lint:allow(H001) — invariant: i ↦ i+off mod n is a bijection
                .expect("rotation is a bijection")
        })
        .collect();
    // lint:allow(H001) — invariant: count ≥ 1 rotations were just built
    Schedules::from_perms(perms).expect("nonempty by construction")
}

/// Whether `n` is prime (trial division; the schedule sizes in play are
/// tiny).
#[must_use]
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    let mut k = 2;
    while k * k <= n {
        if n % k == 0 {
            return false;
        }
        k += 1;
    }
    true
}

/// Affine schedules over a prime modulus: `π_u(i) = (aᵤ·i + bᵤ) mod n`
/// with the multipliers `aᵤ ∈ {1, …, n−1}` drawn without replacement (so
/// every processor sweeps with a different stride/direction) and offsets
/// `bᵤ` random.
///
/// # Errors
///
/// Returns [`PermError::NotABijection`] if `n` is not prime (composite
/// moduli make `a·i mod n` non-injective for `gcd(a, n) > 1`; restricting
/// to primes keeps the construction simple and is no practical loss —
/// pad the job set to the next prime).
pub fn affine_schedules(count: usize, n: usize, seed: u64) -> Result<Schedules, PermError> {
    assert!(count > 0, "need at least one schedule");
    if !is_prime(n) {
        return Err(PermError::NotABijection);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut multipliers: Vec<usize> = (1..n).collect();
    multipliers.shuffle(&mut rng);
    let mut offsets: Vec<usize> = (0..n).collect();
    offsets.shuffle(&mut rng);
    let perms = (0..count)
        .map(|u| {
            let a = multipliers[u % multipliers.len()];
            let b = offsets[u % offsets.len()];
            Permutation::from_image((0..n).map(|i| ((a * i + b) % n) as u32).collect())
                // lint:allow(H001) — invariant: gcd(a, n) = 1 for prime n, so the map is a bijection
                .expect("affine map over a prime modulus is a bijection")
        })
        .collect();
    Schedules::from_perms(perms)
}

/// The smallest prime `≥ n` (for padding job sets to a prime size).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn next_prime(n: usize) -> usize {
    assert!(n > 0, "n must be positive");
    let mut k = n.max(2);
    while !is_prime(k) {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention_exact;

    #[test]
    fn rotations_are_valid_permutations() {
        let s = rotation_schedules(4, 10);
        assert_eq!(s.len(), 4);
        assert_eq!(s.n(), 10);
        // Offsets: 0, 3, 6, 9.
        assert_eq!(s.get(0).apply(0), 0);
        assert_eq!(s.get(1).apply(0), 3);
        assert_eq!(s.get(3).apply(9), (9 + 9) % 10);
    }

    #[test]
    fn rotation_contention_is_poor_against_identity() {
        // All rotations share the sweep direction: against ϱ = identity,
        // schedule u has n − offset left-to-right maxima — Θ(n·p) total.
        let n = 6;
        let s = rotation_schedules(n, n);
        let c = contention_exact(s.as_slice());
        assert!(
            c >= n * n / 2,
            "rotations are a bad list: Cont = {c} should be Ω(n²/2)"
        );
    }

    #[test]
    fn primality() {
        assert!(is_prime(2));
        assert!(is_prime(7));
        assert!(is_prime(97));
        assert!(!is_prime(1));
        assert!(!is_prime(9));
        assert!(!is_prime(91)); // 7 × 13
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(11), 11);
        assert_eq!(next_prime(1), 2);
    }

    #[test]
    fn affine_requires_prime_modulus() {
        assert!(affine_schedules(3, 8, 0).is_err());
        assert!(affine_schedules(3, 7, 0).is_ok());
    }

    #[test]
    fn affine_schedules_are_distinct_bijections() {
        let s = affine_schedules(5, 11, 3).unwrap();
        assert_eq!(s.len(), 5);
        for u in 0..5 {
            let p = s.get(u);
            // bijection: inverse roundtrip.
            assert_eq!(p.compose(&p.inverse()), Permutation::identity(11));
        }
        // Distinct multipliers ⇒ distinct schedules.
        for u in 0..5 {
            for v in (u + 1)..5 {
                assert_ne!(s.get(u), s.get(v));
            }
        }
    }

    #[test]
    fn affine_beats_rotations_on_contention() {
        // Varying sweep directions should land well below the rotation
        // list's near-maximal contention.
        let n = 7;
        let rot = contention_exact(rotation_schedules(n, n).as_slice());
        let aff = contention_exact(affine_schedules(n, n, 1).unwrap().as_slice());
        assert!(
            aff < rot,
            "affine ({aff}) should beat rotations ({rot}) at n = {n}"
        );
    }

    #[test]
    fn affine_is_seed_deterministic() {
        let a = affine_schedules(4, 13, 9).unwrap();
        let b = affine_schedules(4, 13, 9).unwrap();
        assert_eq!(a, b);
    }
}
