//! Left-to-right maxima and their delay-sensitive generalization.

use crate::Permutation;

/// The number of *left-to-right maxima* of `π`: positions `j` with
/// `π(j) > π(i)` for all `i < j` (Knuth vol. 3; Section 4 of the paper).
///
/// The first element is always a left-to-right maximum, so
/// `1 ≤ lrm(π) ≤ n`, with `lrm(identity) = n` and `lrm(reversal) = 1`.
///
/// ```
/// use doall_perms::{lrm, Permutation};
///
/// assert_eq!(lrm(&Permutation::identity(5)), 5);
/// assert_eq!(lrm(&Permutation::reversal(5)), 1);
/// // ⟨2 0 1 4 3⟩: maxima at values 2 and 4.
/// let pi = Permutation::from_image(vec![2, 0, 1, 4, 3]).unwrap();
/// assert_eq!(lrm(&pi), 2);
/// ```
#[must_use]
pub fn lrm(pi: &Permutation) -> usize {
    let mut count = 0usize;
    let mut max_so_far: Option<u32> = None;
    for &v in pi.as_slice() {
        if max_so_far.is_none_or(|m| v > m) {
            count += 1;
            max_so_far = Some(v);
        }
    }
    count
}

/// The number of *d-left-to-right maxima* of `π`: positions `j` such that
/// fewer than `d` earlier elements are greater, i.e.
/// `|{i : i < j ∧ π(i) > π(j)}| < d` (Section 4.2).
///
/// `d_lrm(π, 1) == lrm(π)`, and `d_lrm(π, d) == n` once `d ≥ n`.
///
/// ```
/// use doall_perms::{d_lrm, lrm, Permutation};
///
/// let pi = Permutation::from_image(vec![3, 1, 0, 2]).unwrap();
/// assert_eq!(d_lrm(&pi, 1), lrm(&pi)); // 1-lrm ≡ classic lrm
/// assert_eq!(d_lrm(&pi, 2), 3);        // value 1 and value 2 have one larger predecessor
/// assert_eq!(d_lrm(&pi, 4), 4);        // saturates at n
/// ```
///
/// The implementation walks the schedule with a Fenwick tree over values,
/// counting for each position how many earlier elements exceed it —
/// `O(n log n)` total, which matters because the `(d)`-contention estimator
/// evaluates this for hundreds of schedules of length up to several
/// thousand.
#[must_use]
pub fn d_lrm(pi: &Permutation, d: usize) -> usize {
    let n = pi.n();
    if d == 0 {
        return 0;
    }
    if d >= n {
        return n;
    }
    let mut fenwick = Fenwick::new(n);
    let mut count = 0usize;
    for (j, &v) in pi.as_slice().iter().enumerate() {
        let v = v as usize;
        // Earlier elements greater than v = j - (# earlier elements ≤ v).
        let le = fenwick.prefix_sum(v);
        let greater = j - le;
        if greater < d {
            count += 1;
        }
        fenwick.add(v);
    }
    count
}

/// Fenwick (binary indexed) tree over `0..n` counting inserted values.
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Inserts value `v` (counts it).
    fn add(&mut self, v: usize) {
        let mut i = v + 1;
        while i < self.tree.len() {
            self.tree[i] += 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Number of inserted values `≤ v`.
    fn prefix_sum(&self, v: usize) -> usize {
        let mut i = v + 1;
        let mut s = 0usize;
        while i > 0 {
            s += self.tree[i] as usize;
            i -= i & i.wrapping_neg();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn perm(img: &[u32]) -> Permutation {
        Permutation::from_image(img.to_vec()).unwrap()
    }

    #[test]
    fn lrm_of_identity_is_n() {
        assert_eq!(lrm(&Permutation::identity(7)), 7);
    }

    #[test]
    fn lrm_of_reversal_is_one() {
        assert_eq!(lrm(&Permutation::reversal(7)), 1);
    }

    #[test]
    fn lrm_hand_examples() {
        // ⟨2 0 1 4 3⟩: maxima at 2 and 4.
        assert_eq!(lrm(&perm(&[2, 0, 1, 4, 3])), 2);
        // ⟨0 2 1 3⟩: maxima 0, 2, 3.
        assert_eq!(lrm(&perm(&[0, 2, 1, 3])), 3);
        assert_eq!(lrm(&perm(&[0])), 1);
    }

    #[test]
    fn d_lrm_with_d_one_equals_lrm() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let p = Permutation::random(12, &mut rng);
            assert_eq!(d_lrm(&p, 1), lrm(&p), "{p:?}");
        }
    }

    #[test]
    fn d_lrm_saturates_at_n() {
        let p = perm(&[3, 1, 0, 2]);
        assert_eq!(d_lrm(&p, 4), 4);
        assert_eq!(d_lrm(&p, 100), 4);
        assert_eq!(d_lrm(&p, 0), 0);
    }

    #[test]
    fn d_lrm_hand_example() {
        // π = ⟨3 1 0 2⟩.
        // j=0 (v=3): 0 greater before → d-lrm for every d ≥ 1.
        // j=1 (v=1): 1 greater (3) → d-lrm iff d ≥ 2.
        // j=2 (v=0): 2 greater → d-lrm iff d ≥ 3.
        // j=3 (v=2): 1 greater → d-lrm iff d ≥ 2.
        let p = perm(&[3, 1, 0, 2]);
        assert_eq!(d_lrm(&p, 1), 1);
        assert_eq!(d_lrm(&p, 2), 3);
        assert_eq!(d_lrm(&p, 3), 4);
    }

    #[test]
    fn d_lrm_monotone_in_d() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let p = Permutation::random(20, &mut rng);
            let mut prev = 0;
            for d in 1..=20 {
                let cur = d_lrm(&p, d);
                assert!(cur >= prev);
                prev = cur;
            }
            assert_eq!(prev, 20);
        }
    }

    #[test]
    fn d_lrm_matches_naive() {
        fn naive(p: &Permutation, d: usize) -> usize {
            let s = p.as_slice();
            (0..s.len())
                .filter(|&j| (0..j).filter(|&i| s[i] > s[j]).count() < d)
                .count()
        }
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let p = Permutation::random(15, &mut rng);
            for d in 1..=15 {
                assert_eq!(d_lrm(&p, d), naive(&p, d), "{p:?} d={d}");
            }
        }
    }
}
