//! The [`Permutation`] type: elements of the symmetric group `S_n`.

use core::fmt;
use rand::seq::SliceRandom;
use rand::Rng;

/// Error constructing a permutation from raw data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PermError {
    /// The image vector was not a bijection on `0..n`.
    NotABijection,
    /// The permutation would be empty.
    Empty,
}

impl fmt::Display for PermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotABijection => write!(f, "image vector is not a bijection on 0..n"),
            Self::Empty => write!(f, "permutations must have at least one element"),
        }
    }
}

impl std::error::Error for PermError {}

/// A permutation `π ∈ S_n`, stored as its image vector:
/// `π.apply(i) = image[i]`.
///
/// The paper writes permutations one-based as `⟨π(1), …, π(n)⟩`; we are
/// zero-based throughout.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Permutation {
    image: Vec<u32>,
}

impl Permutation {
    /// The identity permutation `ι_n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        assert!(n > 0, "permutations must be nonempty");
        Self {
            image: (0..n as u32).collect(),
        }
    }

    /// The reversal `⟨n−1, n−2, …, 0⟩` — the unique schedule with a single
    /// left-to-right maximum (the Section 4 motivation: a reversed schedule
    /// minimizes redundant work between two processors).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn reversal(n: usize) -> Self {
        assert!(n > 0, "permutations must be nonempty");
        Self {
            image: (0..n as u32).rev().collect(),
        }
    }

    /// Builds a permutation from its image vector.
    ///
    /// # Errors
    ///
    /// Returns [`PermError::Empty`] for an empty vector and
    /// [`PermError::NotABijection`] if `image` is not a bijection on `0..n`.
    pub fn from_image(image: Vec<u32>) -> Result<Self, PermError> {
        if image.is_empty() {
            return Err(PermError::Empty);
        }
        let n = image.len();
        let mut seen = vec![false; n];
        for &v in &image {
            let v = v as usize;
            if v >= n || seen[v] {
                return Err(PermError::NotABijection);
            }
            seen[v] = true;
        }
        Ok(Self { image })
    }

    /// A uniformly random permutation (Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n > 0, "permutations must be nonempty");
        let mut image: Vec<u32> = (0..n as u32).collect();
        image.shuffle(rng);
        Self { image }
    }

    /// The size `n` of the underlying set.
    #[must_use]
    pub fn n(&self) -> usize {
        self.image.len()
    }

    /// Applies the permutation: `π(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn apply(&self, i: usize) -> usize {
        self.image[i] as usize
    }

    /// The image vector as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.image
    }

    /// Function composition `self ∘ other`: first apply `other`, then
    /// `self`, i.e. `(self ∘ other)(i) = self(other(i))`.
    ///
    /// # Panics
    ///
    /// Panics if the sizes differ.
    #[must_use]
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.n(), other.n(), "composition requires equal sizes");
        Permutation {
            image: other
                .image
                .iter()
                .map(|&i| self.image[i as usize])
                .collect(),
        }
    }

    /// The inverse permutation `π⁻¹`.
    #[must_use]
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0u32; self.n()];
        for (i, &v) in self.image.iter().enumerate() {
            inv[v as usize] = i as u32;
        }
        Permutation { image: inv }
    }

    /// Swaps the images at positions `i` and `j` (a local-search move used
    /// by the contention hill-climber).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap_positions(&mut self, i: usize, j: usize) {
        self.image.swap(i, j);
    }

    /// Iterator over all `n!` permutations of `[n]` in lexicographic order
    /// of image vectors.
    ///
    /// Intended for the exact contention evaluation of small `n` (`n ≤ 8`
    /// stays under 41k permutations); the iterator is lazy so callers may
    /// also take prefixes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn all(n: usize) -> Permutations {
        assert!(n > 0, "permutations must be nonempty");
        Permutations {
            next: Some(Permutation::identity(n)),
        }
    }
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (k, v) in self.image.iter().enumerate() {
            if k > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

/// Lazy iterator over `S_n` in lexicographic order (see
/// [`Permutation::all`]).
#[derive(Debug, Clone)]
pub struct Permutations {
    next: Option<Permutation>,
}

impl Iterator for Permutations {
    type Item = Permutation;

    fn next(&mut self) -> Option<Permutation> {
        let current = self.next.take()?;
        // Standard next-lexicographic-permutation on the image vector.
        let mut img = current.image.clone();
        let n = img.len();
        let succ = (|| {
            if n < 2 {
                return None;
            }
            let mut i = n - 1;
            while i > 0 && img[i - 1] >= img[i] {
                i -= 1;
            }
            if i == 0 {
                return None;
            }
            let mut j = n - 1;
            while img[j] <= img[i - 1] {
                j -= 1;
            }
            img.swap(i - 1, j);
            img[i..].reverse();
            Some(Permutation { image: img })
        })();
        self.next = succ;
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_fixes_everything() {
        let id = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(id.apply(i), i);
        }
    }

    #[test]
    fn reversal_reverses() {
        let r = Permutation::reversal(4);
        assert_eq!(r.as_slice(), &[3, 2, 1, 0]);
    }

    #[test]
    fn from_image_validates() {
        assert!(Permutation::from_image(vec![1, 0, 2]).is_ok());
        assert_eq!(
            Permutation::from_image(vec![]).unwrap_err(),
            PermError::Empty
        );
        assert_eq!(
            Permutation::from_image(vec![0, 0, 1]).unwrap_err(),
            PermError::NotABijection
        );
        assert_eq!(
            Permutation::from_image(vec![0, 3]).unwrap_err(),
            PermError::NotABijection
        );
    }

    #[test]
    fn compose_applies_right_then_left() {
        // π = ⟨1,2,0⟩ (cycle), ϱ = ⟨2,1,0⟩ (reversal).
        let pi = Permutation::from_image(vec![1, 2, 0]).unwrap();
        let rho = Permutation::reversal(3);
        let c = pi.compose(&rho);
        // (π∘ϱ)(0) = π(2) = 0, (π∘ϱ)(1) = π(1) = 2, (π∘ϱ)(2) = π(0) = 1.
        assert_eq!(c.as_slice(), &[0, 2, 1]);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1, 2, 5, 16] {
            let p = Permutation::random(n, &mut rng);
            assert_eq!(p.compose(&p.inverse()), Permutation::identity(n));
            assert_eq!(p.inverse().compose(&p), Permutation::identity(n));
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = Permutation::random(10, &mut StdRng::seed_from_u64(3));
        let b = Permutation::random(10, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn all_enumerates_factorial_many() {
        assert_eq!(Permutation::all(1).count(), 1);
        assert_eq!(Permutation::all(3).count(), 6);
        assert_eq!(Permutation::all(5).count(), 120);
    }

    #[test]
    fn all_is_lexicographic_and_distinct() {
        let perms: Vec<Permutation> = Permutation::all(4).collect();
        assert_eq!(perms.len(), 24);
        assert_eq!(perms[0], Permutation::identity(4));
        assert_eq!(perms[23], Permutation::reversal(4));
        for w in perms.windows(2) {
            assert!(w[0].as_slice() < w[1].as_slice(), "strictly increasing");
        }
    }

    #[test]
    fn debug_format() {
        let p = Permutation::from_image(vec![2, 0, 1]).unwrap();
        assert_eq!(format!("{p:?}"), "⟨2 0 1⟩");
    }
}
