//! The delay-sensitive generalization: `d`-contention (Section 4.2).
//!
//! ```text
//! (d)-Cont(Σ, ϱ) = Σ_u (d)-lrm(ϱ⁻¹ ∘ π_u),
//! (d)-Cont(Σ)    = max_{ϱ ∈ S_n} (d)-Cont(Σ, ϱ).
//! ```
//!
//! Lemma 6.1 bridges combinatorics and executions: the work of the schedule
//! algorithms PaDet/PaRan1 against any `d`-adversary is at most
//! `(d)-Cont(Σ)`. Theorem 4.4 shows a random list of `p` schedules
//! satisfies, for **every** `d` simultaneously,
//! `(d)-Cont(Σ) ≤ n·ln n + 8·p·d·ln(e + n/d)` with probability at least
//! `1 − e^{−n ln n · ln(7/e²) − p}`, and Corollary 4.5 extracts the
//! deterministic lists used by PaDet.

use crate::contention::maximize_over_rho;
use crate::{d_lrm, Permutation};

/// `(d)-Cont(Σ, ϱ) = Σ_u (d)-lrm(ϱ⁻¹ ∘ π_u)`.
///
/// # Panics
///
/// Panics if `sigma` is empty or the sizes disagree.
#[must_use]
pub fn d_contention_wrt(sigma: &[Permutation], rho: &Permutation, d: usize) -> usize {
    assert!(
        !sigma.is_empty(),
        "contention of an empty list is undefined"
    );
    let rho_inv = rho.inverse();
    sigma
        .iter()
        .map(|pi| {
            assert_eq!(pi.n(), rho.n(), "schedule sizes must agree");
            d_lrm(&rho_inv.compose(pi), d)
        })
        .sum()
}

/// Exact `(d)-Cont(Σ)` by enumerating all `n!` reference permutations
/// (`n ≤ 8` territory; see [`crate::contention_exact`] for the cost
/// discussion).
///
/// # Panics
///
/// Panics if `sigma` is empty.
#[must_use]
pub fn d_contention_exact(sigma: &[Permutation], d: usize) -> usize {
    assert!(
        !sigma.is_empty(),
        "contention of an empty list is undefined"
    );
    let n = sigma[0].n();
    Permutation::all(n)
        .map(|rho| d_contention_wrt(sigma, &rho, d))
        .max()
        // lint:allow(H001) — invariant: S_n always has at least the identity
        .expect("S_n is nonempty")
}

/// Result of a `d`-contention computation (value + exactness flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DContentionEstimate {
    /// The delay parameter `d` the value refers to.
    pub d: usize,
    /// The (estimated or exact) `d`-contention value.
    pub value: usize,
    /// `true` if `value` is the exact maximum over all of `S_n`.
    pub exact: bool,
}

/// Estimates `(d)-Cont(Σ)` from below by sampling reference permutations
/// and greedy swap ascent (see [`crate::contention_estimate`]).
///
/// # Panics
///
/// Panics if `sigma` is empty.
#[must_use]
pub fn d_contention_estimate(sigma: &[Permutation], d: usize, samples: usize, seed: u64) -> usize {
    maximize_over_rho(sigma, samples, seed, |s, rho| d_contention_wrt(s, rho, d))
}

/// `(d)-Cont(Σ)` with automatic exact/estimate decision (exact for
/// `n ≤ 8`).
///
/// # Panics
///
/// Panics if `sigma` is empty.
#[must_use]
pub fn d_contention_of_list(sigma: &[Permutation], d: usize) -> DContentionEstimate {
    assert!(
        !sigma.is_empty(),
        "contention of an empty list is undefined"
    );
    let n = sigma[0].n();
    if n <= 8 {
        DContentionEstimate {
            d,
            value: d_contention_exact(sigma, d),
            exact: true,
        }
    } else {
        DContentionEstimate {
            d,
            value: d_contention_estimate(sigma, d, 64, 0),
            exact: false,
        }
    }
}

/// The Theorem 4.4 threshold `n·ln n + 8·p·d·ln(e + n/d)`: a random list of
/// `p` schedules from `S_n` stays below this for every `d` simultaneously
/// with overwhelming probability.
///
/// # Panics
///
/// Panics if `n == 0`, `p == 0`, or `d == 0`.
#[must_use]
pub fn dcont_threshold(n: usize, p: usize, d: usize) -> f64 {
    assert!(n > 0 && p > 0 && d > 0, "parameters must be positive");
    let (n, p, d) = (n as f64, p as f64, d as f64);
    n * n.ln() + 8.0 * p * d * (std::f64::consts::E + n / d).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn d_one_matches_plain_contention() {
        let sigma = vec![
            Permutation::identity(5),
            Permutation::reversal(5),
            Permutation::from_image(vec![1, 3, 0, 4, 2]).unwrap(),
        ];
        assert_eq!(
            d_contention_exact(&sigma, 1),
            crate::contention::contention_exact(&sigma)
        );
    }

    #[test]
    fn large_d_saturates_at_np() {
        let sigma = vec![Permutation::identity(4), Permutation::reversal(4)];
        assert_eq!(d_contention_exact(&sigma, 4), 8);
        assert_eq!(d_contention_exact(&sigma, 100), 8);
    }

    #[test]
    fn monotone_in_d() {
        let mut rng = StdRng::seed_from_u64(17);
        let sigma: Vec<Permutation> = (0..3).map(|_| Permutation::random(6, &mut rng)).collect();
        let mut prev = 0;
        for d in 1..=6 {
            let cur = d_contention_exact(&sigma, d);
            assert!(cur >= prev, "d-contention must grow with d");
            prev = cur;
        }
        assert_eq!(prev, 18);
    }

    #[test]
    fn estimate_lower_bounds_exact() {
        let mut rng = StdRng::seed_from_u64(23);
        let sigma: Vec<Permutation> = (0..4).map(|_| Permutation::random(6, &mut rng)).collect();
        for d in [1, 2, 3] {
            let exact = d_contention_exact(&sigma, d);
            let est = d_contention_estimate(&sigma, d, 32, 7);
            assert!(est <= exact, "d={d}: estimate {est} > exact {exact}");
        }
    }

    #[test]
    fn of_list_chooses_mode_by_n() {
        let sigma_small = vec![Permutation::identity(4)];
        assert!(d_contention_of_list(&sigma_small, 2).exact);
        let mut rng = StdRng::seed_from_u64(3);
        let sigma_big: Vec<Permutation> =
            (0..2).map(|_| Permutation::random(20, &mut rng)).collect();
        assert!(!d_contention_of_list(&sigma_big, 2).exact);
    }

    #[test]
    fn threshold_is_increasing_in_d_and_p() {
        let base = dcont_threshold(100, 10, 1);
        assert!(dcont_threshold(100, 10, 5) > base);
        assert!(dcont_threshold(100, 20, 1) > base);
        assert!(base > 100.0 * (100.0f64).ln());
    }

    #[test]
    fn wrt_identity_hand_check() {
        // Σ = ⟨⟨3 1 0 2⟩⟩, ϱ = identity: (d)-Cont = (d)-lrm of the schedule.
        let sigma = vec![Permutation::from_image(vec![3, 1, 0, 2]).unwrap()];
        let id = Permutation::identity(4);
        assert_eq!(d_contention_wrt(&sigma, &id, 1), 1);
        assert_eq!(d_contention_wrt(&sigma, &id, 2), 3);
        assert_eq!(d_contention_wrt(&sigma, &id, 3), 4);
    }
}
