//! Closed-form complexity bounds from Kowalski & Shvartsman, used by the
//! experiment harness to print *measured vs. bound* tables.
//!
//! All functions take the instance parameters `(p, t, d)` as plain
//! integers and return `f64` values of the bound's dominant expression
//! (no hidden constants — the experiments report the measured/bound
//! *ratio*, whose stability across a sweep is the evidence that the shape
//! of the bound is right).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod lemma32;

pub use lemma32::{lemma32_ratio, ln_choose, ln_gamma};

use std::f64::consts::E;

fn assert_params(p: usize, t: usize, d: u64) {
    assert!(p >= 1, "need at least one processor");
    assert!(t >= 1, "need at least one task");
    assert!(d >= 1, "the delay bound is a positive integer");
}

/// The delay-sensitive lower bound of Theorems 3.1/3.4:
/// `t + p·min{d, t}·log_{d+1}(d + t)`.
///
/// Any deterministic (randomized) algorithm performs at least this much
/// worst-case (expected) work, up to constants, against a d-adversary.
///
/// ```
/// use doall_bounds::{lower_bound_work, oblivious_work};
///
/// // The bound grows with d …
/// assert!(lower_bound_work(64, 1024, 16) > lower_bound_work(64, 1024, 1));
/// // … and caps near the quadratic wall once d ≥ t (Proposition 2.2).
/// let capped = lower_bound_work(64, 1024, 1_000_000);
/// assert!(capped <= 2.0 * oblivious_work(64, 1024) + 1024.0);
/// ```
#[must_use]
pub fn lower_bound_work(p: usize, t: usize, d: u64) -> f64 {
    assert_params(p, t, d);
    let (pf, tf, df) = (p as f64, t as f64, d as f64);
    tf + pf * df.min(tf) * (df + tf).ln() / (df + 1.0).ln().max(f64::MIN_POSITIVE)
}

/// Note that `log_{d+1}(d + t)` degenerates for `d = 1` to `log₂(1 + t)`;
/// this helper exposes the logarithm itself for tables.
#[must_use]
pub fn log_base_d_plus_1(t: usize, d: u64) -> f64 {
    assert!(t >= 1 && d >= 1, "parameters must be positive");
    ((d as f64) + (t as f64)).ln() / ((d as f64) + 1.0).ln()
}

/// The DA(q) upper bound of Theorem 5.5:
/// `t·p^ε + p·min{t, d}·⌈t/d⌉^ε` for the `ε` achieved by branching
/// factor `q` with schedule contention `cont` (Theorem 5.4 machinery:
/// `ε = log_q(4·a·Cont(Σ)/q·…)`; we expose the paper's headline shape and
/// let the caller pick `ε`).
#[must_use]
pub fn da_upper_bound(p: usize, t: usize, d: u64, epsilon: f64) -> f64 {
    assert_params(p, t, d);
    assert!(epsilon > 0.0 && epsilon <= 1.0, "ε must be in (0, 1]");
    let (pf, tf, df) = (p as f64, t as f64, d as f64);
    let ceil_t_over_d = (tf / df).ceil();
    tf * pf.powf(epsilon) + pf * tf.min(df) * ceil_t_over_d.powf(epsilon)
}

/// The `ε` that DA(q) with schedule contention `cont` actually achieves in
/// the Theorem 5.4 recursion: the recursion
/// `W(p, t) ≤ a·(Cont(Σ)·W(p/q, t/q) + p·q·min{d, t/q})` solves to
/// exponent `ε = log_q(Cont(Σ)/q)` on the task term — the "price of
/// contention". With Lemma 4.1 lists (`Cont ≤ 3qH_q`) this tends to 0 as
/// `q` grows.
#[must_use]
pub fn da_epsilon(q: usize, cont: usize) -> f64 {
    assert!(q >= 2, "q must be at least 2");
    assert!(cont >= q, "contention is at least n");
    ((cont as f64) / (q as f64)).ln().max(0.0) / (q as f64).ln()
}

/// The PA upper bound of Theorem 6.2/6.3 (with `n = min{t, p}`):
/// `t·log n + p·min{t, d}·log(2 + t/d)`.
#[must_use]
pub fn pa_upper_bound(p: usize, t: usize, d: u64) -> f64 {
    assert_params(p, t, d);
    let (pf, tf, df) = (p as f64, t as f64, d as f64);
    let n = pf.min(tf);
    tf * n.ln().max(1.0) + pf * tf.min(df) * (2.0 + tf / df).ln()
}

/// The PA message bound of Theorem 6.2/6.3:
/// `t·p·log n + p²·min{t, d}·log(2 + t/d)` — exactly `p` times
/// [`pa_upper_bound`].
#[must_use]
pub fn pa_message_bound(p: usize, t: usize, d: u64) -> f64 {
    pa_upper_bound(p, t, d) * p as f64
}

/// Work of the oblivious baseline: exactly `p·t` (Section 1) — the
/// quadratic ceiling, and the optimum once `d = Ω(t)` (Proposition 2.2).
#[must_use]
pub fn oblivious_work(p: usize, t: usize) -> f64 {
    assert!(p >= 1 && t >= 1, "parameters must be positive");
    p as f64 * t as f64
}

/// The Lemma 4.1 contention bound for a list of `n` schedules over `[n]`:
/// `3·n·H_n`.
#[must_use]
pub fn cont_bound_lemma41(n: usize) -> f64 {
    assert!(n >= 1, "n must be positive");
    3.0 * n as f64 * (1..=n).map(|j| 1.0 / j as f64).sum::<f64>()
}

/// The Theorem 4.4 `d`-contention threshold for `p` random schedules over
/// `[n]`: `n·ln n + 8·p·d·ln(e + n/d)`.
#[must_use]
pub fn dcont_bound_thm44(n: usize, p: usize, d: u64) -> f64 {
    assert!(n >= 1 && p >= 1 && d >= 1, "parameters must be positive");
    let (nf, pf, df) = (n as f64, p as f64, d as f64);
    nf * nf.ln() + 8.0 * pf * df * (E + nf / df).ln()
}

/// The DA message bound of Theorem 5.6, given measured work: `p · W`.
#[must_use]
pub fn da_message_bound(p: usize, work: u64) -> f64 {
    assert!(p >= 1, "need at least one processor");
    p as f64 * work as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_grows_with_d_until_t() {
        let base = lower_bound_work(16, 256, 1);
        let mid = lower_bound_work(16, 256, 16);
        assert!(mid > base);
        // Once d ≥ t the bound caps at Θ(p·t): min{d, t} = t and the log
        // tends to 1.
        let cap = lower_bound_work(16, 256, 100_000);
        assert!(cap < 2.0 * oblivious_work(16, 256) + 256.0);
        assert!(cap > 0.5 * oblivious_work(16, 256));
    }

    #[test]
    fn lower_bound_at_least_t() {
        assert!(lower_bound_work(1, 500, 1) >= 500.0);
    }

    #[test]
    fn log_base_behaves() {
        // log₂(1 + t) at d = 1.
        assert!((log_base_d_plus_1(7, 1) - 3.0).abs() < 1e-12);
        // Large d: log tends to 1 when d dominates t.
        assert!((log_base_d_plus_1(10, 1_000_000) - 1.0).abs() < 0.01);
    }

    #[test]
    fn da_bound_interpolates() {
        // Small d: the t·p^ε term dominates; large d: approaches p·t.
        let small = da_upper_bound(64, 4096, 1, 0.3);
        let large = da_upper_bound(64, 4096, 4096, 0.3);
        assert!(small < large);
        assert!(large >= oblivious_work(64, 4096));
    }

    #[test]
    fn da_epsilon_decreases_with_q_for_lemma41_lists() {
        // ε = log_q(3H_q): decreasing in q for q ≥ 3.
        let eps = |q: usize| da_epsilon(q, cont_bound_lemma41(q).ceil() as usize);
        assert!(eps(8) < eps(4));
        assert!(eps(4) < eps(2) || eps(2) == 0.0);
    }

    #[test]
    fn pa_bound_shape() {
        let p = 64;
        let t = 4096;
        // d = 1: dominated by t·log n.
        let b1 = pa_upper_bound(p, t, 1);
        assert!(b1 < 2.0 * (t as f64) * (p as f64).ln() + 1000.0);
        // Growing d grows the bound.
        assert!(pa_upper_bound(p, t, 64) > b1);
        // Message bound is exactly p×.
        assert!((pa_message_bound(p, t, 7) - 64.0 * pa_upper_bound(p, t, 7)).abs() < 1e-9);
    }

    #[test]
    fn contention_bounds_match_perms_crate_shapes() {
        assert!((cont_bound_lemma41(1) - 3.0).abs() < 1e-12);
        assert!(cont_bound_lemma41(8) > 8.0);
        let th = dcont_bound_thm44(100, 10, 2);
        assert!(th > 100.0 * (100.0f64).ln());
    }

    #[test]
    fn da_message_bound_is_p_times_work() {
        assert!((da_message_bound(7, 100) - 700.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn zero_d_rejected() {
        let _ = lower_bound_work(1, 1, 0);
    }
}
