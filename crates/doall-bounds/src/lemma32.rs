//! Numeric verification of Lemma 3.2 (Appendix A of the paper), the
//! binomial inequality underpinning the randomized lower bound:
//!
//! ```text
//! for 1 ≤ d ≤ √u:     1/4 ≤ C(u − d, ⌊u/(d+1)⌋) / C(u, ⌊u/(d+1)⌋)
//! ```
//!
//! **Fidelity note.** The paper's display also asserts `… ≤ 1/e` from
//! above, but that constant cannot be right as stated: at `u = 16, d = 1`
//! the ratio is exactly `C(15,8)/C(16,8) = 1/2 > 1/e`. The appendix's own
//! sandwich proves `ratio ≤ (1 − d/u)^{u/(d+1)} ≤ e^{−d/(d+1)}`, which
//! approaches `1/e` only as `d → ∞`; the `1/e` in the display looks like
//! a typo for this quantity. Only the `≥ 1/4` side is ever used (it feeds
//! the pigeonhole step of Lemma 3.3), so the discrepancy is harmless to
//! the results. Our tests verify the provable sandwich
//! `1/4 ≤ ratio ≤ e^{−d/(d+1)}` over a wide grid.
//!
//! The ratio is computed in log-space via `ln Γ` to stay finite for large
//! `u`.

/// Natural log of the Gamma function (Lanczos approximation, g = 7,
/// n = 9), accurate to ~1e-13 for positive arguments — ample for
/// verifying inequalities with slack.
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_81,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln C(n, k)` via `ln Γ`.
///
/// # Panics
///
/// Panics if `k > n`.
#[must_use]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    assert!(k <= n, "C(n, k) requires k ≤ n");
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// The Lemma 3.2 ratio `C(u − d, ⌊u/(d+1)⌋) / C(u, ⌊u/(d+1)⌋)`.
///
/// # Panics
///
/// Panics unless `1 ≤ d` and `d² ≤ u` (the lemma's hypothesis) and the
/// binomials are well-formed.
#[must_use]
pub fn lemma32_ratio(u: u64, d: u64) -> f64 {
    assert!(d >= 1, "lemma 3.2 needs d ≥ 1");
    assert!(d * d <= u, "lemma 3.2 needs d ≤ √u");
    let k = u / (d + 1);
    (ln_choose(u - d, k) - ln_choose(u, k)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            fact *= f64::from(n);
            let lg = ln_gamma(f64::from(n) + 1.0);
            assert!(
                (lg - fact.ln()).abs() < 1e-9,
                "n = {n}: {lg} vs {}",
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        let expect = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expect).abs() < 1e-10);
    }

    #[test]
    fn ln_choose_small_values() {
        assert!((ln_choose(5, 2) - 10.0f64.ln()).abs() < 1e-9);
        assert!((ln_choose(10, 0)).abs() < 1e-9);
        assert!((ln_choose(10, 10)).abs() < 1e-9);
        assert!((ln_choose(52, 5) - 2_598_960.0f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn lemma32_holds_on_a_grid() {
        // 1/4 ≤ ratio ≤ e^{−d/(d+1)} for 1 ≤ d ≤ √u, checked over a wide
        // grid — the ≥ 1/4 side is exactly what Lemma 3.3's pigeonhole
        // step consumes (see the module docs for why the paper's printed
        // "≤ 1/e" upper constant is off for small d).
        for u in [16u64, 64, 100, 1024, 10_000, 1_000_000] {
            let mut d = 1u64;
            while d * d <= u {
                let r = lemma32_ratio(u, d);
                let upper = (-(d as f64) / (d as f64 + 1.0)).exp();
                assert!(r >= 0.25, "lower side fails at u={u}, d={d}: {r}");
                assert!(
                    r <= upper + 1e-12,
                    "upper side fails at u={u}, d={d}: {r} vs {upper}"
                );
                d = (d * 2).max(d + 1);
            }
        }
    }

    #[test]
    fn lemma32_paper_constant_counterexample() {
        // Documents the fidelity note: the printed "≤ 1/e" fails at
        // u = 16, d = 1, where the ratio is exactly 1/2.
        let r = lemma32_ratio(16, 1);
        assert!(
            (r - 0.5).abs() < 1e-9,
            "exact value is C(15,8)/C(16,8) = 1/2"
        );
        assert!(r > 1.0 / std::f64::consts::E);
    }

    #[test]
    fn lemma32_upper_tends_to_one_over_e() {
        // For large d the provable upper bound e^{−d/(d+1)} approaches
        // 1/e, recovering the paper's constant asymptotically.
        let r = lemma32_ratio(1_000_000, 1000);
        assert!(r > 0.25);
        assert!(r < 1.0 / std::f64::consts::E + 1e-3);
    }

    #[test]
    #[should_panic(expected = "d ≤ √u")]
    fn hypothesis_enforced() {
        let _ = lemma32_ratio(10, 4);
    }
}
