//! Message transport: the substrate that carries broadcasts between
//! worker threads, with a router thread injecting per-message delays.
//!
//! The only transport today is in-process `crossbeam` channels
//! ([`ChannelTransport`]). The surface is deliberately narrow — start,
//! one inbox per processor, a sender for outgoing envelopes, shutdown —
//! so a future socket transport can slot in behind the same seam
//! without touching the scheduler.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use doall_core::Message;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Routed envelope: a broadcast fanned out into point-to-point messages.
#[derive(Debug)]
pub struct Outgoing {
    /// Destination processor index.
    pub to: usize,
    /// The message to deliver once its injected delay elapses.
    pub msg: Message,
}

/// Delayed message held by the router.
struct Held {
    due: Instant,
    to: usize,
    msg: Message,
}

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for Held {}
impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Held {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on due time.
        other.due.cmp(&self.due)
    }
}

/// In-process channel transport: one unbounded inbox per processor and a
/// router thread holding each envelope for a uniformly random duration up
/// to `max_delay` — the wall-clock analogue of the d-adversary.
#[derive(Debug)]
pub struct ChannelTransport {
    outgoing: Sender<Outgoing>,
    inboxes: Vec<Option<Receiver<Message>>>,
    router: JoinHandle<()>,
}

impl ChannelTransport {
    /// Starts the router thread for `p` processors. `done` is the run's
    /// completion flag: once it is set the router flushes its backlog
    /// immediately (so laggards can still learn completion) and exits.
    #[must_use]
    pub fn start(p: usize, max_delay: Duration, seed: u64, done: Arc<AtomicBool>) -> Self {
        let (to_router, router_rx) = unbounded::<Outgoing>();
        let mut inbox_tx: Vec<Sender<Message>> = Vec::with_capacity(p);
        let mut inboxes: Vec<Option<Receiver<Message>>> = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded::<Message>();
            inbox_tx.push(tx);
            inboxes.push(Some(rx));
        }
        let router = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut held: BinaryHeap<Held> = BinaryHeap::new();
            loop {
                // Forward everything due.
                let now = Instant::now();
                while held.peek().is_some_and(|h| h.due <= now) {
                    // lint:allow(H001) — invariant: peek() just returned Some
                    let h = held.pop().expect("peeked");
                    let _ = inbox_tx[h.to].send(h.msg);
                }
                if done.load(Ordering::Acquire) {
                    // Drain: deliver the backlog immediately so laggards
                    // can still learn completion, then exit.
                    while let Some(h) = held.pop() {
                        let _ = inbox_tx[h.to].send(h.msg);
                    }
                    while let Ok(out) = router_rx.try_recv() {
                        let _ = inbox_tx[out.to].send(out.msg);
                    }
                    break;
                }
                let wait = held
                    .peek()
                    .map_or(Duration::from_millis(1), |h| {
                        h.due.saturating_duration_since(Instant::now())
                    })
                    .min(Duration::from_millis(1));
                match router_rx.recv_timeout(wait) {
                    Ok(out) => {
                        let delay = if max_delay.is_zero() {
                            Duration::ZERO
                        } else {
                            max_delay.mul_f64(rng.random::<f64>())
                        };
                        held.push(Held {
                            due: Instant::now() + delay,
                            to: out.to,
                            msg: out.msg,
                        });
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        });
        Self {
            outgoing: to_router,
            inboxes,
            router,
        }
    }

    /// A sender for outgoing envelopes; clone one per worker.
    #[must_use]
    pub fn outgoing(&self) -> Sender<Outgoing> {
        self.outgoing.clone()
    }

    /// Takes processor `pid`'s inbox receiver. Each inbox can be taken
    /// exactly once — the receiver moves into that processor's worker.
    ///
    /// # Panics
    ///
    /// Panics if the inbox was already taken or `pid` is out of range.
    #[must_use]
    pub fn take_inbox(&mut self, pid: usize) -> Receiver<Message> {
        self.inboxes[pid]
            .take()
            // lint:allow(H001) — documented `# Panics` contract: one take per processor
            .expect("one inbox receiver per processor")
    }

    /// Drops the transport's own sender and joins the router thread.
    /// Call after every worker has exited (their sender clones are gone),
    /// so the router observes either the completion flag or disconnection.
    ///
    /// # Panics
    ///
    /// Panics if the router thread panicked.
    pub fn shutdown(self) {
        drop(self.outgoing);
        // lint:allow(H001) — documented `# Panics` contract: router panics propagate
        self.router.join().expect("router panicked");
    }
}
