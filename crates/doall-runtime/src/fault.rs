//! Crash-failure model: validated per-processor step budgets, the
//! fraction-of-`p` bridge the sweep grid's `crash:<pct>` axis uses, and
//! the engine-side accounting of what crashed processors cost a run.

use std::fmt;

/// Construction-time rejection of an invalid runtime setup.
///
/// Historically these conditions panicked mid-run (or not at all — a
/// crash *fraction* outside `[0, 1]` silently saturated); the builder
/// now refuses them before any thread is spawned.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// No processors: a run needs `p ≥ 1` state machines.
    NoProcessors,
    /// The state-machine list does not match the instance's `p`.
    ProcessCount {
        /// Processors in the instance.
        expected: usize,
        /// State machines supplied.
        got: usize,
    },
    /// A crash fraction outside `[0, 1]` (or NaN).
    CrashFraction(f64),
    /// A nonempty crash-budget list whose length is not `p`.
    CrashBudgetLength {
        /// Processors in the instance.
        expected: usize,
        /// Budget entries supplied.
        got: usize,
    },
    /// Every processor was scheduled to crash.
    AllCrashed,
    /// Both an explicit crash-budget list and a crash fraction were given.
    CrashConflict,
    /// A nonempty pace-override list whose length is not `p`.
    PaceLength {
        /// Processors in the instance.
        expected: usize,
        /// Override entries supplied.
        got: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoProcessors => write!(f, "runtime needs at least one processor (p = 0)"),
            Self::ProcessCount { expected, got } => write!(
                f,
                "need exactly one state machine per processor (instance has {expected}, got {got})"
            ),
            Self::CrashFraction(x) => {
                write!(f, "crash fraction {x} is outside [0, 1]")
            }
            Self::CrashBudgetLength { expected, got } => write!(
                f,
                "crash budget list must cover every processor (instance has {expected}, got {got})"
            ),
            Self::AllCrashed => write!(f, "at least one processor must survive"),
            Self::CrashConflict => write!(
                f,
                "give either explicit crash budgets or a crash fraction, not both"
            ),
            Self::PaceLength { expected, got } => write!(
                f,
                "pace override list must cover every processor (instance has {expected}, got {got})"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A validated per-processor crash schedule: processor `i` stops stepping
/// after `budget(i)` steps (`None` = never). The crash-failure model
/// requires at least one survivor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashSchedule(Vec<Option<u64>>);

impl CrashSchedule {
    /// The empty schedule: nobody crashes.
    #[must_use]
    pub fn none() -> Self {
        Self(Vec::new())
    }

    /// Validates an explicit budget list against `p`. An empty list means
    /// "nobody crashes"; a nonempty one must cover every processor and
    /// leave at least one `None`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::CrashBudgetLength`] on a length mismatch,
    /// [`RuntimeError::AllCrashed`] if no processor survives.
    pub fn from_budgets(budgets: Vec<Option<u64>>, p: usize) -> Result<Self, RuntimeError> {
        if budgets.is_empty() {
            return Ok(Self::none());
        }
        if budgets.len() != p {
            return Err(RuntimeError::CrashBudgetLength {
                expected: p,
                got: budgets.len(),
            });
        }
        if budgets.iter().all(Option::is_some) {
            return Err(RuntimeError::AllCrashed);
        }
        Ok(Self(budgets))
    }

    /// Derives a schedule crashing `round(fraction · p)` processors
    /// (capped at `p − 1`: processor 0 always survives). The crashed
    /// processors are the highest-indexed ones, with staggered budgets
    /// `2, 4, 6, …` so the failures land at distinct points of the run —
    /// the wall-clock analogue of the sweep grid's `crash:<pct>` axis.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoProcessors`] if `p == 0`;
    /// [`RuntimeError::CrashFraction`] if `fraction` is NaN or outside
    /// `[0, 1]`.
    pub fn from_fraction(p: usize, fraction: f64) -> Result<Self, RuntimeError> {
        if p == 0 {
            return Err(RuntimeError::NoProcessors);
        }
        if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
            return Err(RuntimeError::CrashFraction(fraction));
        }
        // Round half-up, like the simulator's crash adversary, capped so
        // at least one processor survives.
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        #[allow(clippy::cast_possible_truncation)]
        let count = (((fraction * p as f64) + 0.5).floor() as usize).min(p - 1);
        if count == 0 {
            return Ok(Self::none());
        }
        let mut budgets = vec![None; p];
        for (rank, budget) in budgets.iter_mut().skip(p - count).enumerate() {
            *budget = Some(2 * (rank as u64 + 1));
        }
        Ok(Self(budgets))
    }

    /// Processor `pid`'s step budget (`None` = never crashes).
    #[must_use]
    pub fn budget(&self, pid: usize) -> Option<u64> {
        self.0.get(pid).copied().unwrap_or(None)
    }

    /// Whether any processor is scheduled to crash.
    #[must_use]
    pub fn any(&self) -> bool {
        self.0.iter().any(Option::is_some)
    }
}

/// Engine-side accounting of a threaded run — never part of the
/// `RunReport` (which must describe the algorithm, not the harness).
/// Exposed for tests and diagnostics, mirroring the sweep engine's
/// `run_cells_with_stats` pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Messages drained (and dropped) by crashed workers. A crashed
    /// processor is an infinitely delayed one, so its inbox keeps
    /// receiving; draining it bounds the channel's memory instead of
    /// letting the router grow it for the rest of the run.
    pub crashed_drained: u64,
    /// Largest batch a crashed worker drained in one wake — an upper
    /// bound on how big its inbox ever got after the crash.
    pub max_crashed_backlog: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_zero_crashes_nobody() {
        let s = CrashSchedule::from_fraction(4, 0.0).unwrap();
        assert_eq!(s, CrashSchedule::none());
        assert!(!s.any());
    }

    #[test]
    fn fraction_one_spares_processor_zero() {
        let s = CrashSchedule::from_fraction(4, 1.0).unwrap();
        assert_eq!(s.budget(0), None, "processor 0 always survives");
        for pid in 1..4 {
            assert!(s.budget(pid).is_some(), "pid {pid} should crash");
        }
    }

    #[test]
    fn fraction_rounds_half_up() {
        // 10% of 5 = 0.5 → rounds up to one crash (the old truncating
        // behaviour crashed nobody).
        let s = CrashSchedule::from_fraction(5, 0.10).unwrap();
        assert_eq!((0..5).filter(|&i| s.budget(i).is_some()).count(), 1);
    }

    #[test]
    fn out_of_range_fractions_are_rejected() {
        for bad in [-0.01, 1.01, f64::NAN, f64::INFINITY] {
            let err = CrashSchedule::from_fraction(4, bad).unwrap_err();
            assert!(
                matches!(err, RuntimeError::CrashFraction(_)),
                "{bad} gave {err}"
            );
        }
    }

    #[test]
    fn zero_processors_is_rejected() {
        assert_eq!(
            CrashSchedule::from_fraction(0, 0.5).unwrap_err(),
            RuntimeError::NoProcessors
        );
    }

    #[test]
    fn explicit_budgets_validate_length_and_survivors() {
        assert!(matches!(
            CrashSchedule::from_budgets(vec![None, Some(1)], 3).unwrap_err(),
            RuntimeError::CrashBudgetLength {
                expected: 3,
                got: 2
            }
        ));
        assert_eq!(
            CrashSchedule::from_budgets(vec![Some(1), Some(2)], 2).unwrap_err(),
            RuntimeError::AllCrashed
        );
        let ok = CrashSchedule::from_budgets(vec![None, Some(2)], 2).unwrap();
        assert_eq!(ok.budget(1), Some(2));
        assert!(ok.any());
    }
}
