//! Real-concurrency runner: executes the same Do-All state machines that
//! the discrete-event simulator drives, but on OS threads connected by
//! `crossbeam` channels, with a router thread injecting per-message
//! delays.
//!
//! Purpose (DESIGN.md §2): the algorithms are pure state machines, so they
//! must behave correctly on *any* substrate that provides reliable,
//! possibly-delayed message delivery. This crate validates that claim
//! under genuine parallelism — preemption, cache effects, real race
//! timings — none of which the algorithms may rely on or be broken by.
//!
//! Complexity *measurement* stays in the simulator (wall-clock
//! nondeterminism makes exact step accounting meaningless here); this
//! runner reports the same [`RunReport`] shape with best-effort counts, and
//! its `completed` flag is checked against ground truth collected from the
//! actual task executions.
//!
//! # Module map
//!
//! - `scheduler` *(private)* — the per-processor worker loop and run
//!   orchestration: stepping state machines, executing task bodies,
//!   joining counts into a [`RunReport`].
//! - [`transport`] — message delivery between workers. Today an
//!   in-process channel router ([`transport::ChannelTransport`]); the
//!   narrow surface is the seam for a future socket transport.
//! - [`fault`] — the crash-failure model: validated step budgets
//!   ([`fault::CrashSchedule`]), the `crash:<pct>`-style fraction bridge,
//!   and engine-side accounting ([`RuntimeStats`]).
//!
//! The entry point is the builder-style [`Runtime`] facade:
//!
//! ```
//! use doall_runtime::{Runtime, RuntimeConfig};
//! use doall_core::Instance;
//! # use doall_core::{DoAllProcess, Message, ProcId, StepOutcome, TaskId};
//! # #[derive(Clone)]
//! # struct Solo(usize, usize);
//! # impl DoAllProcess for Solo {
//! #     fn pid(&self) -> ProcId { ProcId::new(0) }
//! #     fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
//! #         if self.0 < self.1 { self.0 += 1; StepOutcome::perform(TaskId::new(self.0 - 1)) }
//! #         else { StepOutcome::internal() }
//! #     }
//! #     fn knows_all_done(&self) -> bool { self.0 >= self.1 }
//! #     fn clone_box(&self) -> Box<dyn DoAllProcess> { Box::new(self.clone()) }
//! # }
//! let instance = Instance::new(1, 8).unwrap();
//! let procs = vec![Box::new(Solo(0, 8)) as Box<dyn DoAllProcess>];
//! let outcome = Runtime::builder(RuntimeConfig::default())
//!     .run(instance, procs)
//!     .expect("valid setup");
//! assert!(outcome.report.completed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
mod scheduler;
pub mod transport;

pub use fault::{CrashSchedule, RuntimeError, RuntimeStats};

use doall_core::{DoAllProcess, Instance, RunReport, TaskId};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a threaded run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Maximum injected message delay. Each point-to-point message is held
    /// by the router for a uniformly random duration up to this bound —
    /// the wall-clock analogue of the d-adversary.
    pub max_delay: Duration,
    /// RNG seed for the delay draws.
    pub seed: u64,
    /// Wall-clock cutoff after which the run is abandoned
    /// (`completed == false`).
    pub timeout: Duration,
    /// Optional per-processor step budgets: processor `i` stops stepping
    /// after `crash_after_steps[i]` steps (`None` = never). At least one
    /// processor must be uncrashed; this is the crash-failure model.
    pub crash_after_steps: Vec<Option<u64>>,
    /// Pause between consecutive local steps of each worker. Zero (the
    /// default) lets threads run at full speed — a fast worker may then
    /// finish before its peers are even scheduled, which is legal
    /// asynchrony but makes demonstrations one-sided; a small pace (tens
    /// of microseconds) produces genuinely interleaved executions.
    pub step_interval: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            max_delay: Duration::from_micros(500),
            seed: 0,
            timeout: Duration::from_secs(10),
            crash_after_steps: Vec::new(),
            step_interval: Duration::ZERO,
        }
    }
}

/// The body of an idempotent task: executed by whichever worker thread
/// performs it (possibly several times, possibly concurrently — the
/// Do-All contract). Must be idempotent and thread-safe.
pub type TaskBody = dyn Fn(TaskId) + Send + Sync;

/// What a threaded run produced: the algorithm-level [`RunReport`] plus
/// the harness's own accounting ([`RuntimeStats`]).
#[derive(Debug)]
pub struct RunOutcome {
    /// Work / message counts, completion, and elapsed time (µs in
    /// `sigma`) — the same shape the simulator reports.
    pub report: RunReport,
    /// Engine-side accounting (crashed-inbox draining), never part of
    /// the report.
    pub stats: RuntimeStats,
}

/// A fully validated threaded run, ready to execute. Build one with
/// [`Runtime::builder`]; every invalid configuration is rejected with a
/// [`RuntimeError`] before any thread is spawned.
pub struct Runtime {
    instance: Instance,
    procs: Vec<Box<dyn DoAllProcess>>,
    config: RuntimeConfig,
    body: Arc<TaskBody>,
    schedule: CrashSchedule,
    pace_overrides: Vec<Option<Duration>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("instance", &self.instance)
            .field("config", &self.config)
            .field("schedule", &self.schedule)
            .field("pace_overrides", &self.pace_overrides)
            .finish_non_exhaustive()
    }
}

impl Runtime {
    /// Starts building a run from `config`. Chain [`RuntimeBuilder`]
    /// methods, then call [`RuntimeBuilder::run`] (or
    /// [`RuntimeBuilder::build`] + [`Runtime::run`]).
    #[must_use]
    pub fn builder(config: RuntimeConfig) -> RuntimeBuilder {
        RuntimeBuilder {
            config,
            body: Arc::new(|_| {}),
            crash_fraction: None,
            pace_overrides: Vec::new(),
        }
    }

    /// Executes the validated run to completion (or timeout).
    #[must_use]
    pub fn run(self) -> RunOutcome {
        let (report, stats) = scheduler::execute(
            self.instance,
            self.procs,
            &self.config,
            &self.body,
            &self.schedule,
            &self.pace_overrides,
        );
        RunOutcome { report, stats }
    }
}

/// Builder for [`Runtime`]: optional task body, crash fraction, and
/// per-processor pacing on top of a [`RuntimeConfig`].
#[derive(Clone)]
pub struct RuntimeBuilder {
    config: RuntimeConfig,
    body: Arc<TaskBody>,
    crash_fraction: Option<f64>,
    pace_overrides: Vec<Option<Duration>>,
}

impl std::fmt::Debug for RuntimeBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeBuilder")
            .field("config", &self.config)
            .field("crash_fraction", &self.crash_fraction)
            .field("pace_overrides", &self.pace_overrides)
            .finish_non_exhaustive()
    }
}

impl RuntimeBuilder {
    /// Sets the task body executed each time a state machine performs a
    /// task — the actual (idempotent) work unit, the paper's abstraction
    /// made concrete. Defaults to a no-op (bookkeeping only).
    #[must_use]
    pub fn tasks(mut self, body: Arc<TaskBody>) -> Self {
        self.body = body;
        self
    }

    /// Crashes `round(fraction · p)` processors (capped at `p − 1`) with
    /// staggered step budgets — the wall-clock analogue of the sweep
    /// grid's `crash:<pct>` axis. Mutually exclusive with an explicit
    /// `crash_after_steps` list in the config; the fraction is validated
    /// at [`Self::build`] time, not mid-run.
    #[must_use]
    pub fn crash_fraction(mut self, fraction: f64) -> Self {
        self.crash_fraction = Some(fraction);
        self
    }

    /// Per-processor overrides of the config's `step_interval` (`None`
    /// entries keep the default). This is how stragglers run at real
    /// concurrency: a slowed processor gets a proportionally longer pace.
    #[must_use]
    pub fn pace_overrides(mut self, overrides: Vec<Option<Duration>>) -> Self {
        self.pace_overrides = overrides;
        self
    }

    /// Validates the whole setup against `instance` and `procs`.
    ///
    /// # Errors
    ///
    /// - [`RuntimeError::NoProcessors`] if `procs` is empty (`p = 0`);
    /// - [`RuntimeError::ProcessCount`] if `procs.len()` ≠ `p`;
    /// - [`RuntimeError::CrashFraction`] if a crash fraction is NaN or
    ///   outside `[0, 1]`;
    /// - [`RuntimeError::CrashConflict`] if both a fraction and explicit
    ///   budgets were given;
    /// - [`RuntimeError::CrashBudgetLength`] / [`RuntimeError::AllCrashed`]
    ///   for an ill-formed explicit budget list;
    /// - [`RuntimeError::PaceLength`] if a nonempty pace-override list
    ///   does not cover every processor.
    pub fn build(
        self,
        instance: Instance,
        procs: Vec<Box<dyn DoAllProcess>>,
    ) -> Result<Runtime, RuntimeError> {
        let p = instance.processors();
        if procs.is_empty() {
            return Err(RuntimeError::NoProcessors);
        }
        if procs.len() != p {
            return Err(RuntimeError::ProcessCount {
                expected: p,
                got: procs.len(),
            });
        }
        let schedule = match self.crash_fraction {
            Some(fraction) => {
                if !self.config.crash_after_steps.is_empty() {
                    return Err(RuntimeError::CrashConflict);
                }
                CrashSchedule::from_fraction(p, fraction)?
            }
            None => CrashSchedule::from_budgets(self.config.crash_after_steps.clone(), p)?,
        };
        if !self.pace_overrides.is_empty() && self.pace_overrides.len() != p {
            return Err(RuntimeError::PaceLength {
                expected: p,
                got: self.pace_overrides.len(),
            });
        }
        Ok(Runtime {
            instance,
            procs,
            config: self.config,
            body: self.body,
            schedule,
            pace_overrides: self.pace_overrides,
        })
    }

    /// [`Self::build`] + [`Runtime::run`] in one call.
    ///
    /// # Errors
    ///
    /// Same as [`Self::build`].
    pub fn run(
        self,
        instance: Instance,
        procs: Vec<Box<dyn DoAllProcess>>,
    ) -> Result<RunOutcome, RuntimeError> {
        Ok(self.build(instance, procs)?.run())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doall_core::{BitSet, Message, ProcId, StepOutcome, TaskId};
    use std::sync::atomic::Ordering;

    /// Deterministic sweep used to smoke-test the plumbing without
    /// depending on the algorithms crate (those tests live in /tests).
    #[derive(Clone)]
    struct Sweep {
        pid: ProcId,
        next: usize,
        t: usize,
    }

    impl DoAllProcess for Sweep {
        fn pid(&self) -> ProcId {
            self.pid
        }
        fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
            if self.next < self.t {
                self.next += 1;
                StepOutcome::perform(TaskId::new(self.next - 1))
            } else {
                StepOutcome::internal()
            }
        }
        fn knows_all_done(&self) -> bool {
            self.next >= self.t
        }
        fn clone_box(&self) -> Box<dyn DoAllProcess> {
            Box::new(self.clone())
        }
    }

    fn sweeps(p: usize, t: usize) -> Vec<Box<dyn DoAllProcess>> {
        (0..p)
            .map(|i| {
                Box::new(Sweep {
                    pid: ProcId::new(i),
                    next: 0,
                    t,
                }) as Box<dyn DoAllProcess>
            })
            .collect()
    }

    #[test]
    fn solo_sweep_completes() {
        let instance = Instance::new(1, 50).unwrap();
        let outcome = Runtime::builder(RuntimeConfig::default())
            .run(instance, sweeps(1, 50))
            .unwrap();
        assert!(outcome.report.completed);
        assert!(outcome.report.work >= 50);
        assert_eq!(outcome.report.messages, 0);
    }

    #[test]
    fn parallel_sweeps_complete() {
        let instance = Instance::new(4, 30).unwrap();
        let outcome = Runtime::builder(RuntimeConfig::default())
            .run(instance, sweeps(4, 30))
            .unwrap();
        assert!(outcome.report.completed);
        assert!(outcome.report.work >= 30);
        assert_eq!(outcome.report.work_per_processor.len(), 4);
    }

    #[test]
    fn task_body_runs_for_every_performance() {
        use std::sync::atomic::AtomicU64;
        let instance = Instance::new(2, 20).unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        let body = {
            let counter = Arc::clone(&counter);
            Arc::new(move |_task: TaskId| {
                counter.fetch_add(1, Ordering::Relaxed);
            })
        };
        let outcome = Runtime::builder(RuntimeConfig::default())
            .tasks(body)
            .run(instance, sweeps(2, 20))
            .unwrap();
        assert!(outcome.report.completed);
        // Every performing step ran the body; sweeps perform once per step
        // until their own completion.
        assert!(counter.load(Ordering::Relaxed) >= 20);
        assert!(counter.load(Ordering::Relaxed) <= outcome.report.work);
    }

    #[test]
    fn timeout_reports_incomplete() {
        /// Never finishes.
        #[derive(Clone)]
        struct Idler;
        impl DoAllProcess for Idler {
            fn pid(&self) -> ProcId {
                ProcId::new(0)
            }
            fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
                std::thread::sleep(Duration::from_millis(1));
                StepOutcome::internal()
            }
            fn knows_all_done(&self) -> bool {
                false
            }
            fn clone_box(&self) -> Box<dyn DoAllProcess> {
                Box::new(Idler)
            }
        }
        let instance = Instance::new(1, 1).unwrap();
        let config = RuntimeConfig {
            timeout: Duration::from_millis(50),
            ..Default::default()
        };
        let outcome = Runtime::builder(config)
            .run(instance, vec![Box::new(Idler)])
            .unwrap();
        assert!(!outcome.report.completed);
        assert_eq!(outcome.report.sigma, None);
    }

    /// Performs its tasks one per step and broadcasts every performance —
    /// the worst case for a crashed peer's inbox.
    #[derive(Clone)]
    struct ChattySweep {
        pid: ProcId,
        next: usize,
        t: usize,
    }

    impl DoAllProcess for ChattySweep {
        fn pid(&self) -> ProcId {
            self.pid
        }
        fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
            if self.next < self.t {
                self.next += 1;
                let mut bits = BitSet::new(self.t);
                for z in 0..self.next {
                    bits.insert(z);
                }
                StepOutcome::perform_and_broadcast(TaskId::new(self.next - 1), bits)
            } else {
                StepOutcome::internal()
            }
        }
        fn knows_all_done(&self) -> bool {
            self.next >= self.t
        }
        fn clone_box(&self) -> Box<dyn DoAllProcess> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn crashed_worker_drains_its_inbox() {
        // Regression: a crashed worker used to sleep without ever reading
        // its receiver, so the router kept filling the unbounded channel
        // for the rest of the run. Post-fix the crashed branch drains and
        // drops each wake, keeping the backlog bounded by one wake's
        // arrivals instead of the whole run's traffic.
        let t = 300;
        let instance = Instance::new(2, t).unwrap();
        let procs: Vec<Box<dyn DoAllProcess>> = vec![
            Box::new(ChattySweep {
                pid: ProcId::new(0),
                next: 0,
                t,
            }),
            Box::new(ChattySweep {
                pid: ProcId::new(1),
                next: 0,
                t,
            }),
        ];
        let config = RuntimeConfig {
            max_delay: Duration::ZERO,
            // Processor 1 crashes before its first step; processor 0 does
            // everything, broadcasting ~t messages at its crashed peer.
            crash_after_steps: vec![None, Some(0)],
            // Pace the survivor so the run spans many of the crashed
            // worker's 1 ms wake-ups.
            step_interval: Duration::from_micros(100),
            ..Default::default()
        };
        let RunOutcome { report, stats } = Runtime::builder(config).run(instance, procs).unwrap();
        assert!(report.completed, "{report}");
        assert!(
            stats.crashed_drained > 0,
            "the crashed worker must drain its inbox: {stats:?}"
        );
        assert!(
            stats.crashed_drained <= report.messages,
            "cannot drain more than was ever sent: {stats:?} vs {report}"
        );
        assert!(stats.max_crashed_backlog <= stats.crashed_drained);
        // A run without crashes drains nothing.
        let instance = Instance::new(2, 10).unwrap();
        let clean = Runtime::builder(RuntimeConfig::default())
            .run(instance, sweeps(2, 10))
            .unwrap();
        assert_eq!(clean.stats, RuntimeStats::default());
    }

    #[test]
    fn crashing_everyone_is_rejected() {
        let instance = Instance::new(2, 2).unwrap();
        let config = RuntimeConfig {
            crash_after_steps: vec![Some(1), Some(1)],
            ..Default::default()
        };
        let err = Runtime::builder(config)
            .run(instance, sweeps(2, 2))
            .unwrap_err();
        assert_eq!(err, RuntimeError::AllCrashed);
        assert_eq!(err.to_string(), "at least one processor must survive");
    }

    #[test]
    fn empty_proc_list_is_rejected_not_a_panic() {
        // The `p = 0` edge of the validation bugfix: an empty state-machine
        // list used to die on an internal assert; now it is a typed error.
        let instance = Instance::new(2, 2).unwrap();
        let err = Runtime::builder(RuntimeConfig::default())
            .run(instance, Vec::new())
            .unwrap_err();
        assert_eq!(err, RuntimeError::NoProcessors);
    }

    #[test]
    fn wrong_proc_count_is_rejected() {
        let instance = Instance::new(3, 2).unwrap();
        let err = Runtime::builder(RuntimeConfig::default())
            .run(instance, sweeps(2, 2))
            .unwrap_err();
        assert_eq!(
            err,
            RuntimeError::ProcessCount {
                expected: 3,
                got: 2
            }
        );
    }

    #[test]
    fn out_of_range_crash_fraction_is_rejected() {
        let instance = Instance::new(4, 8).unwrap();
        for bad in [-0.5, 1.5, f64::NAN] {
            let err = Runtime::builder(RuntimeConfig::default())
                .crash_fraction(bad)
                .run(instance, sweeps(4, 8))
                .unwrap_err();
            assert!(
                matches!(err, RuntimeError::CrashFraction(_)),
                "fraction {bad} gave {err}"
            );
        }
        // And a legal fraction still completes (processor 0 survives).
        let outcome = Runtime::builder(RuntimeConfig::default())
            .crash_fraction(0.5)
            .run(instance, sweeps(4, 8))
            .unwrap();
        assert!(outcome.report.completed);
    }

    #[test]
    fn crash_fraction_conflicts_with_explicit_budgets() {
        let instance = Instance::new(2, 2).unwrap();
        let config = RuntimeConfig {
            crash_after_steps: vec![None, Some(1)],
            ..Default::default()
        };
        let err = Runtime::builder(config)
            .crash_fraction(0.5)
            .run(instance, sweeps(2, 2))
            .unwrap_err();
        assert_eq!(err, RuntimeError::CrashConflict);
    }

    #[test]
    fn pace_overrides_must_cover_every_processor() {
        let instance = Instance::new(3, 3).unwrap();
        let err = Runtime::builder(RuntimeConfig::default())
            .pace_overrides(vec![Some(Duration::from_micros(10))])
            .run(instance, sweeps(3, 3))
            .unwrap_err();
        assert_eq!(
            err,
            RuntimeError::PaceLength {
                expected: 3,
                got: 1
            }
        );
    }
}
