//! Real-concurrency runner: executes the same Do-All state machines that
//! the discrete-event simulator drives, but on OS threads connected by
//! `crossbeam` channels, with a router thread injecting per-message
//! delays.
//!
//! Purpose (DESIGN.md §2): the algorithms are pure state machines, so they
//! must behave correctly on *any* substrate that provides reliable,
//! possibly-delayed message delivery. This crate validates that claim
//! under genuine parallelism — preemption, cache effects, real race
//! timings — none of which the algorithms may rely on or be broken by.
//!
//! Complexity *measurement* stays in the simulator (wall-clock
//! nondeterminism makes exact step accounting meaningless here); this
//! runner reports the same [`RunReport`] shape with best-effort counts, and
//! its `completed` flag is checked against ground truth collected from the
//! actual task executions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use doall_core::{BitSet, DoAllProcess, Instance, Message, ProcId, RunReport, TaskId};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a threaded run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Maximum injected message delay. Each point-to-point message is held
    /// by the router for a uniformly random duration up to this bound —
    /// the wall-clock analogue of the d-adversary.
    pub max_delay: Duration,
    /// RNG seed for the delay draws.
    pub seed: u64,
    /// Wall-clock cutoff after which the run is abandoned
    /// (`completed == false`).
    pub timeout: Duration,
    /// Optional per-processor step budgets: processor `i` stops stepping
    /// after `crash_after_steps[i]` steps (`None` = never). At least one
    /// processor must be uncrashed; this is the crash-failure model.
    pub crash_after_steps: Vec<Option<u64>>,
    /// Pause between consecutive local steps of each worker. Zero (the
    /// default) lets threads run at full speed — a fast worker may then
    /// finish before its peers are even scheduled, which is legal
    /// asynchrony but makes demonstrations one-sided; a small pace (tens
    /// of microseconds) produces genuinely interleaved executions.
    pub step_interval: Duration,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            max_delay: Duration::from_micros(500),
            seed: 0,
            timeout: Duration::from_secs(10),
            crash_after_steps: Vec::new(),
            step_interval: Duration::ZERO,
        }
    }
}

/// Routed envelope: a broadcast fanned out into point-to-point messages.
struct Outgoing {
    to: usize,
    msg: Message,
}

/// Delayed message held by the router.
struct Held {
    due: Instant,
    to: usize,
    msg: Message,
}

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due
    }
}
impl Eq for Held {}
impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Held {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on due time.
        other.due.cmp(&self.due)
    }
}

/// The body of an idempotent task: executed by whichever worker thread
/// performs it (possibly several times, possibly concurrently — the
/// Do-All contract). Must be idempotent and thread-safe.
pub type TaskBody = dyn Fn(TaskId) + Send + Sync;

/// Engine-side accounting of a threaded run — never part of the
/// [`RunReport`] (which must describe the algorithm, not the harness).
/// Exposed for tests and diagnostics, mirroring the sweep engine's
/// `run_cells_with_stats` pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Messages drained (and dropped) by crashed workers. A crashed
    /// processor is an infinitely delayed one, so its inbox keeps
    /// receiving; draining it bounds the channel's memory instead of
    /// letting the router grow it for the rest of the run.
    pub crashed_drained: u64,
    /// Largest batch a crashed worker drained in one wake — an upper
    /// bound on how big its inbox ever got after the crash.
    pub max_crashed_backlog: u64,
}

/// Runs `procs` on OS threads with a no-op task body — bookkeeping only.
/// See [`run_threaded_with_tasks`] to execute real work per task.
///
/// # Panics
///
/// Panics under the same conditions as [`run_threaded_with_tasks`].
#[must_use]
pub fn run_threaded(
    instance: Instance,
    procs: Vec<Box<dyn DoAllProcess>>,
    config: &RuntimeConfig,
) -> RunReport {
    run_threaded_with_tasks(instance, procs, config, Arc::new(|_| {}))
}

/// Runs `procs` (one per processor of `instance`) on OS threads until some
/// processor knows all tasks are done, a crash budget stops everyone, or
/// the timeout fires. Each time a state machine performs task `z`, the
/// worker thread first executes `body(z)` — the actual (idempotent) work
/// unit, the paper's abstraction made concrete.
///
/// Returns a [`RunReport`] whose `work` / `messages` are the actual step
/// and point-to-point message counts (nondeterministic across runs —
/// schedule-dependent, as real executions are), whose `sigma` is the
/// elapsed wall-clock in microseconds at completion, and whose
/// `completed` is checked against the ground truth of performed tasks.
///
/// # Panics
///
/// Panics if `procs.len() != instance.processors()`, or if
/// `crash_after_steps` (when nonempty) has the wrong length or crashes
/// everyone.
#[must_use]
pub fn run_threaded_with_tasks(
    instance: Instance,
    procs: Vec<Box<dyn DoAllProcess>>,
    config: &RuntimeConfig,
    body: Arc<TaskBody>,
) -> RunReport {
    run_threaded_with_stats(instance, procs, config, body).0
}

/// [`run_threaded_with_tasks`] plus the harness's own accounting
/// ([`RuntimeStats`]) — the probe the crashed-inbox regression test uses
/// to assert that a crashed processor's channel stays bounded.
///
/// # Panics
///
/// Panics under the same conditions as [`run_threaded_with_tasks`].
#[must_use]
pub fn run_threaded_with_stats(
    instance: Instance,
    procs: Vec<Box<dyn DoAllProcess>>,
    config: &RuntimeConfig,
    body: Arc<TaskBody>,
) -> (RunReport, RuntimeStats) {
    let p = instance.processors();
    let t = instance.tasks();
    assert_eq!(
        procs.len(),
        p,
        "need exactly one state machine per processor"
    );
    if !config.crash_after_steps.is_empty() {
        assert_eq!(
            config.crash_after_steps.len(),
            p,
            "crash budget list must cover every processor"
        );
        assert!(
            config.crash_after_steps.iter().any(Option::is_none),
            "at least one processor must survive"
        );
    }

    let done = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + config.timeout;
    let start = Instant::now();
    let ground_truth = Arc::new(Mutex::new(BitSet::new(t)));

    // Per-processor delivery channels and the shared router channel.
    let (to_router, router_rx) = unbounded::<Outgoing>();
    let mut inbox_tx: Vec<Sender<Message>> = Vec::with_capacity(p);
    let mut inbox_rx: Vec<Option<Receiver<Message>>> = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Message>();
        inbox_tx.push(tx);
        inbox_rx.push(Some(rx));
    }

    // Router: holds messages for their injected delay, then forwards.
    let router = {
        let done = Arc::clone(&done);
        let inbox_tx = inbox_tx.clone();
        let max_delay = config.max_delay;
        let seed = config.seed;
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut held: BinaryHeap<Held> = BinaryHeap::new();
            loop {
                // Forward everything due.
                let now = Instant::now();
                while held.peek().is_some_and(|h| h.due <= now) {
                    let h = held.pop().expect("peeked");
                    let _ = inbox_tx[h.to].send(h.msg);
                }
                if done.load(Ordering::Acquire) {
                    // Drain: deliver the backlog immediately so laggards
                    // can still learn completion, then exit.
                    while let Some(h) = held.pop() {
                        let _ = inbox_tx[h.to].send(h.msg);
                    }
                    while let Ok(out) = router_rx.try_recv() {
                        let _ = inbox_tx[out.to].send(out.msg);
                    }
                    break;
                }
                let wait = held
                    .peek()
                    .map_or(Duration::from_millis(1), |h| {
                        h.due.saturating_duration_since(Instant::now())
                    })
                    .min(Duration::from_millis(1));
                match router_rx.recv_timeout(wait) {
                    Ok(out) => {
                        let delay = if max_delay.is_zero() {
                            Duration::ZERO
                        } else {
                            max_delay.mul_f64(rng.random::<f64>())
                        };
                        held.push(Held {
                            due: Instant::now() + delay,
                            to: out.to,
                            msg: out.msg,
                        });
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        })
    };

    // Worker threads.
    let mut workers = Vec::with_capacity(p);
    for (pid, mut proc_) in procs.into_iter().enumerate() {
        let rx = inbox_rx[pid].take().expect("one receiver per processor");
        let done = Arc::clone(&done);
        let truth = Arc::clone(&ground_truth);
        let to_router = to_router.clone();
        let budget = config.crash_after_steps.get(pid).copied().unwrap_or(None);
        let pace = config.step_interval;
        let body = Arc::clone(&body);
        workers.push(std::thread::spawn(move || {
            let mut steps: u64 = 0;
            let mut sent: u64 = 0;
            let mut drained: u64 = 0;
            let mut max_backlog: u64 = 0;
            let mut inbox: Vec<Message> = Vec::new();
            while !done.load(Ordering::Acquire) && Instant::now() < deadline {
                if budget.is_some_and(|b| steps >= b) {
                    // Crashed: stop stepping, but drain-and-drop the inbox
                    // each wake — the router keeps sending into this
                    // unbounded channel for the rest of the run, and
                    // before this drain a long run with a chatty peer
                    // grew the crashed processor's queue without bound.
                    // (A crashed processor never *reads* its messages;
                    // dropping them is exactly the infinite-delay model.)
                    let mut batch: u64 = 0;
                    while rx.try_recv().is_ok() {
                        batch += 1;
                    }
                    drained += batch;
                    max_backlog = max_backlog.max(batch);
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                inbox.clear();
                while let Ok(m) = rx.try_recv() {
                    inbox.push(m);
                }
                let outcome = proc_.step(&inbox);
                steps += 1;
                if let Some(task) = outcome.performed {
                    body(task);
                    truth.lock().insert(task.index());
                }
                if let Some(bits) = outcome.broadcast {
                    let recipients: Vec<usize> = match outcome.targets {
                        Some(targets) => targets
                            .into_iter()
                            .map(ProcId::index)
                            .filter(|&to| to != pid && to < p)
                            .collect(),
                        None => (0..p).filter(|&to| to != pid).collect(),
                    };
                    for to in recipients {
                        sent += 1;
                        let _ = to_router.send(Outgoing {
                            to,
                            msg: Message::new(ProcId::new(pid), bits.clone()),
                        });
                    }
                }
                if proc_.knows_all_done() {
                    done.store(true, Ordering::Release);
                    break;
                }
                if !pace.is_zero() {
                    std::thread::sleep(pace);
                }
            }
            (steps, sent, drained, max_backlog)
        }));
    }
    drop(to_router);

    let mut work = 0u64;
    let mut messages = 0u64;
    let mut per_proc = Vec::with_capacity(p);
    let mut stats = RuntimeStats::default();
    for w in workers {
        let (steps, sent, drained, max_backlog) = w.join().expect("worker panicked");
        work += steps;
        messages += sent;
        per_proc.push(steps);
        stats.crashed_drained += drained;
        stats.max_crashed_backlog = stats.max_crashed_backlog.max(max_backlog);
    }
    router.join().expect("router panicked");

    let all_done = ground_truth.lock().is_full();
    let informed = done.load(Ordering::Acquire);
    let report = RunReport {
        work,
        messages,
        sigma: (informed && all_done)
            .then(|| u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)),
        completed: informed && all_done,
        work_per_processor: per_proc,
    };
    (report, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use doall_core::{StepOutcome, TaskId};

    /// Deterministic sweep used to smoke-test the plumbing without
    /// depending on the algorithms crate (those tests live in /tests).
    #[derive(Clone)]
    struct Sweep {
        pid: ProcId,
        next: usize,
        t: usize,
    }

    impl DoAllProcess for Sweep {
        fn pid(&self) -> ProcId {
            self.pid
        }
        fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
            if self.next < self.t {
                self.next += 1;
                StepOutcome::perform(TaskId::new(self.next - 1))
            } else {
                StepOutcome::internal()
            }
        }
        fn knows_all_done(&self) -> bool {
            self.next >= self.t
        }
        fn clone_box(&self) -> Box<dyn DoAllProcess> {
            Box::new(self.clone())
        }
    }

    fn sweeps(p: usize, t: usize) -> Vec<Box<dyn DoAllProcess>> {
        (0..p)
            .map(|i| {
                Box::new(Sweep {
                    pid: ProcId::new(i),
                    next: 0,
                    t,
                }) as Box<dyn DoAllProcess>
            })
            .collect()
    }

    #[test]
    fn solo_sweep_completes() {
        let instance = Instance::new(1, 50).unwrap();
        let report = run_threaded(instance, sweeps(1, 50), &RuntimeConfig::default());
        assert!(report.completed);
        assert!(report.work >= 50);
        assert_eq!(report.messages, 0);
    }

    #[test]
    fn parallel_sweeps_complete() {
        let instance = Instance::new(4, 30).unwrap();
        let report = run_threaded(instance, sweeps(4, 30), &RuntimeConfig::default());
        assert!(report.completed);
        assert!(report.work >= 30);
        assert_eq!(report.work_per_processor.len(), 4);
    }

    #[test]
    fn task_body_runs_for_every_performance() {
        use std::sync::atomic::AtomicU64;
        let instance = Instance::new(2, 20).unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        let body = {
            let counter = Arc::clone(&counter);
            Arc::new(move |_task: TaskId| {
                counter.fetch_add(1, Ordering::Relaxed);
            })
        };
        let report =
            run_threaded_with_tasks(instance, sweeps(2, 20), &RuntimeConfig::default(), body);
        assert!(report.completed);
        // Every performing step ran the body; sweeps perform once per step
        // until their own completion.
        assert!(counter.load(Ordering::Relaxed) >= 20);
        assert!(counter.load(Ordering::Relaxed) <= report.work);
    }

    #[test]
    fn timeout_reports_incomplete() {
        /// Never finishes.
        #[derive(Clone)]
        struct Idler;
        impl DoAllProcess for Idler {
            fn pid(&self) -> ProcId {
                ProcId::new(0)
            }
            fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
                std::thread::sleep(Duration::from_millis(1));
                StepOutcome::internal()
            }
            fn knows_all_done(&self) -> bool {
                false
            }
            fn clone_box(&self) -> Box<dyn DoAllProcess> {
                Box::new(Idler)
            }
        }
        let instance = Instance::new(1, 1).unwrap();
        let config = RuntimeConfig {
            timeout: Duration::from_millis(50),
            ..Default::default()
        };
        let report = run_threaded(instance, vec![Box::new(Idler)], &config);
        assert!(!report.completed);
        assert_eq!(report.sigma, None);
    }

    /// Performs its tasks one per step and broadcasts every performance —
    /// the worst case for a crashed peer's inbox.
    #[derive(Clone)]
    struct ChattySweep {
        pid: ProcId,
        next: usize,
        t: usize,
    }

    impl DoAllProcess for ChattySweep {
        fn pid(&self) -> ProcId {
            self.pid
        }
        fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
            if self.next < self.t {
                self.next += 1;
                let mut bits = BitSet::new(self.t);
                for z in 0..self.next {
                    bits.insert(z);
                }
                StepOutcome::perform_and_broadcast(TaskId::new(self.next - 1), bits)
            } else {
                StepOutcome::internal()
            }
        }
        fn knows_all_done(&self) -> bool {
            self.next >= self.t
        }
        fn clone_box(&self) -> Box<dyn DoAllProcess> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn crashed_worker_drains_its_inbox() {
        // Regression: a crashed worker used to sleep without ever reading
        // its receiver, so the router kept filling the unbounded channel
        // for the rest of the run. Post-fix the crashed branch drains and
        // drops each wake, keeping the backlog bounded by one wake's
        // arrivals instead of the whole run's traffic.
        let t = 300;
        let instance = Instance::new(2, t).unwrap();
        let procs: Vec<Box<dyn DoAllProcess>> = vec![
            Box::new(ChattySweep {
                pid: ProcId::new(0),
                next: 0,
                t,
            }),
            Box::new(ChattySweep {
                pid: ProcId::new(1),
                next: 0,
                t,
            }),
        ];
        let config = RuntimeConfig {
            max_delay: Duration::ZERO,
            // Processor 1 crashes before its first step; processor 0 does
            // everything, broadcasting ~t messages at its crashed peer.
            crash_after_steps: vec![None, Some(0)],
            // Pace the survivor so the run spans many of the crashed
            // worker's 1 ms wake-ups.
            step_interval: Duration::from_micros(100),
            ..Default::default()
        };
        let (report, stats) = run_threaded_with_stats(instance, procs, &config, Arc::new(|_| {}));
        assert!(report.completed, "{report}");
        assert!(
            stats.crashed_drained > 0,
            "the crashed worker must drain its inbox: {stats:?}"
        );
        assert!(
            stats.crashed_drained <= report.messages,
            "cannot drain more than was ever sent: {stats:?} vs {report}"
        );
        assert!(stats.max_crashed_backlog <= stats.crashed_drained);
        // A run without crashes drains nothing.
        let instance = Instance::new(2, 10).unwrap();
        let (_, clean) = run_threaded_with_stats(
            instance,
            sweeps(2, 10),
            &RuntimeConfig::default(),
            Arc::new(|_| {}),
        );
        assert_eq!(clean, RuntimeStats::default());
    }

    #[test]
    #[should_panic(expected = "at least one processor must survive")]
    fn crashing_everyone_is_rejected() {
        let instance = Instance::new(2, 2).unwrap();
        let config = RuntimeConfig {
            crash_after_steps: vec![Some(1), Some(1)],
            ..Default::default()
        };
        let _ = run_threaded(instance, sweeps(2, 2), &config);
    }
}
