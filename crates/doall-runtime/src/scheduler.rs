//! Worker scheduling: one OS thread per processor stepping its state
//! machine against the transport, plus the run orchestration that joins
//! everything back into a `RunReport`.
//!
//! The scheduler assumes its inputs were validated by the [`crate::Runtime`]
//! builder (one state machine per processor, a legal crash schedule), so
//! it contains no policy — only mechanism.

use crate::fault::{CrashSchedule, RuntimeStats};
use crate::transport::{ChannelTransport, Outgoing};
use crate::{RuntimeConfig, TaskBody};
use doall_core::{BitSet, DoAllProcess, Instance, Message, ProcId, RunReport};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runs `procs` on OS threads until some processor knows all tasks are
/// done, the crash schedule stops everyone who could finish, or the
/// timeout fires. Inputs are assumed validated.
pub(crate) fn execute(
    instance: Instance,
    procs: Vec<Box<dyn DoAllProcess>>,
    config: &RuntimeConfig,
    body: &Arc<TaskBody>,
    schedule: &CrashSchedule,
    pace_overrides: &[Option<Duration>],
) -> (RunReport, RuntimeStats) {
    let p = instance.processors();
    let t = instance.tasks();

    let done = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + config.timeout;
    let start = Instant::now();
    let ground_truth = Arc::new(Mutex::new(BitSet::new(t)));

    let mut transport =
        ChannelTransport::start(p, config.max_delay, config.seed, Arc::clone(&done));

    // Worker threads.
    let mut workers = Vec::with_capacity(p);
    for (pid, mut proc_) in procs.into_iter().enumerate() {
        let rx = transport.take_inbox(pid);
        let done = Arc::clone(&done);
        let truth = Arc::clone(&ground_truth);
        let to_router = transport.outgoing();
        let budget = schedule.budget(pid);
        let pace = pace_overrides
            .get(pid)
            .copied()
            .flatten()
            .unwrap_or(config.step_interval);
        let body = Arc::clone(body);
        workers.push(std::thread::spawn(move || {
            let mut steps: u64 = 0;
            let mut sent: u64 = 0;
            let mut drained: u64 = 0;
            let mut max_backlog: u64 = 0;
            let mut inbox: Vec<Message> = Vec::new();
            while !done.load(Ordering::Acquire) && Instant::now() < deadline {
                if budget.is_some_and(|b| steps >= b) {
                    // Crashed: stop stepping, but drain-and-drop the inbox
                    // each wake — the router keeps sending into this
                    // unbounded channel for the rest of the run, and
                    // before this drain a long run with a chatty peer
                    // grew the crashed processor's queue without bound.
                    // (A crashed processor never *reads* its messages;
                    // dropping them is exactly the infinite-delay model.)
                    let mut batch: u64 = 0;
                    while rx.try_recv().is_ok() {
                        batch += 1;
                    }
                    drained += batch;
                    max_backlog = max_backlog.max(batch);
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
                inbox.clear();
                while let Ok(m) = rx.try_recv() {
                    inbox.push(m);
                }
                let outcome = proc_.step(&inbox);
                steps += 1;
                if let Some(task) = outcome.performed {
                    body(task);
                    truth.lock().insert(task.index());
                }
                if let Some(bits) = outcome.broadcast {
                    let recipients: Vec<usize> = match outcome.targets {
                        Some(targets) => targets
                            .into_iter()
                            .map(ProcId::index)
                            .filter(|&to| to != pid && to < p)
                            .collect(),
                        None => (0..p).filter(|&to| to != pid).collect(),
                    };
                    for to in recipients {
                        sent += 1;
                        let _ = to_router.send(Outgoing {
                            to,
                            msg: Message::new(ProcId::new(pid), Arc::clone(&bits)),
                        });
                    }
                }
                if proc_.knows_all_done() {
                    done.store(true, Ordering::Release);
                    break;
                }
                if !pace.is_zero() {
                    std::thread::sleep(pace);
                }
            }
            (steps, sent, drained, max_backlog)
        }));
    }

    let mut work = 0u64;
    let mut messages = 0u64;
    let mut per_proc = Vec::with_capacity(p);
    let mut stats = RuntimeStats::default();
    for w in workers {
        // lint:allow(H001) — propagating a worker panic is the designed failure mode
        let (steps, sent, drained, max_backlog) = w.join().expect("worker panicked");
        work += steps;
        messages += sent;
        per_proc.push(steps);
        stats.crashed_drained += drained;
        stats.max_crashed_backlog = stats.max_crashed_backlog.max(max_backlog);
    }
    transport.shutdown();

    let all_done = ground_truth.lock().is_full();
    let informed = done.load(Ordering::Acquire);
    let report = RunReport {
        work,
        messages,
        sigma: (informed && all_done)
            .then(|| u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)),
        completed: informed && all_done,
        work_per_processor: per_proc,
    };
    (report, stats)
}
