//! The paper's algorithms running on genuine OS threads with delayed
//! channels — substrate-independence validation.

use doall_algorithms::{Algorithm, Da, PaDet, PaRan1, PaRan2, SoloAll};
use doall_core::Instance;
use doall_runtime::{Runtime, RuntimeConfig};
use std::time::Duration;

fn config() -> RuntimeConfig {
    RuntimeConfig {
        max_delay: Duration::from_micros(200),
        seed: 42,
        timeout: Duration::from_secs(20),
        crash_after_steps: Vec::new(),
        step_interval: Duration::from_micros(20),
    }
}

#[test]
fn all_algorithms_complete_on_threads() {
    let instance = Instance::new(4, 32).unwrap();
    let algos: Vec<Box<dyn Algorithm>> = vec![
        Box::new(SoloAll::new()),
        Box::new(Da::with_default_schedules(2, 0)),
        Box::new(PaRan1::new(0)),
        Box::new(PaRan2::new(0)),
        Box::new(PaDet::random_for(instance, 0)),
    ];
    for algo in algos {
        let outcome = Runtime::builder(config())
            .run(instance, algo.spawn(instance))
            .expect("valid setup");
        assert!(
            outcome.report.completed,
            "{} did not complete on threads: {}",
            algo.name(),
            outcome.report
        );
        assert!(outcome.report.work >= 32, "{}", algo.name());
    }
}

#[test]
fn threads_with_crashes_still_complete() {
    let instance = Instance::new(4, 24).unwrap();
    let mut cfg = config();
    // Processors 1..3 crash after a handful of steps; processor 0 survives.
    cfg.crash_after_steps = vec![None, Some(3), Some(5), Some(2)];
    let algo = Da::with_default_schedules(2, 7);
    let outcome = Runtime::builder(cfg)
        .run(instance, algo.spawn(instance))
        .expect("valid setup");
    assert!(
        outcome.report.completed,
        "survivor must finish alone: {}",
        outcome.report
    );
}

#[test]
fn cooperation_reduces_per_processor_load() {
    // With communication, total work on threads should be well below the
    // oblivious p·t on a comfortably parallel instance. This is a
    // statistical property of real schedules; keep generous margins.
    let instance = Instance::new(8, 200).unwrap();
    let algo = PaRan2::new(5);
    let outcome = Runtime::builder(config())
        .run(instance, algo.spawn(instance))
        .expect("valid setup");
    assert!(outcome.report.completed);
    let quadratic = 8 * 200;
    assert!(
        outcome.report.work < quadratic,
        "cooperative work {} should beat oblivious {quadratic}",
        outcome.report.work
    );
}
