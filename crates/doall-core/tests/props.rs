//! Property-based tests for the core data structures.

use doall_core::{BitSet, DoneSet, Instance, JobId, JobMap, TaskId};
use proptest::prelude::*;

fn bitset_from(len: usize, ones: &[usize]) -> BitSet {
    let mut b = BitSet::new(len);
    for &i in ones {
        if i < len {
            b.insert(i);
        }
    }
    b
}

proptest! {
    /// Union is a lattice join: commutative, associative, idempotent, and
    /// monotone (the result is a superset of both operands).
    #[test]
    fn bitset_union_is_join(
        len in 1usize..300,
        xs in prop::collection::vec(0usize..300, 0..40),
        ys in prop::collection::vec(0usize..300, 0..40),
    ) {
        let a = bitset_from(len, &xs);
        let b = bitset_from(len, &ys);

        let mut ab = a.clone();
        ab.union_with(&b);
        let mut ba = b.clone();
        ba.union_with(&a);
        prop_assert_eq!(&ab, &ba, "commutative");

        prop_assert!(ab.is_superset(&a));
        prop_assert!(ab.is_superset(&b));

        let mut idem = ab.clone();
        prop_assert!(!idem.union_with(&b), "idempotent: no new bits");
        prop_assert_eq!(&idem, &ab);
    }

    /// Cached popcount always agrees with a recount via the iterator.
    #[test]
    fn bitset_count_matches_iter(
        len in 1usize..300,
        xs in prop::collection::vec(0usize..300, 0..60),
    ) {
        let b = bitset_from(len, &xs);
        prop_assert_eq!(b.count(), b.iter_ones().count());
        prop_assert_eq!(b.len() - b.count(), b.iter_zeros().count());
    }

    /// iter_ones and iter_zeros partition the index range.
    #[test]
    fn bitset_iters_partition(
        len in 1usize..200,
        xs in prop::collection::vec(0usize..200, 0..50),
    ) {
        let b = bitset_from(len, &xs);
        let mut all: Vec<usize> = b.iter_ones().chain(b.iter_zeros()).collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..len).collect();
        prop_assert_eq!(all, expect);
    }

    /// JobMap: jobs are nonempty, contiguous, cover all tasks, sizes differ
    /// by at most one, and job_of inverts tasks_of.
    #[test]
    fn job_map_partition_laws(t in 1usize..500, n in 1usize..64) {
        let jm = JobMap::new(t, n);
        prop_assert_eq!(jm.job_count(), n.min(t));
        let mut next = 0usize;
        let mut min_size = usize::MAX;
        let mut max_size = 0usize;
        for j in 0..jm.job_count() {
            let r = jm.tasks_of(JobId::new(j));
            prop_assert_eq!(r.start, next);
            prop_assert!(!r.is_empty());
            min_size = min_size.min(r.len());
            max_size = max_size.max(r.len());
            for task in r.clone() {
                prop_assert_eq!(jm.job_of(TaskId::new(task)), JobId::new(j));
            }
            next = r.end;
        }
        prop_assert_eq!(next, t, "jobs cover all tasks");
        prop_assert!(max_size - min_size <= 1, "near-equal sizes");
        prop_assert_eq!(max_size, jm.max_job_size());
    }

    /// DoneSet merge only ever grows knowledge and all_done is exactly
    /// "known_done == task_count".
    #[test]
    fn done_set_monotone(
        t in 1usize..200,
        xs in prop::collection::vec(0usize..200, 0..50),
        ys in prop::collection::vec(0usize..200, 0..50),
    ) {
        let mut a = DoneSet::new(t);
        for &x in &xs { if x < t { a.record(TaskId::new(x)); } }
        let mut b = DoneSet::new(t);
        for &y in &ys { if y < t { b.record(TaskId::new(y)); } }
        let before = a.known_done();
        a.merge(&b);
        prop_assert!(a.known_done() >= before);
        prop_assert!(a.known_done() >= b.known_done().min(t));
        prop_assert_eq!(a.all_done(), a.known_done() == t);
    }

    /// Instance units is min(p, t) and the job map is consistent with it.
    #[test]
    fn instance_units(p in 1usize..100, t in 1usize..1000) {
        let inst = Instance::new(p, t).unwrap();
        prop_assert_eq!(inst.units(), p.min(t));
        prop_assert_eq!(inst.job_map().job_count(), p.min(t));
        prop_assert_eq!(inst.job_map().task_count(), t);
    }
}
