//! Strongly-typed identifiers for processors, tasks, and jobs.
//!
//! The paper identifies processors by `pid ∈ {0, …, p−1}` and tasks by
//! identifiers from `[t] = {1, …, t}`. We use zero-based indices throughout
//! (so `TaskId::new(0)` is the paper's task 1); all arithmetic in the
//! algorithms is adjusted accordingly.

use core::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $letter:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from a zero-based index.
            #[must_use]
            pub const fn new(index: usize) -> Self {
                Self(index)
            }

            /// The zero-based index of this identifier.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($letter, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($letter, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.0
            }
        }
    };
}

id_newtype!(
    /// Identifier of a processor: `pid ∈ {0, …, p−1}`.
    ProcId,
    "P"
);

id_newtype!(
    /// Identifier of a task (zero-based; the paper's task `z ∈ [t]` is
    /// `TaskId::new(z − 1)`).
    TaskId,
    "T"
);

id_newtype!(
    /// Identifier of a *job* — a cluster of `⌈t/p⌉` tasks used when `t > p`
    /// (Sections 5.1.3 and 6 of the paper).
    JobId,
    "J"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        assert_eq!(ProcId::new(7).index(), 7);
        assert_eq!(TaskId::new(0).index(), 0);
        assert_eq!(JobId::new(42).index(), 42);
    }

    #[test]
    fn display_and_debug_are_prefixed() {
        assert_eq!(ProcId::new(3).to_string(), "P3");
        assert_eq!(format!("{:?}", TaskId::new(5)), "T5");
        assert_eq!(format!("{:?}", JobId::new(1)), "J1");
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(ProcId::new(1) < ProcId::new(2));
        assert!(TaskId::new(9) > TaskId::new(3));
    }

    #[test]
    fn usize_conversion() {
        let i: usize = TaskId::new(11).into();
        assert_eq!(i, 11);
    }
}
