//! A processor's knowledge of which tasks are complete.

use crate::{BitSet, TaskId};
use core::fmt;

/// The set of tasks a processor *knows* to be complete — either because it
/// performed them itself or because it learned of their completion from a
/// received message.
///
/// `DoneSet` is monotone (knowledge only grows) and merges by union, so it
/// forms a join-semilattice; this is what makes the replicated state of the
/// paper's algorithms trivially consistent.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DoneSet {
    bits: BitSet,
}

impl DoneSet {
    /// Creates an empty knowledge set over `tasks` tasks.
    #[must_use]
    pub fn new(tasks: usize) -> Self {
        Self {
            bits: BitSet::new(tasks),
        }
    }

    /// Total number of tasks in the instance.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.bits.len()
    }

    /// Number of tasks known complete.
    #[must_use]
    pub fn known_done(&self) -> usize {
        self.bits.count()
    }

    /// Whether every task is known complete — the local halting condition of
    /// the PA algorithms and the definition of a processor being "informed"
    /// for the σ cutoff of Definition 2.1.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.bits.is_full()
    }

    /// Whether `task` is known complete.
    #[must_use]
    pub fn contains(&self, task: TaskId) -> bool {
        self.bits.contains(task.index())
    }

    /// Records that `task` is complete; returns `true` if this was news.
    pub fn record(&mut self, task: TaskId) -> bool {
        self.bits.insert(task.index())
    }

    /// Merges another processor's knowledge into this one; returns `true`
    /// if anything new was learned.
    pub fn merge(&mut self, other: &DoneSet) -> bool {
        self.bits.union_with(&other.bits)
    }

    /// Merges a raw progress bitmap (e.g. a received message payload)
    /// into this knowledge set without wrapping or copying it; returns
    /// `true` if anything new was learned.
    ///
    /// # Panics
    ///
    /// Panics if `bits` covers a different number of tasks.
    pub fn merge_bits(&mut self, bits: &BitSet) -> bool {
        self.bits.union_with(bits)
    }

    /// Iterator over tasks *not* known complete, in increasing index order.
    pub fn unknown(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.bits.iter_zeros().map(TaskId::new)
    }

    /// Borrow of the underlying bitset (e.g. to put on the wire).
    #[must_use]
    pub fn as_bits(&self) -> &BitSet {
        &self.bits
    }

    /// Wraps an existing bitset as a knowledge set.
    #[must_use]
    pub fn from_bits(bits: BitSet) -> Self {
        Self { bits }
    }
}

impl fmt::Debug for DoneSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DoneSet({}/{})", self.known_done(), self.task_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_knows_nothing() {
        let d = DoneSet::new(5);
        assert_eq!(d.known_done(), 0);
        assert!(!d.all_done());
        assert_eq!(d.unknown().count(), 5);
    }

    #[test]
    fn record_and_contains() {
        let mut d = DoneSet::new(5);
        assert!(d.record(TaskId::new(2)));
        assert!(!d.record(TaskId::new(2)));
        assert!(d.contains(TaskId::new(2)));
        assert!(!d.contains(TaskId::new(3)));
    }

    #[test]
    fn merge_is_union() {
        let mut a = DoneSet::new(4);
        let mut b = DoneSet::new(4);
        a.record(TaskId::new(0));
        b.record(TaskId::new(3));
        assert!(a.merge(&b));
        assert!(a.contains(TaskId::new(0)));
        assert!(a.contains(TaskId::new(3)));
        assert!(!a.merge(&b), "merge is idempotent");
    }

    #[test]
    fn all_done_when_full() {
        let mut d = DoneSet::new(3);
        for i in 0..3 {
            d.record(TaskId::new(i));
        }
        assert!(d.all_done());
        assert_eq!(d.unknown().count(), 0);
    }

    #[test]
    fn bits_roundtrip() {
        let mut d = DoneSet::new(8);
        d.record(TaskId::new(7));
        let d2 = DoneSet::from_bits(d.as_bits().clone());
        assert_eq!(d, d2);
    }
}
