//! The message envelope carried by the network.
//!
//! Every algorithm in the paper communicates exactly one kind of payload: a
//! monotone bitmap of progress information. For the PA family the bits index
//! tasks (a [`crate::DoneSet`]); for DA they index the nodes of the
//! replicated q-ary progress tree. Receivers merge payloads into local state
//! by bitwise OR.

use crate::{BitSet, ProcId};

/// A point-to-point message. Broadcasts are modelled as `p − 1`
/// point-to-point messages, exactly as in the paper's message-complexity
/// accounting (Definition 2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    from: ProcId,
    bits: BitSet,
}

impl Message {
    /// Creates a message from `from` carrying progress bitmap `bits`.
    #[must_use]
    pub fn new(from: ProcId, bits: BitSet) -> Self {
        Self { from, bits }
    }

    /// The sender.
    #[must_use]
    pub fn from(&self) -> ProcId {
        self.from
    }

    /// The progress bitmap carried by the message.
    #[must_use]
    pub fn bits(&self) -> &BitSet {
        &self.bits
    }

    /// Consumes the message, yielding its payload.
    #[must_use]
    pub fn into_bits(self) -> BitSet {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let mut b = BitSet::new(4);
        b.insert(1);
        let m = Message::new(ProcId::new(2), b.clone());
        assert_eq!(m.from(), ProcId::new(2));
        assert_eq!(m.bits(), &b);
        assert_eq!(m.into_bits(), b);
    }
}
