//! The message envelope carried by the network.
//!
//! Every algorithm in the paper communicates exactly one kind of payload: a
//! monotone bitmap of progress information. For the PA family the bits index
//! tasks (a [`crate::DoneSet`]); for DA they index the nodes of the
//! replicated q-ary progress tree. Receivers merge payloads into local state
//! by bitwise OR.
//!
//! # Shared-payload ownership rule
//!
//! A payload is **immutable once submitted**. The sender builds its bitmap,
//! hands it to the network, and never writes to that copy again — the
//! paper's Section 5.1.2 observation that the messages are monotone
//! snapshots, so "no issues of consistency arise". The envelope therefore
//! stores the payload behind an [`Arc`]: a p-way broadcast is `p − 1`
//! envelopes sharing **one** allocation (each fan-out copy is a reference
//! count bump, not a `BitSet` clone), and receivers merge through
//! [`bits`](Message::bits) as a plain `&BitSet`. The `Arc` is an ownership
//! statement, not a concurrency device: there is no way to obtain a mutable
//! reference to a payload from an envelope, so a received bitmap can never
//! be edited in place — merge it into your own state and drop the message.
//!
//! Constructors take `impl Into<Arc<BitSet>>`, so call sites may pass an
//! owned `BitSet` (converted for them) or an `Arc<BitSet>` they already
//! share; algorithm code that built payloads by value keeps compiling
//! unchanged.

use crate::{BitSet, ProcId};
use std::sync::Arc;

/// A point-to-point message. Broadcasts are modelled as `p − 1`
/// point-to-point messages, exactly as in the paper's message-complexity
/// accounting (Definition 2.2) — but all `p − 1` envelopes share one
/// payload allocation (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    from: ProcId,
    bits: Arc<BitSet>,
}

impl Message {
    /// Creates a message from `from` carrying progress bitmap `bits`.
    ///
    /// Accepts an owned [`BitSet`] (moved into a fresh `Arc`) or an
    /// already-shared `Arc<BitSet>` (no allocation, no copy).
    #[must_use]
    pub fn new(from: ProcId, bits: impl Into<Arc<BitSet>>) -> Self {
        Self {
            from,
            bits: bits.into(),
        }
    }

    /// The sender.
    #[must_use]
    pub fn from(&self) -> ProcId {
        self.from
    }

    /// The progress bitmap carried by the message (read-only — payloads
    /// are immutable once sent; see the module docs).
    #[must_use]
    pub fn bits(&self) -> &BitSet {
        &self.bits
    }

    /// The shared payload handle — lets a receiver forward or store the
    /// payload without copying it.
    #[must_use]
    pub fn shared_bits(&self) -> &Arc<BitSet> {
        &self.bits
    }

    /// Consumes the message, yielding its payload. Unwraps the shared
    /// allocation when this envelope was its last holder; clones the
    /// bitmap otherwise.
    #[must_use]
    pub fn into_bits(self) -> BitSet {
        Arc::try_unwrap(self.bits).unwrap_or_else(|shared| (*shared).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let mut b = BitSet::new(4);
        b.insert(1);
        let m = Message::new(ProcId::new(2), b.clone());
        assert_eq!(m.from(), ProcId::new(2));
        assert_eq!(m.bits(), &b);
        assert_eq!(m.into_bits(), b);
    }

    #[test]
    fn fan_out_shares_one_payload() {
        let mut b = BitSet::new(8);
        b.insert(3);
        let payload: Arc<BitSet> = Arc::new(b);
        let copies: Vec<Message> = (1..4)
            .map(|to| {
                let _ = to;
                Message::new(ProcId::new(0), Arc::clone(&payload))
            })
            .collect();
        for m in &copies {
            assert!(Arc::ptr_eq(m.shared_bits(), &payload), "no deep copy");
        }
        // `into_bits` on a still-shared payload clones; on the last
        // holder it unwraps in place.
        drop(copies);
        let only = Message::new(ProcId::new(0), payload);
        let back = only.into_bits();
        assert!(back.contains(3));
    }
}
