//! The state-machine trait implemented by every Do-All algorithm.

use crate::{BitSet, Message, ProcId, TaskId};
use std::sync::Arc;

/// What a single local step did.
///
/// Per the work-accounting contract (crate docs), one step may perform at
/// most one task and submit at most one broadcast. The simulator uses
/// `performed` to maintain the *ground truth* of completed tasks (for σ
/// detection and correctness checking) and `broadcast` to hand the payload
/// to the network, where the adversary assigns delays.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StepOutcome {
    /// Task performed during this step, if any.
    pub performed: Option<TaskId>,
    /// Progress bitmap submitted for sending, if any. With `targets ==
    /// None` this is a broadcast to all other processors (`p − 1`
    /// point-to-point messages); with `targets == Some(v)` it is a
    /// multicast to exactly `v` (|v| messages) — used by the
    /// message-throttled gossip variants (the paper's §7 asks for
    /// algorithms that also control message complexity). The payload is
    /// shared, never copied, by the network fan-out — see the
    /// shared-payload ownership rule in [`Message`]'s module docs.
    pub broadcast: Option<Arc<BitSet>>,
    /// Explicit recipients for `broadcast`; `None` means everyone else.
    /// Ignored when `broadcast` is `None`.
    pub targets: Option<Vec<ProcId>>,
}

impl StepOutcome {
    /// A step that only did internal computation (still one work unit).
    #[must_use]
    pub fn internal() -> Self {
        Self::default()
    }

    /// A step that performed `task` and broadcast nothing.
    #[must_use]
    pub fn perform(task: TaskId) -> Self {
        Self {
            performed: Some(task),
            ..Self::default()
        }
    }

    /// A step that performed `task` and submitted broadcast `bits`.
    #[must_use]
    pub fn perform_and_broadcast(task: TaskId, bits: impl Into<Arc<BitSet>>) -> Self {
        Self {
            performed: Some(task),
            broadcast: Some(bits.into()),
            targets: None,
        }
    }

    /// A step that only submitted broadcast `bits`.
    #[must_use]
    pub fn broadcast(bits: impl Into<Arc<BitSet>>) -> Self {
        Self {
            performed: None,
            broadcast: Some(bits.into()),
            targets: None,
        }
    }

    /// A step that performed `task` and multicast `bits` to exactly
    /// `targets` (the gossip primitive).
    #[must_use]
    pub fn perform_and_multicast(
        task: TaskId,
        bits: impl Into<Arc<BitSet>>,
        targets: Vec<ProcId>,
    ) -> Self {
        Self {
            performed: Some(task),
            broadcast: Some(bits.into()),
            targets: Some(targets),
        }
    }
}

/// A Do-All algorithm instance running on one processor, driven as a state
/// machine: each call to [`step`](Self::step) is one local step (one unit of
/// work).
///
/// # Contract
///
/// * `step` first incorporates `inbox` (messages delivered since the last
///   step; processing the inbox is free within the step, per the paper's
///   cost model), then takes one action.
/// * After [`knows_all_done`](Self::knows_all_done) returns `true` the
///   processor may halt; calling `step` again must be harmless (idempotent
///   no-op steps). Per Proposition 2.1, algorithms never halt *before*
///   knowing all tasks are complete.
/// * Implementations must be deterministic functions of their state and the
///   inbox. Randomized algorithms own a seeded RNG inside their state, so
///   cloning forks the random stream — the lower-bound adversary exploits
///   this to *peek* one step ahead, mirroring the omniscient adversary of
///   Theorem 3.4.
/// * The inbox is a *set of monotone payloads*, not a sequence: payloads
///   are knowledge sets merged by union (Section 5.1.2), so behaviour must
///   not depend on message order, multiplicity, or grouping. The delivery
///   engine relies on this — it may split one broadcast into `p − 1`
///   envelopes or coalesce several same-instant broadcasts into one
///   message whose payload is their union (see `doall-sim`'s
///   `BroadcastBus`), and a processor may receive its own payload
///   reflected back within such a union. Either way the union of received
///   bits is identical.
///
/// The trait is object-safe; the simulator stores `Box<dyn DoAllProcess>`,
/// and [`clone_box`](Self::clone_box) supports the dry-run cloning used by
/// the Theorem 3.1 adversary.
pub trait DoAllProcess: Send {
    /// The processor this state machine runs on.
    fn pid(&self) -> ProcId;

    /// Executes one local step: merge `inbox`, then act.
    fn step(&mut self, inbox: &[Message]) -> StepOutcome;

    /// Whether this processor locally knows that every task is complete.
    fn knows_all_done(&self) -> bool;

    /// Clones the state machine behind the trait object.
    fn clone_box(&self) -> Box<dyn DoAllProcess>;
}

impl Clone for Box<dyn DoAllProcess> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal process used to exercise the trait-object machinery.
    #[derive(Clone)]
    struct OneShot {
        pid: ProcId,
        done: bool,
    }

    impl DoAllProcess for OneShot {
        fn pid(&self) -> ProcId {
            self.pid
        }

        fn step(&mut self, _inbox: &[Message]) -> StepOutcome {
            if self.done {
                StepOutcome::internal()
            } else {
                self.done = true;
                StepOutcome::perform(TaskId::new(0))
            }
        }

        fn knows_all_done(&self) -> bool {
            self.done
        }

        fn clone_box(&self) -> Box<dyn DoAllProcess> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn boxed_clone_is_independent() {
        let mut a: Box<dyn DoAllProcess> = Box::new(OneShot {
            pid: ProcId::new(0),
            done: false,
        });
        let mut b = a.clone();
        assert_eq!(a.step(&[]).performed, Some(TaskId::new(0)));
        assert!(a.knows_all_done());
        assert!(!b.knows_all_done(), "clone did not advance");
        assert_eq!(b.step(&[]).performed, Some(TaskId::new(0)));
    }

    #[test]
    fn outcome_constructors() {
        let bits = BitSet::new(3);
        assert_eq!(StepOutcome::internal(), StepOutcome::default());
        assert_eq!(
            StepOutcome::perform(TaskId::new(1)).performed,
            Some(TaskId::new(1))
        );
        let o = StepOutcome::perform_and_broadcast(TaskId::new(2), bits.clone());
        assert!(o.performed.is_some() && o.broadcast.is_some());
        let o = StepOutcome::broadcast(bits);
        assert!(o.performed.is_none() && o.broadcast.is_some());
    }
}
