//! Error types for instance and algorithm construction.

use core::fmt;

/// Errors raised when constructing Do-All instances or algorithm
/// configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An instance must have at least one processor.
    ZeroProcessors,
    /// An instance must have at least one task.
    ZeroTasks,
    /// A parameter was outside its documented range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
}

impl CoreError {
    /// Convenience constructor for [`CoreError::InvalidParameter`].
    #[must_use]
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        Self::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroProcessors => write!(f, "a Do-All instance needs at least one processor"),
            Self::ZeroTasks => write!(f, "a Do-All instance needs at least one task"),
            Self::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CoreError::ZeroProcessors.to_string().contains("processor"));
        assert!(CoreError::ZeroTasks.to_string().contains("task"));
        let e = CoreError::invalid("q", "must be at least 2");
        assert!(e.to_string().contains('q'));
        assert!(e.to_string().contains("at least 2"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&CoreError::ZeroTasks);
    }
}
