//! Model vocabulary for the **Do-All** problem of Kowalski & Shvartsman,
//! *Performing work with asynchronous processors: message-delay-sensitive
//! bounds* (PODC 2003; Information and Computation 203 (2005) 181–210).
//!
//! The Do-All problem: given `t` similar, idempotent tasks, perform them all
//! using `p` asynchronous message-passing processors, where an omniscient
//! adversary controls processor speeds, crashes (at least one processor
//! survives), and message delays of at most `d` time units (`d` unknown to
//! the processors).
//!
//! This crate defines the shared vocabulary used by the simulator
//! (`doall-sim`), the algorithms (`doall-algorithms`), and the threaded
//! runtime (`doall-runtime`):
//!
//! * [`ProcId`], [`TaskId`], [`JobId`] — strongly-typed identifiers;
//! * [`BitSet`] — the monotone bitset that is the only thing processors ever
//!   communicate (progress information only grows, so replicas merge by OR
//!   and no consistency issues arise — Section 5.1.2 of the paper);
//! * [`DoneSet`] — task-indexed knowledge of completed tasks;
//! * [`JobMap`] — the clustering of `t` tasks into at most `p` jobs used when
//!   `t > p` (Sections 5.1.3 and 6 of the paper);
//! * [`Message`] — the envelope carried by the network;
//! * [`DoAllProcess`] — the object-safe state-machine trait every algorithm
//!   implements: one call to [`DoAllProcess::step`] is one *local step* and
//!   is charged one unit of work (Definition 2.1);
//! * [`StepOutcome`] — what a step did (task performed / broadcast
//!   submitted);
//! * [`RunReport`] and the tallies implementing Definitions 2.1/2.2.
//!
//! # Work accounting contract
//!
//! One call to `step` is one local step and therefore one unit of work. A
//! step may perform at most one task **and** submit at most one broadcast;
//! folding the broadcast submission into the performing step keeps measured
//! work directly comparable to the `(d)`-contention bound of Lemma 6.1 (see
//! DESIGN.md §4 for the discussion). Processing the inbox is free within the
//! step, matching the paper's "unit of work to process multiple received
//! messages".

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitset;
mod error;
mod ids;
mod jobs;
mod knowledge;
mod message;
mod process;
mod report;

pub use bitset::BitSet;
pub use error::CoreError;
pub use ids::{JobId, ProcId, TaskId};
pub use jobs::{JobCursor, JobMap};
pub use knowledge::DoneSet;
pub use message::Message;
pub use process::{DoAllProcess, StepOutcome};
pub use report::{MessageTally, RunReport, WorkTally};

/// Instance parameters of a Do-All run: `p` processors, `t` tasks.
///
/// Validated at construction: both must be nonzero. The paper assumes `p`
/// and `t` are known to all processors, and the algorithms in this workspace
/// receive an `Instance` when instantiated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instance {
    processors: usize,
    tasks: usize,
}

impl Instance {
    /// Creates an instance with `p` processors and `t` tasks.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ZeroProcessors`] or [`CoreError::ZeroTasks`] if
    /// either parameter is zero.
    pub fn new(processors: usize, tasks: usize) -> Result<Self, CoreError> {
        if processors == 0 {
            return Err(CoreError::ZeroProcessors);
        }
        if tasks == 0 {
            return Err(CoreError::ZeroTasks);
        }
        Ok(Self { processors, tasks })
    }

    /// Number of processors `p`.
    #[must_use]
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Number of tasks `t`.
    #[must_use]
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// The number of *scheduling units* the algorithms operate on:
    /// `n = min{t, p}` (Section 6.1). When `t ≤ p` the unit is a task; when
    /// `t > p` tasks are clustered into `p` jobs of size at most `⌈t/p⌉`.
    #[must_use]
    pub fn units(&self) -> usize {
        self.processors.min(self.tasks)
    }

    /// The job map clustering this instance's tasks into [`Self::units`]
    /// jobs.
    #[must_use]
    pub fn job_map(&self) -> JobMap {
        JobMap::new(self.tasks, self.units())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_validates_zero() {
        assert_eq!(Instance::new(0, 5).unwrap_err(), CoreError::ZeroProcessors);
        assert_eq!(Instance::new(5, 0).unwrap_err(), CoreError::ZeroTasks);
    }

    #[test]
    fn instance_accessors() {
        let inst = Instance::new(4, 9).unwrap();
        assert_eq!(inst.processors(), 4);
        assert_eq!(inst.tasks(), 9);
        assert_eq!(inst.units(), 4);
    }

    #[test]
    fn units_is_min_of_p_and_t() {
        assert_eq!(Instance::new(10, 3).unwrap().units(), 3);
        assert_eq!(Instance::new(3, 10).unwrap().units(), 3);
        assert_eq!(Instance::new(7, 7).unwrap().units(), 7);
    }

    #[test]
    fn job_map_covers_all_tasks() {
        let inst = Instance::new(4, 10).unwrap();
        let jm = inst.job_map();
        assert_eq!(jm.job_count(), 4);
        let total: usize = (0..jm.job_count())
            .map(|j| jm.tasks_of(JobId::new(j)).len())
            .sum();
        assert_eq!(total, 10);
    }
}
