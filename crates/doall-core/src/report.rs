//! Work and message accounting (Definitions 2.1 and 2.2) and run reports.

use core::fmt;

/// Work tally per Definition 2.1: every completed local step of every
/// processor is one unit, summed from time 0 until σ (the first time all
/// tasks are performed *and* some processor knows it).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkTally {
    per_proc: Vec<u64>,
}

impl WorkTally {
    /// Creates a tally over `p` processors.
    #[must_use]
    pub fn new(processors: usize) -> Self {
        Self {
            per_proc: vec![0; processors],
        }
    }

    /// Charges one unit to processor `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn charge(&mut self, pid: usize) {
        self.per_proc[pid] += 1;
    }

    /// Total work `W` across all processors.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per_proc.iter().sum()
    }

    /// Work charged to each processor.
    #[must_use]
    pub fn per_processor(&self) -> &[u64] {
        &self.per_proc
    }

    /// Zeroes the tally for `processors` processors, reusing the
    /// allocation when the count allows — the arena-reset primitive for
    /// batched simulation runs.
    pub fn reset(&mut self, processors: usize) {
        self.per_proc.clear();
        self.per_proc.resize(processors, 0);
    }
}

/// Message tally per Definition 2.2: each point-to-point message is one
/// unit; a broadcast to `m` destinations counts `m`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageTally {
    sent: u64,
}

impl MessageTally {
    /// Creates an empty tally.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` point-to-point messages.
    pub fn charge(&mut self, n: u64) {
        self.sent += n;
    }

    /// Total message complexity `M`.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.sent
    }
}

/// The result of one execution of a Do-All algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Total work `W` (Definition 2.1), counted until σ.
    pub work: u64,
    /// Total message complexity `M` (Definition 2.2), counted until σ.
    pub messages: u64,
    /// The completion time σ (global time at which all tasks were performed
    /// and at least one processor knew it), or `None` if the run was cut off
    /// before completion.
    pub sigma: Option<u64>,
    /// Whether every task was actually performed (ground truth, not just
    /// local knowledge).
    pub completed: bool,
    /// Work charged to each processor individually.
    pub work_per_processor: Vec<u64>,
}

impl RunReport {
    /// Work normalized by the quadratic ceiling `p · t` — the headline
    /// metric of the paper: subquadratic solutions have ratio `o(1)` as the
    /// instance grows (for `d = o(t)`).
    #[must_use]
    pub fn work_ratio_to_quadratic(&self, p: usize, t: usize) -> f64 {
        self.work as f64 / (p as f64 * t as f64)
    }

    /// Messages per unit of work; Theorem 5.6 bounds this by `p` for DA.
    #[must_use]
    pub fn messages_per_work(&self) -> f64 {
        if self.work == 0 {
            0.0
        } else {
            self.messages as f64 / self.work as f64
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RunReport {{ work: {}, messages: {}, sigma: {}, completed: {} }}",
            self.work,
            self.messages,
            match self.sigma {
                Some(s) => s.to_string(),
                None => "-".to_string(),
            },
            self.completed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_tally_sums_per_processor() {
        let mut w = WorkTally::new(3);
        w.charge(0);
        w.charge(0);
        w.charge(2);
        assert_eq!(w.total(), 3);
        assert_eq!(w.per_processor(), &[2, 0, 1]);
    }

    #[test]
    fn message_tally_accumulates() {
        let mut m = MessageTally::new();
        m.charge(4);
        m.charge(0);
        m.charge(1);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn report_ratios() {
        let r = RunReport {
            work: 50,
            messages: 100,
            sigma: Some(10),
            completed: true,
            work_per_processor: vec![25, 25],
        };
        assert!((r.work_ratio_to_quadratic(10, 10) - 0.5).abs() < 1e-12);
        assert!((r.messages_per_work() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn report_display_mentions_fields() {
        let r = RunReport {
            work: 1,
            messages: 2,
            sigma: None,
            completed: false,
            work_per_processor: vec![1],
        };
        let s = r.to_string();
        assert!(s.contains("work: 1"));
        assert!(s.contains("sigma: -"));
    }

    #[test]
    fn zero_work_has_zero_message_ratio() {
        let r = RunReport {
            work: 0,
            messages: 0,
            sigma: None,
            completed: false,
            work_per_processor: vec![],
        };
        assert_eq!(r.messages_per_work(), 0.0);
    }
}
