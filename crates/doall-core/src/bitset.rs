//! A fixed-capacity monotone bitset.
//!
//! This is the only data structure processors ever communicate in the
//! algorithms of the paper: DA broadcasts its replicated progress tree
//! (a boolean array), PA algorithms broadcast their set of known-complete
//! tasks. Both are *monotone* — bits only ever go from 0 to 1 — so replicas
//! merge with a bitwise OR and "no issues of consistency arise"
//! (Section 5.1.2).

use core::fmt;

const WORD_BITS: usize = u64::BITS as usize;

/// A fixed-capacity set of bits with union (OR) merging.
///
/// The capacity is fixed at construction; out-of-range accesses panic, which
/// in this workspace always indicates a logic error (task/node indices are
/// validated at instance construction).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    len: usize,
    words: Vec<u64>,
    /// Cached population count, maintained incrementally so `count()` and
    /// `is_full()` are O(1) — these run on every simulator step.
    ones: usize,
}

impl BitSet {
    /// Creates an empty bitset with capacity for `len` bits.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
            ones: 0,
        }
    }

    /// The capacity (number of addressable bits).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the capacity is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The number of set bits.
    #[must_use]
    pub fn count(&self) -> usize {
        self.ones
    }

    /// Whether every bit is set.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.ones == self.len
    }

    /// Whether bit `i` is set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Sets bit `i`, returning `true` if it was previously clear.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range (len {})",
            self.len
        );
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        if *word & mask == 0 {
            *word |= mask;
            self.ones += 1;
            true
        } else {
            false
        }
    }

    /// Merges `other` into `self` by bitwise OR, returning `true` if any new
    /// bit was gained.
    ///
    /// This is the lattice join used when a processor receives a broadcast
    /// replica: knowledge only grows.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(
            self.len, other.len,
            "cannot union bitsets of different capacities"
        );
        // Word-parallel with a no-news fast path: gossip traffic is highly
        // redundant (most received replicas are subsets of what the
        // receiver already knows), so most words gain nothing. Testing the
        // diff first skips the popcount and the store — and lets the whole
        // word loop run branch-predicted-empty on a subset payload.
        let mut gained = 0usize;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let diff = *o & !*w;
            if diff != 0 {
                *w |= diff;
                gained += diff.count_ones() as usize;
            }
        }
        self.ones += gained;
        gained > 0
    }

    /// Removes every bit, keeping the capacity and the allocation — the
    /// arena-reset primitive used when a simulation recycles its
    /// ground-truth set across replicates.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Whether `self` contains every bit of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    #[must_use]
    pub fn is_superset(&self, other: &BitSet) -> bool {
        assert_eq!(
            self.len, other.len,
            "cannot compare bitsets of different capacities"
        );
        self.words
            .iter()
            .zip(&other.words)
            .all(|(w, o)| w & o == *o)
    }

    /// Iterator over the indices of set bits, in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * WORD_BITS;
            let len = self.len;
            BitIter { word: w, base }.take_while(move |&i| i < len)
        })
    }

    /// Iterator over the indices of clear bits, in increasing order.
    pub fn iter_zeros(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| !self.contains(i))
    }

    /// The index of the first clear bit, if any.
    #[must_use]
    pub fn first_zero(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != u64::MAX {
                let i = wi * WORD_BITS + (!w).trailing_zeros() as usize;
                if i < self.len {
                    return Some(i);
                }
            }
        }
        None
    }
}

struct BitIter {
    word: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSet({}/{}: ", self.ones, self.len)?;
        let mut first = true;
        for i in self.iter_ones().take(16) {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        if self.ones > 16 {
            write!(f, ",…")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let b = BitSet::new(130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count(), 0);
        assert!(!b.is_full());
        assert!(!b.contains(0));
        assert!(!b.contains(129));
    }

    #[test]
    fn insert_and_contains() {
        let mut b = BitSet::new(100);
        assert!(b.insert(63));
        assert!(b.insert(64));
        assert!(!b.insert(63), "double insert reports no change");
        assert!(b.contains(63));
        assert!(b.contains(64));
        assert!(!b.contains(65));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn union_gains_bits() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        b.insert(1);
        b.insert(69);
        assert!(a.union_with(&b));
        assert!(a.contains(69));
        assert_eq!(a.count(), 2);
        assert!(!a.union_with(&b), "idempotent union reports no change");
    }

    #[test]
    fn superset_relation() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(3);
        a.insert(7);
        b.insert(3);
        assert!(a.is_superset(&b));
        assert!(!b.is_superset(&a));
        assert!(a.is_superset(&a));
    }

    #[test]
    fn full_detection() {
        let mut b = BitSet::new(3);
        b.insert(0);
        b.insert(1);
        assert!(!b.is_full());
        b.insert(2);
        assert!(b.is_full());
    }

    #[test]
    fn iter_ones_in_order() {
        let mut b = BitSet::new(200);
        for i in [0, 5, 63, 64, 128, 199] {
            b.insert(i);
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 5, 63, 64, 128, 199]);
    }

    #[test]
    fn iter_zeros_complements_ones() {
        let mut b = BitSet::new(9);
        b.insert(2);
        b.insert(8);
        let zeros: Vec<usize> = b.iter_zeros().collect();
        assert_eq!(zeros, vec![0, 1, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn first_zero_skips_full_words() {
        let mut b = BitSet::new(130);
        for i in 0..64 {
            b.insert(i);
        }
        assert_eq!(b.first_zero(), Some(64));
        for i in 64..130 {
            b.insert(i);
        }
        assert_eq!(b.first_zero(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn contains_out_of_range_panics() {
        let b = BitSet::new(10);
        let _ = b.contains(10);
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn union_capacity_mismatch_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(11);
        a.union_with(&b);
    }

    #[test]
    fn debug_is_nonempty() {
        let mut b = BitSet::new(5);
        b.insert(2);
        let s = format!("{b:?}");
        assert!(s.contains("BitSet"));
        assert!(s.contains('2'));
    }
}
