//! Clustering of tasks into jobs for the `t > p` regime.
//!
//! "When the number of tasks `t′` exceeds the number of processors `p`, we
//! divide the tasks into jobs, where each job consists of at most `⌈t′/p⌉`
//! tasks" (Section 5.1.3; the same device is used for the PA family in
//! Section 6). A job is the scheduling unit; performing a job means
//! performing each of its constituent tasks, which takes one local step per
//! task.

use crate::{JobId, TaskId};
use core::ops::Range;

/// A partition of `t` tasks into `n` contiguous jobs of near-equal size
/// (sizes differ by at most one, every job nonempty, `n ≤ t`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobMap {
    tasks: usize,
    jobs: usize,
}

impl JobMap {
    /// Partitions `tasks` tasks into `min(max_jobs, tasks)` jobs.
    ///
    /// # Panics
    ///
    /// Panics if `tasks == 0` or `max_jobs == 0`; instances are validated
    /// upstream so this indicates a logic error.
    #[must_use]
    pub fn new(tasks: usize, max_jobs: usize) -> Self {
        assert!(tasks > 0, "JobMap requires at least one task");
        assert!(max_jobs > 0, "JobMap requires at least one job");
        Self {
            tasks,
            jobs: max_jobs.min(tasks),
        }
    }

    /// Number of jobs `n`.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.jobs
    }

    /// Number of underlying tasks `t`.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.tasks
    }

    /// The largest job size, `⌈t/n⌉`.
    #[must_use]
    pub fn max_job_size(&self) -> usize {
        self.tasks.div_ceil(self.jobs)
    }

    /// The range of task indices belonging to job `job`.
    ///
    /// Jobs are contiguous: job `j` covers tasks
    /// `[j·⌊t/n⌋ + min(j, t mod n), …)`, with the first `t mod n` jobs one
    /// task larger.
    ///
    /// # Panics
    ///
    /// Panics if `job` is out of range.
    #[must_use]
    pub fn tasks_of(&self, job: JobId) -> Range<usize> {
        let j = job.index();
        assert!(j < self.jobs, "job {j} out of range (n = {})", self.jobs);
        let base = self.tasks / self.jobs;
        let extra = self.tasks % self.jobs;
        let lo = j * base + j.min(extra);
        let hi = lo + base + usize::from(j < extra);
        lo..hi
    }

    /// The job containing task `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    #[must_use]
    pub fn job_of(&self, task: TaskId) -> JobId {
        let i = task.index();
        assert!(i < self.tasks, "task {i} out of range (t = {})", self.tasks);
        let base = self.tasks / self.jobs;
        let extra = self.tasks % self.jobs;
        let wide = extra * (base + 1);
        let j = if i < wide {
            i / (base + 1)
        } else {
            extra + (i - wide) / base
        };
        JobId::new(j)
    }

    /// A cursor that steps through the constituent tasks of `job`, one task
    /// per local step.
    #[must_use]
    pub fn cursor(&self, job: JobId) -> JobCursor {
        JobCursor {
            range: self.tasks_of(job),
        }
    }
}

/// Step-wise iterator over the tasks of a job.
///
/// Each call to [`JobCursor::next_task`] yields one constituent task; an
/// algorithm performing a job executes one such task per local step, so a
/// job of `k` tasks costs `k` work units, as required by the "a single job
/// takes `O(t/p)` units of work" accounting of Theorem 5.5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobCursor {
    range: Range<usize>,
}

impl JobCursor {
    /// The next constituent task, or `None` when the job is finished.
    pub fn next_task(&mut self) -> Option<TaskId> {
        self.range.next().map(TaskId::new)
    }

    /// Number of tasks remaining in the job.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.range.len()
    }

    /// Whether the job has been fully executed.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.range.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition() {
        let jm = JobMap::new(12, 4);
        assert_eq!(jm.job_count(), 4);
        assert_eq!(jm.max_job_size(), 3);
        for j in 0..4 {
            assert_eq!(jm.tasks_of(JobId::new(j)).len(), 3);
        }
        assert_eq!(jm.tasks_of(JobId::new(0)), 0..3);
        assert_eq!(jm.tasks_of(JobId::new(3)), 9..12);
    }

    #[test]
    fn uneven_partition_sizes_differ_by_at_most_one() {
        let jm = JobMap::new(10, 4);
        let sizes: Vec<usize> = (0..4).map(|j| jm.tasks_of(JobId::new(j)).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert_eq!(*sizes.iter().max().unwrap(), 3);
        assert_eq!(*sizes.iter().min().unwrap(), 2);
        assert_eq!(jm.max_job_size(), 3);
    }

    #[test]
    fn fewer_tasks_than_jobs_caps_job_count() {
        let jm = JobMap::new(3, 10);
        assert_eq!(jm.job_count(), 3);
        for j in 0..3 {
            assert_eq!(jm.tasks_of(JobId::new(j)).len(), 1);
        }
    }

    #[test]
    fn job_of_inverts_tasks_of() {
        for (t, n) in [(10, 4), (12, 4), (7, 7), (100, 9), (5, 1)] {
            let jm = JobMap::new(t, n);
            for j in 0..jm.job_count() {
                for task in jm.tasks_of(JobId::new(j)) {
                    assert_eq!(
                        jm.job_of(TaskId::new(task)),
                        JobId::new(j),
                        "t={t} n={n} task={task}"
                    );
                }
            }
        }
    }

    #[test]
    fn ranges_are_contiguous_and_cover() {
        let jm = JobMap::new(23, 5);
        let mut next = 0;
        for j in 0..jm.job_count() {
            let r = jm.tasks_of(JobId::new(j));
            assert_eq!(r.start, next);
            assert!(!r.is_empty());
            next = r.end;
        }
        assert_eq!(next, 23);
    }

    #[test]
    fn cursor_walks_all_tasks() {
        let jm = JobMap::new(10, 3);
        let mut c = jm.cursor(JobId::new(0));
        assert_eq!(c.remaining(), 4);
        let mut seen = Vec::new();
        while let Some(t) = c.next_task() {
            seen.push(t.index());
        }
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!(c.is_finished());
        assert_eq!(c.next_task(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tasks_of_out_of_range_panics() {
        let jm = JobMap::new(4, 2);
        let _ = jm.tasks_of(JobId::new(2));
    }
}
