//! Declarative scenario grids: algorithm × adversary × (p, t) × d × seed
//! cross-products, with a parse/render round-trippable textual spec and
//! deterministic per-cell seeding.
//!
//! A [`Grid`] is the unit of experiment description; [`Grid::cells`]
//! expands it into [`Cell`]s, each of which names everything needed to
//! reproduce its runs: string keys for the algorithm and adversary (see
//! [`build_algorithm`] / [`build_adversary`]), the instance shape, the
//! delay bound `d`, the replicate count, and a cell seed derived purely
//! from the cell's parameters — never from execution order — so a grid
//! run on one thread and on sixteen produces bit-identical results.

use doall_algorithms::{Algorithm, Da, ObliDo, PaDet, PaGossip, PaRan1, PaRan2, SoloAll};
use doall_core::Instance;
use doall_perms::structured::{affine_schedules, rotation_schedules};
use doall_perms::{search, Schedules};
use doall_sim::adversary::{
    BurstyDelay, CrashSchedule, FixedDelay, LowerBoundAdversary, RandomDelay,
    RandomizedLbAdversary, StageAligned, UnitDelay,
};
use doall_sim::Adversary;
use std::fmt;

/// Algorithm key that skips simulation: cells carry only derived
/// (combinatorial) metrics. Used by the pure-contention experiments.
pub const ALGO_NONE: &str = "none";

/// An error from parsing a grid spec or building a cell's components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridError(String);

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for GridError {}

fn err(msg: impl Into<String>) -> GridError {
    GridError(msg.into())
}

/// One point of a grid: a fully specified scenario plus its replicate
/// count and deterministic seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Algorithm key (see [`build_algorithm`]).
    pub algo: String,
    /// Adversary key (see [`build_adversary`]).
    pub adversary: String,
    /// Processors.
    pub p: usize,
    /// Tasks.
    pub t: usize,
    /// Delay bound handed to the adversary.
    pub d: u64,
    /// Number of replicate runs (seeds `0..seeds`).
    pub seeds: u64,
    /// Cell seed, derived from the grid's base seed and the cell's own
    /// parameters (not its position or execution order).
    pub cell_seed: u64,
}

impl Cell {
    /// The seed of replicate `k` of this cell.
    #[must_use]
    pub fn run_seed(&self, k: u64) -> u64 {
        splitmix64(self.cell_seed ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// SplitMix64 — the standard seed expander; deterministic and
/// platform-independent.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over bytes — used to hash cell parameters into the cell seed.
fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A declarative scenario grid: the cross-product of every axis.
///
/// The textual spec is a space-separated list of `key=value` fields with
/// comma-separated lists; [`Grid::parse`] and the [`fmt::Display`] impl
/// round-trip:
///
/// ```text
/// algos=da:3,paran1 advs=stage shapes=32x32,64x256 ds=1,4,16 seeds=5 seed=0
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    /// Algorithm keys.
    pub algos: Vec<String>,
    /// Adversary keys.
    pub adversaries: Vec<String>,
    /// Instance shapes `(p, t)`.
    pub shapes: Vec<(usize, usize)>,
    /// Delay bounds.
    pub ds: Vec<u64>,
    /// Replicates per cell.
    pub seeds: u64,
    /// Base seed mixed into every cell seed.
    pub base_seed: u64,
}

impl Grid {
    /// Builds a grid from slices (spec-construction helper for the
    /// experiment registry).
    #[must_use]
    pub fn new(
        algos: &[&str],
        adversaries: &[&str],
        shapes: &[(usize, usize)],
        ds: &[u64],
        seeds: u64,
        base_seed: u64,
    ) -> Self {
        Self {
            algos: algos.iter().map(|s| (*s).to_string()).collect(),
            adversaries: adversaries.iter().map(|s| (*s).to_string()).collect(),
            shapes: shapes.to_vec(),
            ds: ds.to_vec(),
            seeds,
            base_seed,
        }
    }

    /// Parses the textual spec format rendered by [`fmt::Display`].
    ///
    /// # Errors
    ///
    /// Returns a [`GridError`] for unknown fields, malformed values,
    /// empty axes, or unknown algorithm/adversary keys.
    pub fn parse(spec: &str) -> Result<Self, GridError> {
        let mut algos: Option<Vec<String>> = None;
        let mut adversaries: Option<Vec<String>> = None;
        let mut shapes: Option<Vec<(usize, usize)>> = None;
        let mut ds: Option<Vec<u64>> = None;
        let mut seeds = 1u64;
        let mut base_seed = 0u64;
        for field in spec.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| err(format!("grid field `{field}` is not key=value")))?;
            match key {
                "algos" => algos = Some(value.split(',').map(str::to_string).collect()),
                "advs" => adversaries = Some(value.split(',').map(str::to_string).collect()),
                "shapes" => {
                    let mut parsed = Vec::new();
                    for shape in value.split(',') {
                        let (p, t) = shape
                            .split_once('x')
                            .ok_or_else(|| err(format!("shape `{shape}` is not PxT")))?;
                        let p: usize = p
                            .parse()
                            .map_err(|_| err(format!("shape `{shape}`: bad processor count")))?;
                        let t: usize = t
                            .parse()
                            .map_err(|_| err(format!("shape `{shape}`: bad task count")))?;
                        if p == 0 || t == 0 {
                            return Err(err(format!("shape `{shape}` must be positive")));
                        }
                        parsed.push((p, t));
                    }
                    shapes = Some(parsed);
                }
                "ds" => {
                    let mut parsed = Vec::new();
                    for d in value.split(',') {
                        let d: u64 = d
                            .parse()
                            .map_err(|_| err(format!("d `{d}` is not a positive integer")))?;
                        if d == 0 {
                            return Err(err("d must be at least 1"));
                        }
                        parsed.push(d);
                    }
                    ds = Some(parsed);
                }
                "seeds" => {
                    seeds = value
                        .parse()
                        .map_err(|_| err(format!("seeds `{value}` is not a number")))?;
                    if seeds == 0 {
                        return Err(err("seeds must be at least 1"));
                    }
                }
                "seed" => {
                    base_seed = value
                        .parse()
                        .map_err(|_| err(format!("seed `{value}` is not a number")))?;
                }
                other => return Err(err(format!("unknown grid field `{other}`"))),
            }
        }
        let grid = Self {
            algos: algos.ok_or_else(|| err("grid needs algos=..."))?,
            adversaries: adversaries.unwrap_or_else(|| vec!["stage".to_string()]),
            shapes: shapes.ok_or_else(|| err("grid needs shapes=PxT,..."))?,
            ds: ds.unwrap_or_else(|| vec![1]),
            seeds,
            base_seed,
        };
        grid.validate()?;
        Ok(grid)
    }

    /// Checks every key and axis without running anything.
    ///
    /// # Errors
    ///
    /// Returns a [`GridError`] naming the first bad key or empty axis.
    pub fn validate(&self) -> Result<(), GridError> {
        if self.algos.is_empty() || self.adversaries.is_empty() {
            return Err(err("grid axes must be non-empty"));
        }
        if self.shapes.is_empty() || self.ds.is_empty() {
            return Err(err("grid needs at least one shape and one d"));
        }
        if self.seeds == 0 {
            return Err(err("seeds must be at least 1"));
        }
        for key in &self.algos {
            validate_algo_key(key)?;
        }
        for key in &self.adversaries {
            validate_adversary_key(key)?;
        }
        // Duplicate axis values would expand to duplicate cells with
        // identical seeds — double-counted work for the engine and
        // duplicate cell keys the baseline comparator rightly rejects.
        fn unique_axis<T: Ord>(values: &[T], axis: &str) -> Result<(), GridError> {
            let mut seen = std::collections::BTreeSet::new();
            for v in values {
                if !seen.insert(v) {
                    return Err(err(format!("duplicate value in {axis} axis")));
                }
            }
            Ok(())
        }
        unique_axis(&self.algos, "algos")?;
        unique_axis(&self.adversaries, "advs")?;
        unique_axis(&self.shapes, "shapes")?;
        unique_axis(&self.ds, "ds")?;
        Ok(())
    }

    /// Expands the cross-product into cells, in canonical order
    /// (algorithm-major, then adversary, shape, d).
    #[must_use]
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for algo in &self.algos {
            for adversary in &self.adversaries {
                for &(p, t) in &self.shapes {
                    for &d in &self.ds {
                        let mut h = fnv1a(algo.as_bytes(), 0xcbf2_9ce4_8422_2325);
                        h = fnv1a(adversary.as_bytes(), h);
                        h = fnv1a(&(p as u64).to_le_bytes(), h);
                        h = fnv1a(&(t as u64).to_le_bytes(), h);
                        h = fnv1a(&d.to_le_bytes(), h);
                        out.push(Cell {
                            algo: algo.clone(),
                            adversary: adversary.clone(),
                            p,
                            t,
                            d,
                            seeds: self.seeds,
                            cell_seed: splitmix64(h ^ self.base_seed),
                        });
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shapes: Vec<String> = self
            .shapes
            .iter()
            .map(|(p, t)| format!("{p}x{t}"))
            .collect();
        let ds: Vec<String> = self.ds.iter().map(u64::to_string).collect();
        write!(
            f,
            "algos={} advs={} shapes={} ds={} seeds={} seed={}",
            self.algos.join(","),
            self.adversaries.join(","),
            shapes.join(","),
            ds.join(","),
            self.seeds,
            self.base_seed
        )
    }
}

/// Validates an algorithm key without building it (no instance needed).
///
/// # Errors
///
/// Returns a [`GridError`] for an unknown key or bad parameter.
pub fn validate_algo_key(key: &str) -> Result<(), GridError> {
    if let Some(q) = key.strip_prefix("da:") {
        let q: usize = q
            .parse()
            .map_err(|_| err(format!("da:<q>: `{q}` is not a number")))?;
        if !(2..=8).contains(&q) {
            return Err(err("da:<q> supports 2 ≤ q ≤ 8 (certified schedule search)"));
        }
        return Ok(());
    }
    if let Some(fanout) = key.strip_prefix("gossip:") {
        let fanout: usize = fanout
            .parse()
            .map_err(|_| err(format!("gossip:<fanout>: `{fanout}` is not a number")))?;
        if fanout == 0 {
            return Err(err("gossip fanout must be at least 1"));
        }
        return Ok(());
    }
    match key {
        "soloall" | "oblido" | "oblido-searched" | "oblido-worst" | "paran1" | "paran2"
        | "padet" | "padet-rot" | "padet-affine" | ALGO_NONE => Ok(()),
        other => Err(err(format!("unknown algorithm `{other}`"))),
    }
}

/// Validates an adversary key without building it.
///
/// # Errors
///
/// Returns a [`GridError`] for an unknown key or bad parameter.
pub fn validate_adversary_key(key: &str) -> Result<(), GridError> {
    if let Some(pct) = key.strip_prefix("crash:") {
        let pct: u64 = pct
            .parse()
            .map_err(|_| err(format!("crash:<pct>: `{pct}` is not a number")))?;
        if pct > 100 {
            return Err(err("crash:<pct> takes a percentage 0–100"));
        }
        return Ok(());
    }
    match key {
        "unit" | "fixed" | "random" | "stage" | "bursty" | "lb" | "lbrand" => Ok(()),
        other => Err(err(format!("unknown adversary `{other}`"))),
    }
}

/// Builds the schedule list an algorithm key implies, when it has one —
/// used by experiments whose derived metrics (contention, `(d)`-Cont)
/// refer to the very list the algorithm ran with.
#[must_use]
pub fn schedules_for_algo(key: &str, instance: Instance, seed: u64) -> Option<Schedules> {
    let n = instance.units();
    match key {
        "oblido" => Some(Schedules::random(n, n, seed)),
        "oblido-searched" => Some(search::low_contention_list(n, seed).0),
        "oblido-worst" => Some(Schedules::worst(n, n)),
        "padet" => Some(PaDet::random_for(instance, seed).schedules().clone()),
        "padet-rot" => Some(rotation_schedules(instance.processors(), instance.tasks())),
        "padet-affine" => affine_schedules(instance.processors(), instance.tasks(), seed).ok(),
        _ => None,
    }
}

/// Builds the algorithm named by `key` for `instance`, deriving any
/// randomness from `seed`.
///
/// Keys: `soloall`, `oblido` (random list), `oblido-searched` (certified
/// low-contention list), `oblido-worst` (identical permutations),
/// `da:<q>`, `paran1`, `paran2`, `padet` (random list), `padet-rot`
/// (rotations), `padet-affine` (affine maps; requires prime `t`),
/// `gossip:<fanout>`, and `none` (skip simulation).
///
/// # Errors
///
/// Returns a [`GridError`] for an unknown key, a bad parameter, or a key
/// whose preconditions the instance does not meet (e.g. `padet-affine`
/// over a composite task count).
pub fn build_algorithm(
    key: &str,
    instance: Instance,
    seed: u64,
) -> Result<Box<dyn Algorithm>, GridError> {
    validate_algo_key(key)?;
    if let Some(q) = key.strip_prefix("da:") {
        let q: usize = q.parse().expect("validated");
        return Ok(Box::new(Da::with_default_schedules(q, seed)));
    }
    if let Some(fanout) = key.strip_prefix("gossip:") {
        let fanout: usize = fanout.parse().expect("validated");
        return Ok(Box::new(PaGossip::new(seed, fanout)));
    }
    Ok(match key {
        "soloall" => Box::new(SoloAll::new()),
        "oblido" | "oblido-searched" | "oblido-worst" => Box::new(ObliDo::new(
            schedules_for_algo(key, instance, seed).expect("oblido keys carry schedules"),
        )),
        "paran1" => Box::new(PaRan1::new(seed)),
        "paran2" => Box::new(PaRan2::new(seed)),
        "padet" => Box::new(PaDet::random_for(instance, seed)),
        "padet-rot" => Box::new(PaDet::new(
            schedules_for_algo(key, instance, seed).expect("rotations always exist"),
        )),
        "padet-affine" => Box::new(PaDet::new(
            schedules_for_algo(key, instance, seed)
                .ok_or_else(|| err("padet-affine requires a prime task count"))?,
        )),
        ALGO_NONE => return Err(err("algorithm `none` skips simulation; nothing to build")),
        _ => unreachable!("validated"),
    })
}

/// The number of processors a `crash:<pct>` adversary crashes on `p`
/// processors: `pct`% rounded half-up, capped at `p − 1` so at least one
/// survivor remains (the paper's only fault restriction).
///
/// The old truncating division (`p·pct/100`) silently crashed *nobody*
/// for small grids — `crash:10` at `p = 5` rounded 0.5 down to 0.
#[must_use]
pub fn crash_count(pct: u64, p: usize) -> usize {
    (((p as u64 * pct + 50) / 100) as usize).min(p - 1)
}

/// The crash schedule a `crash:<pct>` adversary uses for a `(p, t)`
/// instance under tick budget `max_ticks`: `plan[i] = Some(τ)` crashes
/// processor `i` at tick `τ`, `None` means it survives. Deterministic in
/// its arguments (no seed), so the schedule — and hence the recorded
/// crash count — is identical across a cell's replicates.
///
/// Crashes are staggered evenly across the window `[1, W]`, `W =
/// min(max_ticks − 1, ⌈t/p⌉)`. No execution completes in fewer than
/// `⌈t/p⌉` ticks (a processor performs at most one task per step), so
/// the whole stagger lands while the run is still in progress — the old
/// fixed `5 + 3i` schedule ignored the horizon, and on short smoke runs
/// most scheduled crashes fell after completion, leaving "crash" cells
/// exercising no crashes at all.
#[must_use]
pub fn crash_plan(pct: u64, p: usize, t: usize, max_ticks: u64) -> Vec<Option<u64>> {
    let count = crash_count(pct, p);
    let floor = t.div_ceil(p) as u64;
    let window = floor.min(max_ticks.saturating_sub(1)).max(1);
    (0..p)
        .map(|i| (i < count).then(|| 1 + (i as u64 * (window - 1)) / count.max(1) as u64))
        .collect()
}

/// Builds the adversary named by `key` with delay bound `d` for a
/// `(p, t)` instance, deriving any randomness from `seed`. `max_ticks`
/// is the run's tick budget — `crash:<pct>` scales its stagger window to
/// it (see [`crash_plan`]); the other keys ignore it.
///
/// Keys: `unit`, `fixed`, `random`, `stage`, `bursty`, `lb` (Theorem 3.1
/// dry-run adversary), `lbrand` (Theorem 3.4 delay-on-touch), and
/// `crash:<pct>` (random delays ≤ `d` plus staggered crashes of `pct`%
/// of the processors — rounded half-up, capped at `p − 1` so one
/// survivor remains).
///
/// # Errors
///
/// Returns a [`GridError`] for an unknown key or bad parameter.
pub fn build_adversary(
    key: &str,
    p: usize,
    t: usize,
    d: u64,
    seed: u64,
    max_ticks: u64,
) -> Result<Box<dyn Adversary>, GridError> {
    validate_adversary_key(key)?;
    if let Some(pct) = key.strip_prefix("crash:") {
        let pct: u64 = pct.parse().expect("validated");
        let delays = Box::new(RandomDelay::new(d, seed));
        if crash_count(pct, p) == 0 {
            return Ok(delays);
        }
        return Ok(Box::new(CrashSchedule::new(
            delays,
            crash_plan(pct, p, t, max_ticks),
        )));
    }
    Ok(match key {
        "unit" => Box::new(UnitDelay),
        "fixed" => Box::new(FixedDelay::new(d)),
        "random" => Box::new(RandomDelay::new(d, seed)),
        "stage" => Box::new(StageAligned::new(d)),
        "bursty" => Box::new(BurstyDelay::new(d, (d / 2).max(1))),
        "lb" => Box::new(LowerBoundAdversary::new(d, t)),
        "lbrand" => Box::new(RandomizedLbAdversary::new(d, t, seed)),
        _ => unreachable!("validated"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_parse_display_round_trips() {
        let specs = [
            "algos=da:3,paran1 advs=stage,unit shapes=32x32,64x256 ds=1,4,16 seeds=5 seed=0",
            "algos=soloall advs=crash:50 shapes=8x8 ds=2 seeds=1 seed=42",
            "algos=none advs=unit shapes=8x64 ds=1,4 seeds=3 seed=7",
        ];
        for spec in specs {
            let grid = Grid::parse(spec).unwrap();
            assert_eq!(grid.to_string(), spec, "canonical spec round-trips");
            assert_eq!(Grid::parse(&grid.to_string()).unwrap(), grid);
        }
    }

    #[test]
    fn grid_parse_defaults() {
        let grid = Grid::parse("algos=paran1 shapes=4x8").unwrap();
        assert_eq!(grid.adversaries, vec!["stage"]);
        assert_eq!(grid.ds, vec![1]);
        assert_eq!(grid.seeds, 1);
        assert_eq!(grid.base_seed, 0);
    }

    #[test]
    fn grid_parse_rejects_garbage() {
        for bad in [
            "algos=paran1",                            // no shapes
            "shapes=4x8",                              // no algos
            "algos=paran1 shapes=4",                   // bad shape
            "algos=paran1 shapes=0x8",                 // zero p
            "algos=paran1 shapes=4x8 ds=0",            // zero d
            "algos=paran1 shapes=4x8 seeds=0",         // zero seeds
            "algos=paran1 shapes=4x8 frob=1",          // unknown field
            "algos=paran1 shapes=4x8 ds",              // not key=value
            "algos=frobnicate shapes=4x8",             // unknown algo
            "algos=paran1 advs=frobnicate shapes=4x8", // unknown adversary
            "algos=da:99 shapes=4x8",                  // q out of range
            "algos=gossip:0 shapes=4x8",               // zero fanout
            "algos=paran1 advs=crash:101 shapes=4x8",  // pct > 100
            "algos=paran1,paran1 shapes=4x8",          // duplicate algo
            "algos=paran1 advs=unit,unit shapes=4x8",  // duplicate adversary
            "algos=paran1 shapes=4x8,4x8",             // duplicate shape
            "algos=paran1 shapes=4x8 ds=1,1",          // duplicate d
        ] {
            assert!(Grid::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn cells_expand_the_cross_product_in_canonical_order() {
        let grid = Grid::parse("algos=paran1,soloall advs=stage shapes=4x8 ds=1,2 seeds=2 seed=0")
            .unwrap();
        let cells = grid.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].algo, "paran1");
        assert_eq!(cells[0].d, 1);
        assert_eq!(cells[1].d, 2);
        assert_eq!(cells[2].algo, "soloall");
        assert!(cells.iter().all(|c| c.seeds == 2));
    }

    #[test]
    fn cell_seeds_depend_on_parameters_not_position() {
        let a =
            Grid::parse("algos=paran1,soloall advs=stage shapes=4x8 ds=1 seeds=1 seed=9").unwrap();
        let b =
            Grid::parse("algos=soloall,paran1 advs=stage shapes=4x8 ds=1 seeds=1 seed=9").unwrap();
        let find =
            |cells: &[Cell], algo: &str| cells.iter().find(|c| c.algo == algo).unwrap().cell_seed;
        let (ca, cb) = (a.cells(), b.cells());
        assert_eq!(find(&ca, "paran1"), find(&cb, "paran1"));
        assert_eq!(find(&ca, "soloall"), find(&cb, "soloall"));
        assert_ne!(find(&ca, "paran1"), find(&ca, "soloall"));
    }

    #[test]
    fn run_seeds_differ_per_replicate_but_are_stable() {
        let cell = Grid::parse("algos=paran1 shapes=4x8 seeds=3")
            .unwrap()
            .cells()
            .remove(0);
        assert_ne!(cell.run_seed(0), cell.run_seed(1));
        assert_eq!(cell.run_seed(2), cell.run_seed(2));
    }

    #[test]
    fn builds_every_documented_key() {
        let instance = Instance::new(5, 5).unwrap();
        for key in [
            "soloall",
            "oblido",
            "oblido-searched",
            "oblido-worst",
            "da:2",
            // da:5..=8 are valid too but their certified schedule search is
            // too slow for a debug-mode unit test; CI's release smoke run
            // exercises them via e13.
            "da:4",
            "paran1",
            "paran2",
            "padet",
            "padet-rot",
            "padet-affine",
            "gossip:2",
        ] {
            assert!(build_algorithm(key, instance, 1).is_ok(), "{key}");
        }
        for key in [
            "unit",
            "fixed",
            "random",
            "stage",
            "bursty",
            "lb",
            "lbrand",
            "crash:0",
            "crash:50",
            "crash:100",
        ] {
            assert!(build_adversary(key, 5, 5, 2, 1, 1_000).is_ok(), "{key}");
        }
    }

    #[test]
    fn none_key_validates_but_does_not_build() {
        assert!(validate_algo_key(ALGO_NONE).is_ok());
        let instance = Instance::new(2, 2).unwrap();
        assert!(build_algorithm(ALGO_NONE, instance, 0).is_err());
    }

    #[test]
    fn padet_affine_requires_prime_tasks() {
        let composite = Instance::new(4, 8).unwrap();
        assert!(build_algorithm("padet-affine", composite, 0).is_err());
        let prime = Instance::new(4, 7).unwrap();
        assert!(build_algorithm("padet-affine", prime, 0).is_ok());
    }

    #[test]
    fn crash_adversary_leaves_a_survivor() {
        // crash:100 on p=1 must not try to crash everyone.
        assert!(build_adversary("crash:100", 1, 4, 2, 0, 1_000).is_ok());
        for p in 1..=9 {
            assert!(crash_count(100, p) < p, "p={p}");
            let survivors = crash_plan(100, p, 4 * p, 1_000)
                .iter()
                .filter(|c| c.is_none())
                .count();
            assert!(survivors >= 1, "p={p}");
        }
    }

    #[test]
    fn crash_count_rounds_half_up() {
        // The old truncating division crashed nobody at p=5, pct=10.
        assert_eq!(crash_count(10, 5), 1, "0.5 rounds up");
        assert_eq!(crash_count(10, 4), 0, "0.4 rounds down");
        assert_eq!(crash_count(50, 5), 3, "2.5 rounds up");
        assert_eq!(crash_count(50, 8), 4);
        assert_eq!(crash_count(0, 8), 0);
        assert_eq!(crash_count(100, 8), 7, "capped at p − 1");
    }

    #[test]
    fn crash_plan_fits_the_completion_window() {
        // No run finishes before ⌈t/p⌉ ticks, so every scheduled crash
        // must land in [1, ⌈t/p⌉] to be guaranteed to fire.
        for (p, t, max_ticks) in [(8usize, 32usize, 2_000_000u64), (8, 32, 10), (3, 7, 4)] {
            let plan = crash_plan(100, p, t, max_ticks);
            let window = (t.div_ceil(p) as u64).min(max_ticks - 1).max(1);
            let ticks: Vec<u64> = plan.iter().flatten().copied().collect();
            assert_eq!(ticks.len(), crash_count(100, p));
            assert!(
                ticks.iter().all(|&tick| (1..=window).contains(&tick)),
                "p={p} t={t} max_ticks={max_ticks}: {ticks:?} outside [1, {window}]"
            );
            assert_eq!(ticks[0], 1, "the first crash fires as early as possible");
        }
        // Old bug shape: a tiny tick budget must pull the stagger in.
        let tight = crash_plan(100, 8, 1024, 5);
        assert!(tight.iter().flatten().all(|&tick| tick <= 4));
    }
}
