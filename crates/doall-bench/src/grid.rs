//! Declarative scenario grids: algorithm × adversary × (p, t) × d × seed
//! cross-products, with a parse/render round-trippable textual spec and
//! deterministic per-cell seeding.
//!
//! A [`Grid`] is the unit of experiment description; [`Grid::cells`]
//! expands it into [`Cell`]s, each of which names everything needed to
//! reproduce its runs: a string key for the algorithm (see
//! [`build_algorithm`]), a structured [`AdversarySpec`] (see
//! [`build_adversary`]), the instance shape, the delay bound `d`, the
//! replicate count, and a cell seed derived purely from the cell's
//! parameters — never from execution order — so a grid run on one thread
//! and on sixteen produces bit-identical results.
//!
//! Adversaries are *parameterized*: the grid grammar exposes each
//! adversary family's own knobs (`bursty:<period>`, `crash:<pct>@<stagger>`,
//! `lb:<stage>`, `lbrand:<stage>`, `straggler:<pct>:<slowdown>`), with
//! bare legacy keys (`bursty`, `crash:25`, `lb`, …) still parsing to the
//! documented defaults. Numeric knobs are canonicalized at parse time
//! (`crash:07` ≡ `crash:7`), so one adversary has exactly one rendered
//! spelling — and therefore one cell identity in sweep output and
//! baseline comparison.

use doall_algorithms::{Algorithm, Da, ObliDo, PaDet, PaGossip, PaRan1, PaRan2, SoloAll};
use doall_core::Instance;
use doall_perms::structured::{affine_schedules, rotation_schedules};
use doall_perms::{search, Schedules};
use doall_sim::adversary::{
    BurstyDelay, CrashSchedule, FixedDelay, LowerBoundAdversary, RandomDelay,
    RandomizedLbAdversary, StageAligned, Stragglers, UnitDelay,
};
use doall_sim::Adversary;
use std::fmt;

/// Algorithm key that skips simulation: cells carry only derived
/// (combinatorial) metrics. Used by the pure-contention experiments.
pub const ALGO_NONE: &str = "none";

/// An error from parsing a grid spec or building a cell's components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridError(String);

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for GridError {}

fn err(msg: impl Into<String>) -> GridError {
    GridError(msg.into())
}

/// Default straggler percentage for a bare `straggler` key.
pub const DEFAULT_STRAGGLER_PCT: u64 = 25;
/// Default straggler slowdown factor for a bare `straggler` key.
pub const DEFAULT_STRAGGLER_SLOWDOWN: u64 = 2;

/// How a `crash:<pct>@<stagger>` adversary places its crashes inside the
/// guaranteed-to-fire window `[1, W]` (see [`crash_plan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum CrashStagger {
    /// Crashes spread evenly across `[1, W]` — the default, and the only
    /// behaviour before the stagger became a knob.
    #[default]
    Even,
    /// Every crash fires at the same mid-window tick `⌈W/2⌉` — one
    /// correlated burst while the run is in full swing.
    Burst,
    /// Every crash fires at tick 1 — the earliest legal moment, so the
    /// survivors run the whole execution short-handed.
    Front,
}

impl CrashStagger {
    /// The grammar token (`even` / `burst` / `front`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CrashStagger::Even => "even",
            CrashStagger::Burst => "burst",
            CrashStagger::Front => "front",
        }
    }

    fn parse(s: &str) -> Result<Self, GridError> {
        match s {
            "even" => Ok(CrashStagger::Even),
            "burst" => Ok(CrashStagger::Burst),
            "front" => Ok(CrashStagger::Front),
            other => Err(err(format!(
                "crash stagger `{other}` is not one of even|burst|front"
            ))),
        }
    }
}

/// A structured adversary key: the adversary family plus its own knobs.
///
/// This is what grids sweep over — the textual grammar (parsed by
/// [`AdversarySpec::parse`], rendered by the `Display` impl) is:
///
/// | Key | Knobs | Bare-key default |
/// |---|---|---|
/// | `unit`, `fixed`, `random`, `stage` | — | — |
/// | `bursty[:<period>]` | phase length of the square wave | `max(d/2, 1)` (derived from the cell's `d`) |
/// | `lb[:<stage>]` | stage length `L` (clamped to `≤ d` at build) | `min(d, max(⌊t/6⌋, 1))` (Theorem 3.1) |
/// | `lbrand[:<stage>]` | stage length `L` (clamped to `≤ d` at build) | `min(d, max(⌊t/6⌋, 1))` (Theorem 3.4) |
/// | `crash:<pct>[@<stagger>]` | percentage crashed, stagger ∈ even\|burst\|front | stagger `even` |
/// | `straggler[:<pct>[:<slowdown>]]` | percentage slowed, slowdown factor | pct 25, slowdown 2 |
///
/// Parsing canonicalizes numeric knobs (`crash:07` parses to the same
/// spec as `crash:7`) and elides default knobs on render (`crash:25@even`
/// renders as `crash:25`), so every spec value has exactly one `Display`
/// spelling — the string used for cell identity, seeding, and baseline
/// matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AdversarySpec {
    /// Every message delayed exactly 1 tick (the benign baseline).
    Unit,
    /// Every message delayed exactly `d` ticks.
    Fixed,
    /// Uniformly random delays in `[1, d]`.
    Random,
    /// Stage-aligned delivery at multiples of `d`.
    Stage,
    /// Square-wave latency: calm (delay 1) and congested (delay `d`)
    /// phases alternating every `period` ticks. `None` = the legacy
    /// default `max(d/2, 1)`.
    ///
    /// Degenerate case: at `d = 1` the congested delay equals the calm
    /// delay, so every `bursty` variant collapses to `unit` behaviour
    /// (the cell is still recorded under its own key).
    Bursty {
        /// Phase length in ticks (`≥ 1`); `None` = `max(d/2, 1)`.
        period: Option<u64>,
    },
    /// The Theorem 3.1 deterministic lower-bound adversary. `None` uses
    /// the paper's stage length `L = min{d, max(⌊t/6⌋, 1)}`; an explicit
    /// stage is clamped to `[1, d]` at build time (a longer stage would
    /// exceed the d-adversary's delay budget).
    Lb {
        /// Stage length override (`≥ 1`); `None` = the paper's `L`.
        stage: Option<u64>,
    },
    /// The Theorem 3.4 randomized lower-bound adversary; stage semantics
    /// as in [`AdversarySpec::Lb`].
    Lbrand {
        /// Stage length override (`≥ 1`); `None` = the paper's `L`.
        stage: Option<u64>,
    },
    /// Random delays ≤ `d` plus staggered crashes of `pct`% of the
    /// processors (rounded half-up, capped at `p − 1`).
    Crash {
        /// Percentage of processors to crash (0–100).
        pct: u64,
        /// Where in the guaranteed-to-fire window the crashes land.
        stagger: CrashStagger,
    },
    /// Random delays ≤ `d` plus persistent stragglers: `pct`% of the
    /// processors (rounded half-up, capped at `p − 1`) step only once
    /// every `slowdown` ticks.
    Straggler {
        /// Percentage of processors slowed (1–100).
        pct: u64,
        /// Slowdown factor (`≥ 2`; 1 would be a no-op).
        slowdown: u64,
    },
}

impl AdversarySpec {
    /// Parses an adversary key, canonicalizing numeric knobs.
    ///
    /// # Errors
    ///
    /// Returns a [`GridError`] naming the bad key, knob, or range.
    pub fn parse(key: &str) -> Result<Self, GridError> {
        fn knob(key: &str, what: &str, raw: &str) -> Result<u64, GridError> {
            raw.parse()
                .map_err(|_| err(format!("{key}: {what} `{raw}` is not a number")))
        }
        let (head, args) = match key.split_once(':') {
            Some((head, args)) => (head, Some(args)),
            None => (key, None),
        };
        match (head, args) {
            ("unit", None) => Ok(AdversarySpec::Unit),
            ("fixed", None) => Ok(AdversarySpec::Fixed),
            ("random", None) => Ok(AdversarySpec::Random),
            ("stage", None) => Ok(AdversarySpec::Stage),
            ("unit" | "fixed" | "random" | "stage", Some(_)) => {
                Err(err(format!("adversary `{head}` takes no parameter")))
            }
            ("bursty", None) => Ok(AdversarySpec::Bursty { period: None }),
            ("bursty", Some(raw)) => {
                let period = knob(key, "period", raw)?;
                if period == 0 {
                    return Err(err("bursty:<period> must be at least 1 tick"));
                }
                Ok(AdversarySpec::Bursty {
                    period: Some(period),
                })
            }
            ("lb" | "lbrand", None) => Ok(match head {
                "lb" => AdversarySpec::Lb { stage: None },
                _ => AdversarySpec::Lbrand { stage: None },
            }),
            ("lb" | "lbrand", Some(raw)) => {
                let stage = knob(key, "stage length", raw)?;
                if stage == 0 {
                    return Err(err(format!("{head}:<stage> must be at least 1 tick")));
                }
                Ok(match head {
                    "lb" => AdversarySpec::Lb { stage: Some(stage) },
                    _ => AdversarySpec::Lbrand { stage: Some(stage) },
                })
            }
            ("crash", None) => Err(err("crash needs a percentage: crash:<pct>[@<stagger>]")),
            ("crash", Some(rest)) => {
                let (pct_raw, stagger) = match rest.split_once('@') {
                    Some((pct_raw, s)) => (pct_raw, CrashStagger::parse(s)?),
                    None => (rest, CrashStagger::Even),
                };
                let pct = knob(key, "percentage", pct_raw)?;
                if pct > 100 {
                    return Err(err("crash:<pct> takes a percentage 0–100"));
                }
                Ok(AdversarySpec::Crash { pct, stagger })
            }
            ("straggler", args) => {
                let (pct_raw, slowdown_raw) = match args {
                    None => (None, None),
                    Some(rest) => match rest.split_once(':') {
                        Some((pct, slowdown)) => (Some(pct), Some(slowdown)),
                        None => (Some(rest), None),
                    },
                };
                let pct = match pct_raw {
                    Some(raw) => knob(key, "percentage", raw)?,
                    None => DEFAULT_STRAGGLER_PCT,
                };
                if pct == 0 || pct > 100 {
                    return Err(err(
                        "straggler:<pct> takes a percentage 1–100 (0 stragglers is just `random`)",
                    ));
                }
                let slowdown = match slowdown_raw {
                    Some(raw) => knob(key, "slowdown", raw)?,
                    None => DEFAULT_STRAGGLER_SLOWDOWN,
                };
                if slowdown < 2 {
                    return Err(err(
                        "straggler slowdown must be at least 2 (1 slows nobody)",
                    ));
                }
                Ok(AdversarySpec::Straggler { pct, slowdown })
            }
            (other, _) => Err(err(format!("unknown adversary `{other}`"))),
        }
    }
}

impl fmt::Display for AdversarySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdversarySpec::Unit => write!(f, "unit"),
            AdversarySpec::Fixed => write!(f, "fixed"),
            AdversarySpec::Random => write!(f, "random"),
            AdversarySpec::Stage => write!(f, "stage"),
            AdversarySpec::Bursty { period: None } => write!(f, "bursty"),
            AdversarySpec::Bursty { period: Some(p) } => write!(f, "bursty:{p}"),
            AdversarySpec::Lb { stage: None } => write!(f, "lb"),
            AdversarySpec::Lb { stage: Some(s) } => write!(f, "lb:{s}"),
            AdversarySpec::Lbrand { stage: None } => write!(f, "lbrand"),
            AdversarySpec::Lbrand { stage: Some(s) } => write!(f, "lbrand:{s}"),
            AdversarySpec::Crash {
                pct,
                stagger: CrashStagger::Even,
            } => write!(f, "crash:{pct}"),
            AdversarySpec::Crash { pct, stagger } => {
                write!(f, "crash:{pct}@{}", stagger.label())
            }
            AdversarySpec::Straggler { pct, slowdown } => {
                write!(f, "straggler:{pct}:{slowdown}")
            }
        }
    }
}

/// Execution backend for a cell: the discrete-event simulator (the
/// default, and the only backend before backends became a grid axis) or
/// `doall-runtime`'s real OS threads with delayed channels.
///
/// Grammar: `backends=sim,threads`. A grid without the axis is a *legacy
/// sim-only* grid — its cells carry no backend tag, render exactly as
/// before, and keep their byte-for-byte baselines; a grid that names the
/// axis (even just `backends=sim`) tags every cell and switches its
/// records to the extended schema (see `CellMeasurement::metrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Backend {
    /// Deterministic discrete-event simulation (predicted curves).
    #[default]
    Sim,
    /// Real OS threads via `doall-runtime` (measured curves).
    Threads,
}

impl Backend {
    /// The grammar token (`sim` / `threads`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Threads => "threads",
        }
    }

    /// Parses a backend token.
    ///
    /// # Errors
    ///
    /// Returns a [`GridError`] naming the bad token and the legal ones.
    pub fn parse(s: &str) -> Result<Self, GridError> {
        match s {
            "sim" => Ok(Backend::Sim),
            "threads" => Ok(Backend::Threads),
            other => Err(err(format!(
                "unknown backend `{other}` (backends are sim|threads)"
            ))),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// One point of a grid: a fully specified scenario plus its replicate
/// count and deterministic seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Algorithm key (see [`build_algorithm`]).
    pub algo: String,
    /// Structured adversary spec (see [`build_adversary`]).
    pub adversary: AdversarySpec,
    /// Processors.
    pub p: usize,
    /// Tasks.
    pub t: usize,
    /// Delay bound handed to the adversary.
    pub d: u64,
    /// Number of replicate runs (seeds `0..seeds`).
    pub seeds: u64,
    /// Cell seed, derived from the grid's base seed and the cell's own
    /// parameters (not its position or execution order).
    pub cell_seed: u64,
    /// Execution backend. `None` for cells of a legacy grid (no
    /// `backends=` axis): they run on the simulator with the legacy
    /// record schema. `Some(_)` for cells of a backend-aware grid, which
    /// use the extended schema. The backend is *not* hashed into the cell
    /// seed, so the sim and threads variants of a scenario share replicate
    /// seeds — the same algorithm randomness on both substrates.
    pub backend: Option<Backend>,
}

impl Cell {
    /// The seed of replicate `k` of this cell.
    #[must_use]
    pub fn run_seed(&self, k: u64) -> u64 {
        splitmix64(self.cell_seed ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// The backend this cell executes on ([`Backend::Sim`] for legacy
    /// cells without an explicit tag).
    #[must_use]
    pub fn effective_backend(&self) -> Backend {
        self.backend.unwrap_or_default()
    }
}

/// SplitMix64 — the standard seed expander; deterministic and
/// platform-independent.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over bytes — used to hash cell parameters into the cell seed.
fn fnv1a(bytes: &[u8], mut h: u64) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A declarative scenario grid: the cross-product of every axis.
///
/// The textual spec is a space-separated list of `key=value` fields with
/// comma-separated lists; [`Grid::parse`] and the [`fmt::Display`] impl
/// round-trip:
///
/// ```text
/// algos=da:3,paran1 advs=stage shapes=32x32,64x256 ds=1,4,16 seeds=5 seed=0
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    /// Algorithm keys.
    pub algos: Vec<String>,
    /// Adversary specs (parameterized; see [`AdversarySpec`]).
    pub adversaries: Vec<AdversarySpec>,
    /// Instance shapes `(p, t)`.
    pub shapes: Vec<(usize, usize)>,
    /// Delay bounds.
    pub ds: Vec<u64>,
    /// Execution backends (`backends=sim,threads`). Empty means the axis
    /// was omitted: a legacy sim-only grid whose cells carry no backend
    /// tag, render exactly as before the axis existed, and keep their
    /// byte-for-byte baselines. Non-empty (even just `[Sim]`) tags every
    /// cell and switches records to the extended schema.
    pub backends: Vec<Backend>,
    /// Replicates per cell.
    pub seeds: u64,
    /// Base seed mixed into every cell seed.
    pub base_seed: u64,
}

impl Grid {
    /// Builds a grid from slices (spec-construction helper for the
    /// experiment registry).
    ///
    /// # Panics
    ///
    /// Panics if an adversary key fails to parse — registry grids are
    /// literals, so a bad key is a programming error (and every grid is
    /// also validated by a registry test).
    #[must_use]
    pub fn new(
        algos: &[&str],
        adversaries: &[&str],
        shapes: &[(usize, usize)],
        ds: &[u64],
        seeds: u64,
        base_seed: u64,
    ) -> Self {
        Self {
            algos: algos.iter().map(|s| (*s).to_string()).collect(),
            adversaries: adversaries
                .iter()
                .map(|s| {
                    AdversarySpec::parse(s)
                        .unwrap_or_else(|e| panic!("bad adversary key `{s}`: {e}"))
                })
                .collect(),
            shapes: shapes.to_vec(),
            ds: ds.to_vec(),
            backends: Vec::new(),
            seeds,
            base_seed,
        }
    }

    /// Tags the grid with an explicit backends axis (spec-construction
    /// helper for backend-aware experiments like `e17`).
    #[must_use]
    pub fn with_backends(mut self, backends: &[Backend]) -> Self {
        self.backends = backends.to_vec();
        self
    }

    /// Parses the textual spec format rendered by [`fmt::Display`].
    ///
    /// # Errors
    ///
    /// Returns a [`GridError`] for unknown fields, malformed values,
    /// empty axes, or unknown algorithm/adversary keys.
    pub fn parse(spec: &str) -> Result<Self, GridError> {
        let mut algos: Option<Vec<String>> = None;
        let mut adversaries: Option<Vec<AdversarySpec>> = None;
        let mut shapes: Option<Vec<(usize, usize)>> = None;
        let mut ds: Option<Vec<u64>> = None;
        let mut backends: Vec<Backend> = Vec::new();
        let mut seeds = 1u64;
        let mut base_seed = 0u64;
        for field in spec.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| err(format!("grid field `{field}` is not key=value")))?;
            match key {
                "algos" => algos = Some(value.split(',').map(str::to_string).collect()),
                "advs" => {
                    adversaries = Some(
                        value
                            .split(',')
                            .map(AdversarySpec::parse)
                            .collect::<Result<_, _>>()?,
                    );
                }
                "shapes" => {
                    let mut parsed = Vec::new();
                    for shape in value.split(',') {
                        let (p, t) = shape
                            .split_once('x')
                            .ok_or_else(|| err(format!("shape `{shape}` is not PxT")))?;
                        let p: usize = p
                            .parse()
                            .map_err(|_| err(format!("shape `{shape}`: bad processor count")))?;
                        let t: usize = t
                            .parse()
                            .map_err(|_| err(format!("shape `{shape}`: bad task count")))?;
                        if p == 0 || t == 0 {
                            return Err(err(format!("shape `{shape}` must be positive")));
                        }
                        parsed.push((p, t));
                    }
                    shapes = Some(parsed);
                }
                "ds" => {
                    let mut parsed = Vec::new();
                    for d in value.split(',') {
                        let d: u64 = d
                            .parse()
                            .map_err(|_| err(format!("d `{d}` is not a positive integer")))?;
                        if d == 0 {
                            return Err(err("d must be at least 1"));
                        }
                        parsed.push(d);
                    }
                    ds = Some(parsed);
                }
                "backends" => {
                    backends = value
                        .split(',')
                        .map(Backend::parse)
                        .collect::<Result<_, _>>()?;
                }
                "seeds" => {
                    seeds = value
                        .parse()
                        .map_err(|_| err(format!("seeds `{value}` is not a number")))?;
                    if seeds == 0 {
                        return Err(err("seeds must be at least 1"));
                    }
                }
                "seed" => {
                    base_seed = value
                        .parse()
                        .map_err(|_| err(format!("seed `{value}` is not a number")))?;
                }
                other => return Err(err(format!("unknown grid field `{other}`"))),
            }
        }
        let grid = Self {
            algos: algos.ok_or_else(|| err("grid needs algos=..."))?,
            adversaries: adversaries.unwrap_or_else(|| vec![AdversarySpec::Stage]),
            shapes: shapes.ok_or_else(|| err("grid needs shapes=PxT,..."))?,
            ds: ds.unwrap_or_else(|| vec![1]),
            backends,
            seeds,
            base_seed,
        };
        grid.validate()?;
        Ok(grid)
    }

    /// Checks every key and axis without running anything.
    ///
    /// # Errors
    ///
    /// Returns a [`GridError`] naming the first bad key or empty axis.
    pub fn validate(&self) -> Result<(), GridError> {
        if self.algos.is_empty() || self.adversaries.is_empty() {
            return Err(err("grid axes must be non-empty"));
        }
        if self.shapes.is_empty() || self.ds.is_empty() {
            return Err(err("grid needs at least one shape and one d"));
        }
        if self.seeds == 0 {
            return Err(err("seeds must be at least 1"));
        }
        for key in &self.algos {
            validate_algo_key(key)?;
        }
        // Adversaries are structured specs, valid by construction.
        // Duplicate axis values would expand to duplicate cells with
        // identical seeds — double-counted work for the engine and
        // duplicate cell keys the baseline comparator rightly rejects.
        // Specs compare post-canonicalization, so `crash:07,crash:7` is a
        // duplicate here even though the spellings differ.
        fn unique_axis<T: Ord>(values: &[T], axis: &str) -> Result<(), GridError> {
            let mut seen = std::collections::BTreeSet::new();
            for v in values {
                if !seen.insert(v) {
                    return Err(err(format!("duplicate value in {axis} axis")));
                }
            }
            Ok(())
        }
        unique_axis(&self.algos, "algos")?;
        unique_axis(&self.adversaries, "advs")?;
        unique_axis(&self.shapes, "shapes")?;
        unique_axis(&self.ds, "ds")?;
        // An empty backends axis means "axis omitted" (legacy sim-only),
        // so only a named axis is checked for duplicates.
        unique_axis(&self.backends, "backends")?;
        Ok(())
    }

    /// Expands the cross-product into cells, in canonical order
    /// (algorithm-major, then adversary, shape, d, backend — so the sim
    /// and threads variants of a scenario sit next to each other).
    #[must_use]
    pub fn cells(&self) -> Vec<Cell> {
        // An omitted backends axis expands like `[Sim]` but leaves cells
        // untagged (legacy schema and rendering).
        let backends: Vec<Option<Backend>> = if self.backends.is_empty() {
            vec![None]
        } else {
            self.backends.iter().map(|&b| Some(b)).collect()
        };
        let mut out = Vec::new();
        for algo in &self.algos {
            for &adversary in &self.adversaries {
                // Hash the canonical rendering, so legacy keys keep the
                // cell seeds (and hence baselines) they had when
                // adversaries were raw strings.
                let adversary_key = adversary.to_string();
                for &(p, t) in &self.shapes {
                    for &d in &self.ds {
                        // The backend is deliberately absent from the
                        // hash: sim-only grids keep their legacy seeds,
                        // and both backends of a scenario share replicate
                        // seeds (same algorithm randomness on each).
                        let mut h = fnv1a(algo.as_bytes(), 0xcbf2_9ce4_8422_2325);
                        h = fnv1a(adversary_key.as_bytes(), h);
                        h = fnv1a(&(p as u64).to_le_bytes(), h);
                        h = fnv1a(&(t as u64).to_le_bytes(), h);
                        h = fnv1a(&d.to_le_bytes(), h);
                        for &backend in &backends {
                            out.push(Cell {
                                algo: algo.clone(),
                                adversary,
                                p,
                                t,
                                d,
                                seeds: self.seeds,
                                cell_seed: splitmix64(h ^ self.base_seed),
                                backend,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shapes: Vec<String> = self
            .shapes
            .iter()
            .map(|(p, t)| format!("{p}x{t}"))
            .collect();
        let ds: Vec<String> = self.ds.iter().map(u64::to_string).collect();
        let adversaries: Vec<String> = self
            .adversaries
            .iter()
            .map(AdversarySpec::to_string)
            .collect();
        // An omitted backends axis renders as nothing at all, so legacy
        // sim-only grids keep their exact pre-axis spelling (and parse ∘
        // render stays the identity in both directions).
        let backends = if self.backends.is_empty() {
            String::new()
        } else {
            let tokens: Vec<&str> = self.backends.iter().map(|b| b.label()).collect();
            format!(" backends={}", tokens.join(","))
        };
        write!(
            f,
            "algos={} advs={}{} shapes={} ds={} seeds={} seed={}",
            self.algos.join(","),
            adversaries.join(","),
            backends,
            shapes.join(","),
            ds.join(","),
            self.seeds,
            self.base_seed
        )
    }
}

/// Validates an algorithm key without building it (no instance needed).
///
/// # Errors
///
/// Returns a [`GridError`] for an unknown key or bad parameter.
pub fn validate_algo_key(key: &str) -> Result<(), GridError> {
    if let Some(q) = key.strip_prefix("da:") {
        let q: usize = q
            .parse()
            .map_err(|_| err(format!("da:<q>: `{q}` is not a number")))?;
        if !(2..=8).contains(&q) {
            return Err(err("da:<q> supports 2 ≤ q ≤ 8 (certified schedule search)"));
        }
        return Ok(());
    }
    if let Some(fanout) = key.strip_prefix("gossip:") {
        let fanout: usize = fanout
            .parse()
            .map_err(|_| err(format!("gossip:<fanout>: `{fanout}` is not a number")))?;
        if fanout == 0 {
            return Err(err("gossip fanout must be at least 1"));
        }
        return Ok(());
    }
    match key {
        "soloall" | "oblido" | "oblido-searched" | "oblido-worst" | "paran1" | "paran2"
        | "padet" | "padet-rot" | "padet-affine" | ALGO_NONE => Ok(()),
        other => Err(err(format!("unknown algorithm `{other}`"))),
    }
}

/// Validates a textual adversary key without building it — a thin
/// wrapper over [`AdversarySpec::parse`] for callers that still hold the
/// user's raw string (the CLI).
///
/// # Errors
///
/// Returns a [`GridError`] for an unknown key or bad knob.
pub fn validate_adversary_key(key: &str) -> Result<(), GridError> {
    AdversarySpec::parse(key).map(|_| ())
}

/// Builds the schedule list an algorithm key implies, when it has one —
/// used by experiments whose derived metrics (contention, `(d)`-Cont)
/// refer to the very list the algorithm ran with.
#[must_use]
pub fn schedules_for_algo(key: &str, instance: Instance, seed: u64) -> Option<Schedules> {
    let n = instance.units();
    match key {
        "oblido" => Some(Schedules::random(n, n, seed)),
        "oblido-searched" => Some(search::low_contention_list(n, seed).0),
        "oblido-worst" => Some(Schedules::worst(n, n)),
        "padet" => Some(PaDet::random_for(instance, seed).schedules().clone()),
        "padet-rot" => Some(rotation_schedules(instance.processors(), instance.tasks())),
        "padet-affine" => affine_schedules(instance.processors(), instance.tasks(), seed).ok(),
        _ => None,
    }
}

/// Builds the algorithm named by `key` for `instance`, deriving any
/// randomness from `seed`.
///
/// Keys: `soloall`, `oblido` (random list), `oblido-searched` (certified
/// low-contention list), `oblido-worst` (identical permutations),
/// `da:<q>`, `paran1`, `paran2`, `padet` (random list), `padet-rot`
/// (rotations), `padet-affine` (affine maps; requires prime `t`),
/// `gossip:<fanout>`, and `none` (skip simulation).
///
/// # Errors
///
/// Returns a [`GridError`] for an unknown key, a bad parameter, or a key
/// whose preconditions the instance does not meet (e.g. `padet-affine`
/// over a composite task count).
pub fn build_algorithm(
    key: &str,
    instance: Instance,
    seed: u64,
) -> Result<Box<dyn Algorithm>, GridError> {
    validate_algo_key(key)?;
    if let Some(q) = key.strip_prefix("da:") {
        let q: usize = q.parse().expect("validated");
        return Ok(Box::new(Da::with_default_schedules(q, seed)));
    }
    if let Some(fanout) = key.strip_prefix("gossip:") {
        let fanout: usize = fanout.parse().expect("validated");
        return Ok(Box::new(PaGossip::new(seed, fanout)));
    }
    Ok(match key {
        "soloall" => Box::new(SoloAll::new()),
        "oblido" | "oblido-searched" | "oblido-worst" => Box::new(ObliDo::new(
            schedules_for_algo(key, instance, seed).expect("oblido keys carry schedules"),
        )),
        "paran1" => Box::new(PaRan1::new(seed)),
        "paran2" => Box::new(PaRan2::new(seed)),
        "padet" => Box::new(PaDet::random_for(instance, seed)),
        "padet-rot" => Box::new(PaDet::new(
            schedules_for_algo(key, instance, seed).expect("rotations always exist"),
        )),
        "padet-affine" => Box::new(PaDet::new(
            schedules_for_algo(key, instance, seed)
                .ok_or_else(|| err("padet-affine requires a prime task count"))?,
        )),
        ALGO_NONE => return Err(err("algorithm `none` skips simulation; nothing to build")),
        _ => unreachable!("validated"),
    })
}

/// The number of processors a `crash:<pct>` (or `straggler:<pct>`)
/// adversary afflicts on `p` processors: `pct`% rounded half-up, capped
/// at `p − 1` so at least one full-speed survivor remains (the paper's
/// only fault restriction).
///
/// The old truncating division (`p·pct/100`) silently crashed *nobody*
/// for small grids — `crash:10` at `p = 5` rounded 0.5 down to 0.
#[must_use]
pub fn crash_count(pct: u64, p: usize) -> usize {
    (((p as u64 * pct + 50) / 100) as usize).min(p - 1)
}

/// Which processors a `straggler:<pct>:<slowdown>` adversary slows: the
/// first [`crash_count`]`(pct, p)` of them (deterministic in the cell's
/// parameters, like [`crash_plan`]). `true` = persistently slow.
#[must_use]
pub fn straggler_flags(pct: u64, p: usize) -> Vec<bool> {
    let count = crash_count(pct, p);
    (0..p).map(|i| i < count).collect()
}

/// The crash schedule a `crash:<pct>@<stagger>` adversary uses for a
/// `(p, t)` instance under tick budget `max_ticks`: `plan[i] = Some(τ)`
/// crashes processor `i` at tick `τ`, `None` means it survives.
/// Deterministic in its arguments (no seed), so the schedule — and hence
/// the recorded crash count — is identical across a cell's replicates.
///
/// All staggers place every crash inside the window `[1, W]`, `W =
/// min(max_ticks − 1, ⌈t/p⌉)`. No execution completes in fewer than
/// `⌈t/p⌉` ticks (a processor performs at most one task per step), so
/// every scheduled crash lands while the run is still in progress — the
/// old fixed `5 + 3i` schedule ignored the horizon, and on short smoke
/// runs most scheduled crashes fell after completion, leaving "crash"
/// cells exercising no crashes at all. Within the window:
///
/// * [`CrashStagger::Even`] spreads the crashes evenly across `[1, W]`;
/// * [`CrashStagger::Burst`] fires them all at the mid-window tick
///   `⌈W/2⌉`;
/// * [`CrashStagger::Front`] fires them all at tick 1.
#[must_use]
pub fn crash_plan(
    pct: u64,
    stagger: CrashStagger,
    p: usize,
    t: usize,
    max_ticks: u64,
) -> Vec<Option<u64>> {
    let count = crash_count(pct, p);
    let floor = t.div_ceil(p) as u64;
    let window = floor.min(max_ticks.saturating_sub(1)).max(1);
    let tick_of = |i: u64| match stagger {
        CrashStagger::Even => 1 + (i * (window - 1)) / count.max(1) as u64,
        CrashStagger::Burst => window.div_ceil(2).max(1),
        CrashStagger::Front => 1,
    };
    (0..p)
        .map(|i| (i < count).then(|| tick_of(i as u64)))
        .collect()
}

/// Builds the adversary described by `spec` with delay bound `d` for a
/// `(p, t)` instance, deriving any randomness from `seed`. `max_ticks`
/// is the run's tick budget — [`AdversarySpec::Crash`] scales its
/// stagger window to it (see [`crash_plan`]); the other kinds ignore it.
///
/// Infallible: every [`AdversarySpec`] is buildable for every positive
/// `(p, t, d)`. Degenerate parameterizations are handled by construction
/// rather than rejection: a crash/straggler percentage that rounds to 0
/// afflicted processors builds the plain random-delay adversary, an
/// `lb`/`lbrand` stage override is clamped to `[1, d]` (a longer stage
/// would exceed the d-adversary's delay budget), and `bursty` at `d = 1`
/// degenerates to constant delay 1 (congested delay = calm delay) — see
/// [`AdversarySpec::Bursty`].
#[must_use]
pub fn build_adversary(
    spec: &AdversarySpec,
    p: usize,
    t: usize,
    d: u64,
    seed: u64,
    max_ticks: u64,
) -> Box<dyn Adversary> {
    match *spec {
        AdversarySpec::Unit => Box::new(UnitDelay),
        AdversarySpec::Fixed => Box::new(FixedDelay::new(d)),
        AdversarySpec::Random => Box::new(RandomDelay::new(d, seed)),
        AdversarySpec::Stage => Box::new(StageAligned::new(d)),
        AdversarySpec::Bursty { period } => {
            Box::new(BurstyDelay::new(d, period.unwrap_or((d / 2).max(1))))
        }
        AdversarySpec::Lb { stage: None } => Box::new(LowerBoundAdversary::new(d, t)),
        AdversarySpec::Lb { stage: Some(s) } => {
            Box::new(LowerBoundAdversary::with_stage_len(d, t, s.min(d)))
        }
        AdversarySpec::Lbrand { stage: None } => Box::new(RandomizedLbAdversary::new(d, t, seed)),
        AdversarySpec::Lbrand { stage: Some(s) } => {
            Box::new(RandomizedLbAdversary::with_stage_len(d, t, s.min(d), seed))
        }
        AdversarySpec::Crash { pct, stagger } => {
            let delays = Box::new(RandomDelay::new(d, seed));
            if crash_count(pct, p) == 0 {
                return delays;
            }
            Box::new(CrashSchedule::new(
                delays,
                crash_plan(pct, stagger, p, t, max_ticks),
            ))
        }
        AdversarySpec::Straggler { pct, slowdown } => {
            let delays = Box::new(RandomDelay::new(d, seed));
            let flags = straggler_flags(pct, p);
            if !flags.contains(&true) {
                return delays;
            }
            Box::new(Stragglers::new(delays, flags, slowdown))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_parse_display_round_trips() {
        let specs = [
            "algos=da:3,paran1 advs=stage,unit shapes=32x32,64x256 ds=1,4,16 seeds=5 seed=0",
            "algos=soloall advs=crash:50 shapes=8x8 ds=2 seeds=1 seed=42",
            "algos=none advs=unit shapes=8x64 ds=1,4 seeds=3 seed=7",
            "algos=da:3 advs=bursty:4,crash:25@burst,straggler:25:4 shapes=16x64 ds=2,8 seeds=3 \
             seed=0",
            "algos=paran1 advs=lb:3,lbrand:9,crash:7@front shapes=9x9 ds=9 seeds=1 seed=1",
        ];
        for spec in specs {
            let grid = Grid::parse(spec).unwrap();
            assert_eq!(grid.to_string(), spec, "canonical spec round-trips");
            assert_eq!(Grid::parse(&grid.to_string()).unwrap(), grid);
        }
    }

    #[test]
    fn grid_parse_defaults() {
        let grid = Grid::parse("algos=paran1 shapes=4x8").unwrap();
        assert_eq!(grid.adversaries, vec![AdversarySpec::Stage]);
        assert_eq!(grid.ds, vec![1]);
        assert_eq!(grid.backends, Vec::new(), "omitted axis stays omitted");
        assert_eq!(grid.seeds, 1);
        assert_eq!(grid.base_seed, 0);
    }

    #[test]
    fn backends_axis_round_trips_and_tags_cells() {
        let spec = "algos=da:3 advs=unit,crash:25@burst backends=sim,threads shapes=8x32 ds=2 \
                    seeds=2 seed=0";
        let grid = Grid::parse(spec).unwrap();
        assert_eq!(grid.backends, vec![Backend::Sim, Backend::Threads]);
        assert_eq!(grid.to_string(), spec, "canonical spelling round-trips");
        assert_eq!(Grid::parse(&grid.to_string()).unwrap(), grid);
        // One cell per (scenario × backend), backend innermost.
        let cells = grid.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].backend, Some(Backend::Sim));
        assert_eq!(cells[1].backend, Some(Backend::Threads));
        assert_eq!(cells[0].effective_backend(), Backend::Sim);
        assert_eq!(cells[1].effective_backend(), Backend::Threads);
    }

    #[test]
    fn backends_axis_does_not_perturb_cell_seeds() {
        // The backend is not hashed: a scenario's sim and threads cells
        // share seeds with each other *and* with the legacy untagged cell,
        // so sim-only baselines survive and e17's curves compare
        // like-for-like randomness.
        let legacy = Grid::parse("algos=paran1 advs=stage shapes=4x8 ds=2 seeds=3 seed=7").unwrap();
        let tagged = Grid::parse(
            "algos=paran1 advs=stage backends=sim,threads shapes=4x8 ds=2 seeds=3 seed=7",
        )
        .unwrap();
        let (lc, tc) = (legacy.cells(), tagged.cells());
        assert_eq!(lc.len(), 1);
        assert_eq!(tc.len(), 2);
        assert_eq!(lc[0].backend, None, "legacy cells stay untagged");
        for cell in &tc {
            assert_eq!(cell.cell_seed, lc[0].cell_seed);
            assert_eq!(cell.run_seed(2), lc[0].run_seed(2));
        }
    }

    #[test]
    fn explicit_sim_only_backends_axis_is_kept_explicit() {
        // `backends=sim` is not the same spec as no axis: it opts the grid
        // into the extended record schema, so Display must not elide it.
        let grid =
            Grid::parse("algos=paran1 advs=unit backends=sim shapes=4x8 ds=1 seeds=1 seed=0")
                .unwrap();
        assert_eq!(
            grid.to_string(),
            "algos=paran1 advs=unit backends=sim shapes=4x8 ds=1 seeds=1 seed=0"
        );
        assert_eq!(grid.cells()[0].backend, Some(Backend::Sim));
        assert_eq!(Grid::parse(&grid.to_string()).unwrap(), grid);
    }

    #[test]
    fn backend_tokens_are_validated() {
        assert_eq!(Backend::parse("sim").unwrap(), Backend::Sim);
        assert_eq!(Backend::parse("threads").unwrap(), Backend::Threads);
        let e = Backend::parse("gpu").unwrap_err().to_string();
        assert!(
            e.contains("sim|threads"),
            "error names the legal tokens: {e}"
        );
    }

    #[test]
    fn adversary_spec_parses_bare_keys_to_documented_defaults() {
        for (key, spec) in [
            ("unit", AdversarySpec::Unit),
            ("fixed", AdversarySpec::Fixed),
            ("random", AdversarySpec::Random),
            ("stage", AdversarySpec::Stage),
            ("bursty", AdversarySpec::Bursty { period: None }),
            ("lb", AdversarySpec::Lb { stage: None }),
            ("lbrand", AdversarySpec::Lbrand { stage: None }),
            (
                "crash:25",
                AdversarySpec::Crash {
                    pct: 25,
                    stagger: CrashStagger::Even,
                },
            ),
            (
                "straggler",
                AdversarySpec::Straggler {
                    pct: DEFAULT_STRAGGLER_PCT,
                    slowdown: DEFAULT_STRAGGLER_SLOWDOWN,
                },
            ),
        ] {
            assert_eq!(AdversarySpec::parse(key).unwrap(), spec, "{key}");
        }
        // Spelling out a default knob parses to the same spec as eliding it.
        assert_eq!(
            AdversarySpec::parse("crash:25@even").unwrap(),
            AdversarySpec::parse("crash:25").unwrap()
        );
        assert_eq!(
            AdversarySpec::parse("straggler:25:2").unwrap(),
            AdversarySpec::parse("straggler").unwrap()
        );
        assert_eq!(
            AdversarySpec::parse("straggler:40").unwrap(),
            AdversarySpec::parse("straggler:40:2").unwrap()
        );
    }

    #[test]
    fn adversary_spec_canonicalizes_numeric_knobs() {
        // `crash:07` and `crash:7` used to build identical adversaries yet
        // carry distinct cell identities; parsing now canonicalizes.
        assert_eq!(
            AdversarySpec::parse("crash:07").unwrap(),
            AdversarySpec::parse("crash:7").unwrap()
        );
        assert_eq!(
            AdversarySpec::parse("crash:07").unwrap().to_string(),
            "crash:7"
        );
        assert_eq!(
            AdversarySpec::parse("bursty:007").unwrap().to_string(),
            "bursty:7"
        );
        assert_eq!(
            AdversarySpec::parse("straggler:050:04")
                .unwrap()
                .to_string(),
            "straggler:50:4"
        );
        assert_eq!(
            AdversarySpec::parse("crash:25@even").unwrap().to_string(),
            "crash:25",
            "default stagger is elided — one spelling per spec"
        );
        // And canonicalized duplicates are caught by grid validation.
        assert!(Grid::parse("algos=paran1 advs=crash:07,crash:7 shapes=4x8").is_err());
    }

    #[test]
    fn adversary_spec_rejects_bad_knobs() {
        for bad in [
            "bursty:0",
            "bursty:soon",
            "bursty:4:2",
            "crash",
            "crash:150",
            "crash:150@even",
            "crash:25@sideways",
            "crash:25@",
            "crash:@burst",
            "lb:0",
            "lbrand:0",
            "lb:many",
            "straggler:0:3",
            "straggler:101",
            "straggler:25:1",
            "straggler:25:0",
            "straggler:25:4:9",
            "unit:1",
            "stage:2",
            "frobnicate",
        ] {
            let e = AdversarySpec::parse(bad);
            assert!(e.is_err(), "`{bad}` should fail");
            assert!(!e.unwrap_err().to_string().is_empty());
        }
    }

    #[test]
    fn crash_staggers_place_crashes_inside_the_window() {
        // p=8, t=64: window W = ⌈64/8⌉ = 8.
        let ticks = |stagger| -> Vec<u64> {
            crash_plan(100, stagger, 8, 64, 1_000)
                .iter()
                .flatten()
                .copied()
                .collect()
        };
        let even = ticks(CrashStagger::Even);
        assert_eq!(even.len(), 7, "crash:100 capped at p − 1");
        assert_eq!(even[0], 1);
        assert!(even.windows(2).all(|w| w[0] <= w[1]), "even is staggered");
        assert!(even.iter().all(|&t| (1..=8).contains(&t)));
        let burst = ticks(CrashStagger::Burst);
        assert!(
            burst.iter().all(|&t| t == 4),
            "burst = mid-window: {burst:?}"
        );
        let front = ticks(CrashStagger::Front);
        assert!(front.iter().all(|&t| t == 1), "front = earliest: {front:?}");
    }

    #[test]
    fn grid_parse_rejects_garbage() {
        for bad in [
            "algos=paran1",                                     // no shapes
            "shapes=4x8",                                       // no algos
            "algos=paran1 shapes=4",                            // bad shape
            "algos=paran1 shapes=0x8",                          // zero p
            "algos=paran1 shapes=4x8 ds=0",                     // zero d
            "algos=paran1 shapes=4x8 seeds=0",                  // zero seeds
            "algos=paran1 shapes=4x8 frob=1",                   // unknown field
            "algos=paran1 shapes=4x8 ds",                       // not key=value
            "algos=frobnicate shapes=4x8",                      // unknown algo
            "algos=paran1 advs=frobnicate shapes=4x8",          // unknown adversary
            "algos=da:99 shapes=4x8",                           // q out of range
            "algos=gossip:0 shapes=4x8",                        // zero fanout
            "algos=paran1 advs=crash:101 shapes=4x8",           // pct > 100
            "algos=paran1,paran1 shapes=4x8",                   // duplicate algo
            "algos=paran1 advs=unit,unit shapes=4x8",           // duplicate adversary
            "algos=paran1 shapes=4x8,4x8",                      // duplicate shape
            "algos=paran1 shapes=4x8 ds=1,1",                   // duplicate d
            "algos=paran1 advs=bursty:0 shapes=4x8",            // zero period
            "algos=paran1 advs=crash:150@even shapes=4x8",      // pct > 100
            "algos=paran1 advs=crash:25@late shapes=4x8",       // unknown stagger
            "algos=paran1 advs=straggler:0:3 shapes=4x8",       // zero straggler pct
            "algos=paran1 advs=straggler:25:1 shapes=4x8",      // no-op slowdown
            "algos=paran1 advs=lb:0 shapes=4x8",                // zero stage length
            "algos=paran1 shapes=4x8 backends=gpu",             // unknown backend
            "algos=paran1 shapes=4x8 backends=",                // empty backend token
            "algos=paran1 shapes=4x8 backends=threads,threads", // duplicate backend
            "algos=paran1 shapes=4x8 backends=sim,threads,sim", // duplicate backend
        ] {
            assert!(Grid::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn cells_expand_the_cross_product_in_canonical_order() {
        let grid = Grid::parse("algos=paran1,soloall advs=stage shapes=4x8 ds=1,2 seeds=2 seed=0")
            .unwrap();
        let cells = grid.cells();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0].algo, "paran1");
        assert_eq!(cells[0].d, 1);
        assert_eq!(cells[1].d, 2);
        assert_eq!(cells[2].algo, "soloall");
        assert!(cells.iter().all(|c| c.seeds == 2));
    }

    #[test]
    fn cell_seeds_depend_on_parameters_not_position() {
        let a =
            Grid::parse("algos=paran1,soloall advs=stage shapes=4x8 ds=1 seeds=1 seed=9").unwrap();
        let b =
            Grid::parse("algos=soloall,paran1 advs=stage shapes=4x8 ds=1 seeds=1 seed=9").unwrap();
        let find =
            |cells: &[Cell], algo: &str| cells.iter().find(|c| c.algo == algo).unwrap().cell_seed;
        let (ca, cb) = (a.cells(), b.cells());
        assert_eq!(find(&ca, "paran1"), find(&cb, "paran1"));
        assert_eq!(find(&ca, "soloall"), find(&cb, "soloall"));
        assert_ne!(find(&ca, "paran1"), find(&ca, "soloall"));
    }

    #[test]
    fn run_seeds_differ_per_replicate_but_are_stable() {
        let cell = Grid::parse("algos=paran1 shapes=4x8 seeds=3")
            .unwrap()
            .cells()
            .remove(0);
        assert_ne!(cell.run_seed(0), cell.run_seed(1));
        assert_eq!(cell.run_seed(2), cell.run_seed(2));
    }

    #[test]
    fn builds_every_documented_key() {
        let instance = Instance::new(5, 5).unwrap();
        for key in [
            "soloall",
            "oblido",
            "oblido-searched",
            "oblido-worst",
            "da:2",
            // da:5..=8 are valid too but their certified schedule search is
            // too slow for a debug-mode unit test; CI's release smoke run
            // exercises them via e13.
            "da:4",
            "paran1",
            "paran2",
            "padet",
            "padet-rot",
            "padet-affine",
            "gossip:2",
        ] {
            assert!(build_algorithm(key, instance, 1).is_ok(), "{key}");
        }
        for key in [
            "unit",
            "fixed",
            "random",
            "stage",
            "bursty",
            "bursty:4",
            "lb",
            "lb:1",
            "lb:99", // clamped to d at build time
            "lbrand",
            "lbrand:2",
            "crash:0",
            "crash:50",
            "crash:100",
            "crash:50@burst",
            "crash:50@front",
            "straggler",
            "straggler:50",
            "straggler:50:4",
            "straggler:100:2",
        ] {
            let spec = AdversarySpec::parse(key).unwrap_or_else(|e| panic!("{key}: {e}"));
            let adversary = build_adversary(&spec, 5, 5, 2, 1, 1_000);
            assert!(!adversary.name().is_empty(), "{key}");
        }
    }

    #[test]
    fn none_key_validates_but_does_not_build() {
        assert!(validate_algo_key(ALGO_NONE).is_ok());
        let instance = Instance::new(2, 2).unwrap();
        assert!(build_algorithm(ALGO_NONE, instance, 0).is_err());
    }

    #[test]
    fn padet_affine_requires_prime_tasks() {
        let composite = Instance::new(4, 8).unwrap();
        assert!(build_algorithm("padet-affine", composite, 0).is_err());
        let prime = Instance::new(4, 7).unwrap();
        assert!(build_algorithm("padet-affine", prime, 0).is_ok());
    }

    #[test]
    fn crash_adversary_leaves_a_survivor() {
        // crash:100 on p=1 must not try to crash everyone.
        let spec = AdversarySpec::parse("crash:100").unwrap();
        let _ = build_adversary(&spec, 1, 4, 2, 0, 1_000);
        for p in 1..=9 {
            assert!(crash_count(100, p) < p, "p={p}");
            for stagger in [CrashStagger::Even, CrashStagger::Burst, CrashStagger::Front] {
                let survivors = crash_plan(100, stagger, p, 4 * p, 1_000)
                    .iter()
                    .filter(|c| c.is_none())
                    .count();
                assert!(survivors >= 1, "p={p} {stagger:?}");
            }
        }
    }

    #[test]
    fn straggler_flags_leave_a_full_speed_processor() {
        for p in 1..=9 {
            let flags = straggler_flags(100, p);
            assert_eq!(flags.len(), p);
            assert!(flags.contains(&false), "p={p}: someone stays full speed");
        }
        assert_eq!(
            straggler_flags(25, 8),
            vec![true, true, false, false, false, false, false, false]
        );
        // A percentage that rounds to zero stragglers builds the plain
        // random-delay adversary rather than erroring.
        let spec = AdversarySpec::parse("straggler:1:2").unwrap();
        assert_eq!(
            build_adversary(&spec, 4, 8, 2, 0, 1_000).name(),
            "random-delay"
        );
    }

    #[test]
    fn crash_count_rounds_half_up() {
        // The old truncating division crashed nobody at p=5, pct=10.
        assert_eq!(crash_count(10, 5), 1, "0.5 rounds up");
        assert_eq!(crash_count(10, 4), 0, "0.4 rounds down");
        assert_eq!(crash_count(50, 5), 3, "2.5 rounds up");
        assert_eq!(crash_count(50, 8), 4);
        assert_eq!(crash_count(0, 8), 0);
        assert_eq!(crash_count(100, 8), 7, "capped at p − 1");
    }

    #[test]
    fn crash_plan_fits_the_completion_window() {
        // No run finishes before ⌈t/p⌉ ticks, so every scheduled crash
        // must land in [1, ⌈t/p⌉] to be guaranteed to fire — under every
        // stagger.
        for (p, t, max_ticks) in [(8usize, 32usize, 2_000_000u64), (8, 32, 10), (3, 7, 4)] {
            let window = (t.div_ceil(p) as u64).min(max_ticks - 1).max(1);
            for stagger in [CrashStagger::Even, CrashStagger::Burst, CrashStagger::Front] {
                let plan = crash_plan(100, stagger, p, t, max_ticks);
                let ticks: Vec<u64> = plan.iter().flatten().copied().collect();
                assert_eq!(ticks.len(), crash_count(100, p));
                assert!(
                    ticks.iter().all(|&tick| (1..=window).contains(&tick)),
                    "p={p} t={t} max_ticks={max_ticks} {stagger:?}: {ticks:?} outside [1, \
                     {window}]"
                );
            }
            let even: Vec<u64> = crash_plan(100, CrashStagger::Even, p, t, max_ticks)
                .iter()
                .flatten()
                .copied()
                .collect();
            assert_eq!(
                even[0], 1,
                "the first even crash fires as early as possible"
            );
        }
        // Old bug shape: a tiny tick budget must pull the stagger in.
        let tight = crash_plan(100, CrashStagger::Even, 8, 1024, 5);
        assert!(tight.iter().flatten().all(|&tick| tick <= 4));
    }
}
