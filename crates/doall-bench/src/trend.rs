//! Trend analysis over the history ledger: per-cell metric series,
//! ASCII sparklines, least-squares slopes, and the cumulative band gate
//! behind `doall trend`.
//!
//! The comparator treats each step in isolation, so a metric that creeps
//! +0.4% per PR under a ±1% per-step tolerance never trips it — after
//! five PRs the cumulative +1.6% has sailed through five green gates.
//! The band check here compares the *window endpoints* instead: with
//! `--band metric=±1%` over the last N entries, cumulative drift beyond
//! the band fails (exit 1) even though every single step was within
//! tolerance.
//!
//! Determinism: everything rendered here is derived from the
//! deterministic (sim-backend, non-measured) slice of the ledger — the
//! same exemption rules the comparator applies. Threads-backend cells
//! and the measured-only metrics stay *in* the ledger as a timing
//! series, but trend output never renders or gates them, so
//! `doall trend` output is byte-identical across `--threads {1,8}`.

use crate::compare::{drifted, metric_exempt};
use crate::history::{History, HistoryEntry};
use crate::resultset::{json_escape, json_number, CellKey};
use crate::Table;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Version of the JSON document emitted by [`TrendReport::render_json`].
pub const TREND_SCHEMA_VERSION: u32 = 1;

/// One `--band metric=±X%` gate: fail when the metric's cumulative
/// window drift exceeds `fraction` (relative, with the same unit floor
/// as [`drifted`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Band {
    /// The gated metric name.
    pub metric: String,
    /// Allowed relative drift (`0.01` = ±1%).
    pub fraction: f64,
}

/// Parses a band spec: `metric=±X%`, `metric=X%`, or `metric=F` (a bare
/// fraction, `0.01` = 1%).
///
/// # Errors
///
/// Returns a message for a missing `=`, an empty metric name, or a
/// non-finite / negative width.
pub fn parse_band(spec: &str) -> Result<Band, String> {
    let (metric, raw) = spec
        .split_once('=')
        .ok_or_else(|| format!("band `{spec}` must look like metric=±X%"))?;
    if metric.is_empty() {
        return Err(format!("band `{spec}` has an empty metric name"));
    }
    let raw = raw.strip_prefix('±').unwrap_or(raw);
    let (number, percent) = match raw.strip_suffix('%') {
        Some(n) => (n, true),
        None => (raw, false),
    };
    let value: f64 = number
        .parse()
        .map_err(|_| format!("band `{spec}`: `{raw}` is not a number"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!(
            "band `{spec}`: width must be finite and non-negative"
        ));
    }
    Ok(Band {
        metric: metric.to_string(),
        fraction: if percent { value / 100.0 } else { value },
    })
}

/// What to analyze: the window size and the gates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrendConfig {
    /// Analyze only the last N entries (`None` = the whole ledger).
    pub last: Option<usize>,
    /// Band gates; empty means render-only (always exit 0).
    pub bands: Vec<Band>,
}

/// Least-squares slope of `series` against entry index `0..n`, per
/// entry. `None` for fewer than two points or any non-finite point
/// (NaN rejection: a poisoned series has no meaningful slope).
#[must_use]
pub fn slope(series: &[f64]) -> Option<f64> {
    if series.len() < 2 || series.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let n = series.len() as f64;
    let x_mean = (n - 1.0) / 2.0;
    let y_mean = series.iter().sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, y) in series.iter().enumerate() {
        let dx = i as f64 - x_mean;
        num += dx * (y - y_mean);
        den += dx * dx;
    }
    Some(num / den)
}

/// The pure-ASCII ramp sparklines draw from (8 levels, min→max).
const SPARK_RAMP: [char; 8] = ['.', ':', '-', '=', '+', '*', '#', '@'];

/// Renders a series as a pure-ASCII sparkline: one `SPARK_RAMP` char
/// (`.:-=+*#@`, min→max) per point, min-max normalized per series. A
/// flat series renders at the mid level (`=`); non-finite points render
/// as `?`.
#[must_use]
pub fn sparkline(series: &[f64]) -> String {
    let finite: Vec<f64> = series.iter().copied().filter(|v| v.is_finite()).collect();
    let (min, max) = finite
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(*v), hi.max(*v))
        });
    series
        .iter()
        .map(|v| {
            if !v.is_finite() {
                '?'
            } else if max <= min {
                SPARK_RAMP[3]
            } else {
                let t = (v - min) / (max - min);
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let idx = ((t * 7.0).round() as usize).min(7);
                SPARK_RAMP[idx]
            }
        })
        .collect()
}

/// One gated (cell, metric) pair whose cumulative window drift crossed
/// its band.
#[derive(Debug, Clone, PartialEq)]
pub struct BandViolation {
    /// The cell.
    pub key: CellKey,
    /// The gated metric.
    pub metric: String,
    /// The metric's series across the window (`NaN` where absent).
    pub series: Vec<f64>,
    /// Value at the window's first entry (`NaN` if absent).
    pub first: f64,
    /// Value at the window's last entry (`NaN` if absent).
    pub last: f64,
    /// The band width the pair was gated at.
    pub fraction: f64,
}

impl BandViolation {
    /// Relative drift between the window endpoints, using the same
    /// normalizer as [`drifted`]: `(last − first) / max(1, |first|,
    /// |last|)`. `NaN` when an endpoint is non-finite.
    #[must_use]
    pub fn rel_drift(&self) -> f64 {
        (self.last - self.first) / self.first.abs().max(self.last.abs()).max(1.0)
    }
}

/// One metric's aggregate trajectory: per-entry mean over all included
/// (deterministic) cells that carry the metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricTrend {
    /// Metric name.
    pub name: String,
    /// One mean per window entry (`NaN` when no included cell carried
    /// the metric in that entry).
    pub series: Vec<f64>,
}

/// The outcome of analyzing a ledger window.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendReport {
    /// Total entries in the ledger.
    pub entries: usize,
    /// Entries actually analyzed (`min(entries, --last)`).
    pub window: usize,
    /// Commit id of the window's first entry.
    pub first_commit: String,
    /// Commit id of the window's last (newest) entry.
    pub last_commit: String,
    /// Timestamp of the newest entry.
    pub last_timestamp: String,
    /// Mode of the newest entry.
    pub mode: String,
    /// Cell count of the newest entry (all backends).
    pub cells: usize,
    /// Harness throughput series across the window (`NaN` = not
    /// recorded).
    pub throughput: Vec<f64>,
    /// Aggregate per-metric trajectories, sorted by name.
    pub metrics: Vec<MetricTrend>,
    /// The gates the analysis ran with.
    pub bands: Vec<Band>,
    /// Gated (cell, metric) pairs evaluated.
    pub checked: usize,
    /// Gated pairs whose cumulative drift crossed their band, sorted by
    /// (cell, metric).
    pub violations: Vec<BandViolation>,
}

/// Extracts one (cell, metric) series across `window` (`NaN` where the
/// cell or metric is absent in an entry).
fn cell_series(window: &[&HistoryEntry], key: &CellKey, metric: &str) -> Vec<f64> {
    window
        .iter()
        .map(|e| {
            e.cells
                .get(key)
                .and_then(|m| m.get(metric))
                .copied()
                .unwrap_or(f64::NAN)
        })
        .collect()
}

/// Analyzes the last `cfg.last` entries of `history` (default: all) and
/// evaluates the configured bands.
///
/// # Errors
///
/// Returns a message when the ledger is empty.
pub fn analyze(history: &History, cfg: &TrendConfig) -> Result<TrendReport, String> {
    if history.entries.is_empty() {
        return Err("the ledger has no entries".to_string());
    }
    let window_len = match cfg.last {
        Some(0) => return Err("--last must be at least 1".to_string()),
        Some(n) => n.min(history.entries.len()),
        None => history.entries.len(),
    };
    let window: Vec<&HistoryEntry> = history.entries[history.entries.len() - window_len..]
        .iter()
        .collect();
    let first = window[0];
    let last = window[window.len() - 1];

    // Aggregate trajectories: the union of non-exempt metric names over
    // non-exempt cells, then one per-entry mean each. Everything here
    // iterates BTreeMaps, so order (and the rendered bytes) is fixed.
    let mut metric_names: BTreeSet<&String> = BTreeSet::new();
    for entry in &window {
        for (key, metrics) in &entry.cells {
            for name in metrics.keys() {
                if !metric_exempt(key, name) {
                    metric_names.insert(name);
                }
            }
        }
    }
    let metrics: Vec<MetricTrend> = metric_names
        .into_iter()
        .map(|name| {
            let series = window
                .iter()
                .map(|entry| {
                    let mut sum = 0.0;
                    let mut count = 0usize;
                    for (key, cell_metrics) in &entry.cells {
                        if metric_exempt(key, name) {
                            continue;
                        }
                        if let Some(v) = cell_metrics.get(name) {
                            sum += v;
                            count += 1;
                        }
                    }
                    if count == 0 {
                        f64::NAN
                    } else {
                        sum / count as f64
                    }
                })
                .collect();
            MetricTrend {
                name: name.clone(),
                series,
            }
        })
        .collect();

    // Band gate: compare window endpoints per (cell, metric) pair. A
    // pair counts as checked when either endpoint carries the metric;
    // one-sided presence is a violation (same rule as the comparator).
    let mut checked = 0usize;
    let mut violations = Vec::new();
    for band in &cfg.bands {
        for (key, first_metrics) in &first.cells {
            if metric_exempt(key, &band.metric) {
                continue;
            }
            let Some(last_metrics) = last.cells.get(key) else {
                continue;
            };
            let first_v = first_metrics.get(&band.metric).copied();
            let last_v = last_metrics.get(&band.metric).copied();
            if first_v.is_none() && last_v.is_none() {
                continue;
            }
            checked += 1;
            if drifted(first_v, last_v, band.fraction) {
                violations.push(BandViolation {
                    key: key.clone(),
                    metric: band.metric.clone(),
                    series: cell_series(&window, key, &band.metric),
                    first: first_v.unwrap_or(f64::NAN),
                    last: last_v.unwrap_or(f64::NAN),
                    fraction: band.fraction,
                });
            }
        }
    }
    violations.sort_by(|a, b| (&a.key, &a.metric).cmp(&(&b.key, &b.metric)));

    Ok(TrendReport {
        entries: history.entries.len(),
        window: window_len,
        first_commit: first.commit.clone(),
        last_commit: last.commit.clone(),
        last_timestamp: last.timestamp.clone(),
        mode: last.mode.clone(),
        cells: last.cells.len(),
        throughput: window.iter().map(|e| e.cells_per_sec).collect(),
        metrics,
        bands: cfg.bands.clone(),
        checked,
        violations,
    })
}

fn opt_number(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => json_number(v),
        _ => "—".to_string(),
    }
}

fn opt_slope(s: Option<f64>) -> String {
    match s {
        Some(v) => format!("{v:+.4}"),
        None => "—".to_string(),
    }
}

impl TrendReport {
    /// `true` when no band was violated (bands may also be empty).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the deterministic human-readable trajectory: a header,
    /// the throughput series, one aggregate row per metric, and — when
    /// bands are configured — the gate verdict with one row per
    /// violating (cell, metric) pair.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "perf trajectory — {} of {} ledger entries ({} -> {})",
            self.window, self.entries, self.first_commit, self.last_commit
        );
        let _ = writeln!(
            out,
            "  latest: commit={} timestamp={} mode={} cells={}",
            self.last_commit, self.last_timestamp, self.mode, self.cells
        );
        let recorded = self.throughput.iter().any(|v| v.is_finite());
        if recorded {
            let _ = writeln!(
                out,
                "  throughput cells/s: {} first={} last={} slope={}",
                sparkline(&self.throughput),
                opt_number(self.throughput.first().copied()),
                opt_number(self.throughput.last().copied()),
                opt_slope(slope(&self.throughput)),
            );
        } else {
            let _ = writeln!(out, "  throughput cells/s: (not recorded)");
        }
        let mut table = Table::new(vec!["metric", "trend", "first", "last", "slope/entry"]);
        for m in &self.metrics {
            table.row(vec![
                m.name.clone(),
                sparkline(&m.series),
                opt_number(m.series.first().copied()),
                opt_number(m.series.last().copied()),
                opt_slope(slope(&m.series)),
            ]);
        }
        out.push_str(&table.render());
        if !self.bands.is_empty() {
            let bands = self
                .bands
                .iter()
                .map(|b| format!("{}=±{}%", b.metric, json_number(b.fraction * 100.0)))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "band gate [{}]: {} violation(s) across {} checked pair(s)",
                bands,
                self.violations.len(),
                self.checked
            );
            if !self.violations.is_empty() {
                let mut table = Table::new(vec![
                    "cell", "metric", "trend", "first", "last", "drift", "band",
                ]);
                for v in &self.violations {
                    table.row(vec![
                        v.key.to_string(),
                        v.metric.clone(),
                        sparkline(&v.series),
                        json_number(v.first),
                        json_number(v.last),
                        format!("{:+.3}%", v.rel_drift() * 100.0),
                        format!("±{}%", json_number(v.fraction * 100.0)),
                    ]);
                }
                out.push_str(&table.render());
            }
        }
        out
    }

    /// Renders the deterministic machine-readable trajectory
    /// (`trend_schema_version` [`TREND_SCHEMA_VERSION`]).
    #[must_use]
    pub fn render_json(&self) -> String {
        let num = |v: f64| json_number(v);
        let series = |s: &[f64]| {
            let body = s.iter().map(|v| num(*v)).collect::<Vec<_>>().join(", ");
            format!("[{body}]")
        };
        let opt = |v: Option<f64>| match v {
            Some(v) => json_number(v),
            None => "null".to_string(),
        };
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"trend_schema_version\": {TREND_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"entries\": {},", self.entries);
        let _ = writeln!(out, "  \"window\": {},", self.window);
        let _ = writeln!(
            out,
            "  \"first_commit\": \"{}\",",
            json_escape(&self.first_commit)
        );
        let _ = writeln!(
            out,
            "  \"last_commit\": \"{}\",",
            json_escape(&self.last_commit)
        );
        let _ = writeln!(
            out,
            "  \"last_timestamp\": \"{}\",",
            json_escape(&self.last_timestamp)
        );
        let _ = writeln!(out, "  \"mode\": \"{}\",", json_escape(&self.mode));
        let _ = writeln!(out, "  \"cells\": {},", self.cells);
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        let _ = writeln!(
            out,
            "  \"throughput\": {{\"series\": {}, \"slope\": {}}},",
            series(&self.throughput),
            opt(slope(&self.throughput))
        );
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"series\": {}, \"spark\": \"{}\", \"slope\": {}}}",
                json_escape(&m.name),
                series(&m.series),
                sparkline(&m.series),
                opt(slope(&m.series)),
            );
            out.push_str(if i + 1 == self.metrics.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ],\n");
        let bands = self
            .bands
            .iter()
            .map(|b| {
                format!(
                    "{{\"metric\": \"{}\", \"fraction\": {}}}",
                    json_escape(&b.metric),
                    num(b.fraction)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  \"bands\": [{bands}],");
        let _ = writeln!(out, "  \"checked\": {},", self.checked);
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let k = &v.key;
            let _ = write!(
                out,
                "    {{\"experiment\": \"{}\", \"algo\": \"{}\", \"adversary\": \"{}\", \
                 \"backend\": \"{}\", \"p\": {}, \"t\": {}, \"d\": {}, \"seeds\": {}, \
                 \"metric\": \"{}\", \"series\": {}, \"first\": {}, \"last\": {}, \
                 \"rel_drift\": {}, \"band\": {}}}",
                json_escape(&k.experiment),
                json_escape(&k.algo),
                json_escape(&k.adversary),
                json_escape(&k.backend),
                k.p,
                k.t,
                k.d,
                k.seeds,
                json_escape(&v.metric),
                series(&v.series),
                num(v.first),
                num(v.last),
                num(v.rel_drift()),
                num(v.fraction),
            );
            out.push_str(if i + 1 == self.violations.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn entry(commit: &str, work: f64) -> HistoryEntry {
        let mut cells = BTreeMap::new();
        for (backend, wall) in [("sim", 0.0), ("threads", 2.5)] {
            let key = CellKey {
                experiment: "e01".to_string(),
                algo: "soloall".to_string(),
                adversary: "stage".to_string(),
                backend: backend.to_string(),
                p: 4,
                t: 16,
                d: 1,
                seeds: 2,
            };
            let mut metrics = BTreeMap::new();
            metrics.insert("mean_work".to_string(), work);
            metrics.insert("wall_clock_ms".to_string(), wall);
            cells.insert(key, metrics);
        }
        HistoryEntry {
            commit: commit.to_string(),
            timestamp: "2026-08-08T00:00:00Z".to_string(),
            cells_per_sec: f64::NAN,
            mode: "smoke".to_string(),
            result_schema_version: 1,
            cells,
        }
    }

    fn ledger(values: &[f64]) -> History {
        History {
            entries: values
                .iter()
                .enumerate()
                .map(|(i, v)| entry(&format!("c{i}"), *v))
                .collect(),
        }
    }

    #[test]
    fn band_specs_parse_in_all_three_spellings() {
        for spec in ["mean_work=±1%", "mean_work=1%", "mean_work=0.01"] {
            let b = parse_band(spec).unwrap();
            assert_eq!(b.metric, "mean_work");
            assert!((b.fraction - 0.01).abs() < 1e-12, "{spec}");
        }
        for bad in ["mean_work", "=1%", "m=x%", "m=-1%", "m=inf"] {
            assert!(parse_band(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn slope_handles_the_edge_cases() {
        // Single entry: no slope.
        assert_eq!(slope(&[5.0]), None);
        // All-equal series: slope exactly zero.
        assert_eq!(slope(&[3.0, 3.0, 3.0, 3.0]), Some(0.0));
        // NaN rejection: a poisoned series has no slope.
        assert_eq!(slope(&[1.0, f64::NAN, 3.0]), None);
        assert_eq!(slope(&[1.0, f64::INFINITY]), None);
        // A clean linear series recovers its slope exactly.
        assert_eq!(slope(&[10.0, 12.0, 14.0, 16.0]), Some(2.0));
        // Least squares through noisy symmetric points.
        let s = slope(&[0.0, 2.0, 1.0, 3.0]).unwrap();
        assert!((s - 0.8).abs() < 1e-12, "{s}");
    }

    #[test]
    fn sparklines_are_ascii_and_handle_flat_and_nan() {
        let s = sparkline(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(s, ".:-=+*#@");
        assert!(s.is_ascii());
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "===", "flat series");
        assert_eq!(sparkline(&[1.0, f64::NAN, 2.0]), ".?@");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn single_entry_windows_are_clean() {
        let report = analyze(
            &ledger(&[100.0]),
            &TrendConfig {
                last: None,
                bands: vec![parse_band("mean_work=1%").unwrap()],
            },
        )
        .unwrap();
        assert_eq!(report.window, 1);
        assert!(report.is_clean(), "first == last, nothing can drift");
        assert_eq!(report.checked, 1);
        // And an empty ledger is an error, not a silent pass.
        assert!(analyze(&History::default(), &TrendConfig::default()).is_err());
    }

    #[test]
    fn cumulative_drift_fails_even_when_every_step_passes() {
        // The acceptance scenario: +0.4%/entry for five entries. Every
        // adjacent step passes `doall compare` at 1% tolerance, but the
        // cumulative +1.6% crosses the ±1% band.
        let values = [100.0, 100.4, 100.8, 101.2, 101.6];
        let history = ledger(&values);
        for pair in history.entries.windows(2) {
            let cmp = crate::compare::compare(
                &pair[0].to_baseline_set(),
                &pair[1].to_baseline_set(),
                0.01,
            );
            assert!(cmp.is_clean(), "each step is inside per-step tolerance");
        }
        let report = analyze(
            &history,
            &TrendConfig {
                last: None,
                bands: vec![parse_band("mean_work=±1%").unwrap()],
            },
        )
        .unwrap();
        assert!(!report.is_clean(), "{}", report.render_text());
        assert_eq!(report.violations.len(), 1, "one sim cell gated");
        let v = &report.violations[0];
        assert_eq!(v.key.backend, "sim", "threads cells are never gated");
        assert_eq!(v.first, 100.0);
        assert_eq!(v.last, 101.6);
        assert!(report.render_text().contains("1 violation(s)"));
        // Restricting the window below the creep length hides it again.
        let short = analyze(
            &history,
            &TrendConfig {
                last: Some(2),
                bands: vec![parse_band("mean_work=±1%").unwrap()],
            },
        )
        .unwrap();
        assert!(short.is_clean(), "one step is inside the band");
        assert_eq!(short.window, 2);
    }

    #[test]
    fn exempt_data_never_renders_or_gates() {
        // wall_clock_ms varies wildly across entries, and the threads
        // cell's mean_work differs too — neither shows up anywhere.
        let mut history = ledger(&[100.0, 100.0]);
        for (i, e) in history.entries.iter_mut().enumerate() {
            for (key, metrics) in &mut e.cells {
                metrics.insert("wall_clock_ms".to_string(), 1000.0 * i as f64);
                if key.backend == "threads" {
                    metrics.insert("mean_work".to_string(), 7.0 + 90.0 * i as f64);
                }
            }
        }
        let report = analyze(
            &history,
            &TrendConfig {
                last: None,
                bands: vec![
                    parse_band("mean_work=0%").unwrap(),
                    parse_band("wall_clock_ms=0%").unwrap(),
                ],
            },
        )
        .unwrap();
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.checked, 1, "only the sim cell's mean_work");
        // The configured bands echo in the gate header, but no exempt
        // data row is ever rendered: no metric-table row, no series.
        assert!(!report.metrics.iter().any(|m| m.name == "wall_clock_ms"));
        assert!(!report.render_text().contains("| wall_clock_ms"));
        assert!(!report.render_json().contains("\"name\": \"wall_clock_ms\""));
        // The wildly varying threads-cell mean_work never moves the
        // aggregate: the sim cell's flat 100.0 is the whole series.
        let mw = report
            .metrics
            .iter()
            .find(|m| m.name == "mean_work")
            .unwrap();
        assert_eq!(mw.series, vec![100.0, 100.0]);
    }

    #[test]
    fn one_sided_metric_presence_violates_the_band() {
        let mut history = ledger(&[100.0, 100.0]);
        let last = history.entries.last_mut().unwrap();
        for (key, metrics) in &mut last.cells {
            if key.backend == "sim" {
                metrics.insert("completed".to_string(), 1.0);
            }
        }
        let report = analyze(
            &history,
            &TrendConfig {
                last: None,
                bands: vec![parse_band("completed=50%").unwrap()],
            },
        )
        .unwrap();
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].first.is_nan());
    }

    #[test]
    fn renders_are_deterministic_and_json_is_balanced() {
        let history = ledger(&[100.0, 100.4, 101.6]);
        let cfg = TrendConfig {
            last: None,
            bands: vec![parse_band("mean_work=1%").unwrap()],
        };
        let report = analyze(&history, &cfg).unwrap();
        assert_eq!(report.render_text(), report.render_text());
        let json = report.render_json();
        assert_eq!(json, report.render_json());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        let doc = crate::resultset::parse_json(&json).unwrap();
        assert_eq!(doc.get("clean"), Some(&crate::resultset::Json::Bool(false)));
        assert_eq!(
            doc.get("window"),
            Some(&crate::resultset::Json::Number(3.0))
        );
    }
}
