//! Baseline comparison for sweep results: parse two result sets (via
//! the shared [`crate::resultset`] schema module), match cells by
//! `(experiment, algo, adversary, backend, p, t, d, seeds)`, and
//! classify every matched cell as exact or drifting and every unmatched
//! cell as added or removed. Records without a `backend` field (every
//! pre-backend baseline) key as `"sim"`, so old files keep matching.
//!
//! The sweep harness is byte-deterministic per cell (seeds derive from
//! cell parameters, output carries nothing time- or machine-dependent),
//! so on an unchanged grid *any* value difference is a regression — the
//! default tolerance is therefore `0`. A non-zero tolerance treats a
//! metric as drifted only when `|new − old| > tolerance · max(1, |old|,
//! |new|)` (relative, with an absolute floor of `tolerance` for values
//! near zero).
//!
//! Two exemptions keep `--tolerance 0` honest about what determinism
//! promises: the measured-only metrics ([`MEASURED_ONLY_METRICS`] —
//! wall-clock and engine-side accounting) are excluded from drift
//! classification everywhere, and cells on the `threads` backend are
//! compared for *presence* only (their work/message counts depend on OS
//! scheduling, so value drift there is expected, not a regression).
//!
//! Rendering is deterministic: cells sort by key, metrics by name, and
//! floats print via Rust's shortest-round-trip `Display` — comparing the
//! same pair of files always yields byte-identical output, regardless of
//! thread counts anywhere upstream.

// Schema types used to live here; the re-export keeps
// `doall_bench::compare::{parse_result_set, …}` paths compiling.
pub use crate::resultset::{
    load_result_set, parse_json, parse_result_set, BaselineSet, CellKey, Json, ResultSetError,
};

use crate::resultset::{json_escape, json_number};
use crate::Table;
use std::collections::BTreeSet;
use std::fmt;
use std::fmt::Write as _;

/// Version of the *diff* JSON schema emitted by
/// [`Comparison::render_json`]; independent of the result-set schema
/// ([`crate::resultset::SCHEMA_VERSION`]).
pub const DIFF_SCHEMA_VERSION: u32 = 1;

/// Metric names that are *measured* (wall-clock or engine-side
/// accounting) rather than simulated: never part of drift
/// classification, whatever the tolerance — two byte-identical sim runs
/// on different machines may legitimately disagree on them, and the
/// `sim` backend pins them to zero anyway.
pub const MEASURED_ONLY_METRICS: &[&str] =
    &["wall_clock_ms", "crashed_drained", "max_crashed_backlog"];

/// The backend key whose cells compare by presence only (see the module
/// docs): real-thread counts are schedule-dependent.
const MEASURED_BACKEND: &str = "threads";

/// `true` when `metric` of a cell keyed `key` is exempt from drift
/// classification. Trend analysis applies the same exemption so its
/// output stays byte-identical across `--threads` too.
pub(crate) fn metric_exempt(key: &CellKey, metric: &str) -> bool {
    key.backend == MEASURED_BACKEND || MEASURED_ONLY_METRICS.contains(&metric)
}

/// Copies `old`'s values onto `results` for every exemption-covered
/// (cell, metric) pair the two share: `threads`-backend cells and the
/// measured-only metrics re-measure on every run by nature, and their
/// values are never drift-gated anyway. `test --record` runs this over
/// the previous baseline so an unchanged suite regenerates the
/// committed file *byte-identically* instead of churning timing noise;
/// genuinely new or removed cells/metrics still come and go.
pub fn preserve_measured_values(results: &mut crate::resultset::ResultSet, old: &BaselineSet) {
    for record in &mut results.records {
        let key = record.key();
        let Some(old_metrics) = old.cells.get(&key) else {
            continue;
        };
        for (name, value) in &mut record.metrics {
            if metric_exempt(&key, name) {
                if let Some(v) = old_metrics.get(name) {
                    *value = *v;
                }
            }
        }
    }
}

/// An error from loading or comparing result sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompareError(String);

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CompareError {}

impl From<ResultSetError> for CompareError {
    fn from(e: ResultSetError) -> Self {
        CompareError(e.to_string())
    }
}

// === Comparison ===========================================================

/// How one matched-or-unmatched cell compares across the two sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Present in both; at least one metric drifted beyond tolerance.
    Drift,
    /// Present only in the new set.
    Added,
    /// Present only in the old set.
    Removed,
}

impl CellStatus {
    fn label(self) -> &'static str {
        match self {
            CellStatus::Drift => "drift",
            CellStatus::Added => "added",
            CellStatus::Removed => "removed",
        }
    }
}

/// One drifting metric of a matched cell: both sides plus the deltas.
/// `None` means the metric is absent on that side; `NaN` means it was
/// serialized as `null`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub old: Option<f64>,
    /// New value.
    pub new: Option<f64>,
}

impl MetricDelta {
    /// `new − old`, when both sides are finite.
    #[must_use]
    pub fn abs_delta(&self) -> Option<f64> {
        match (self.old, self.new) {
            (Some(o), Some(n)) if o.is_finite() && n.is_finite() => Some(n - o),
            _ => None,
        }
    }

    /// `(new − old) / |old|`, when defined.
    #[must_use]
    pub fn rel_delta(&self) -> Option<f64> {
        match (self.old, self.new) {
            (Some(o), Some(n)) if o.is_finite() && n.is_finite() && o != 0.0 => {
                Some((n - o) / o.abs())
            }
            _ => None,
        }
    }
}

/// A non-exact cell in a comparison: its key, classification, and (for
/// drifting cells) the metrics that moved.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// The cell's identity.
    pub key: CellKey,
    /// Drift / added / removed.
    pub status: CellStatus,
    /// Drifting metrics (sorted by name); empty for added/removed cells,
    /// whose whole metric map is one-sided.
    pub deltas: Vec<MetricDelta>,
    /// Metric count on whichever side(s) the cell exists — rendered for
    /// added/removed rows.
    pub metric_count: usize,
}

/// The outcome of comparing two result sets.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The tolerance the comparison ran with.
    pub tolerance: f64,
    /// `(schema_version, mode, cell count)` of the baseline.
    pub old_info: (u64, String, usize),
    /// `(schema_version, mode, cell count)` of the new set.
    pub new_info: (u64, String, usize),
    /// Matched cells whose every metric agreed within tolerance.
    pub exact: usize,
    /// Every non-exact cell, sorted by key.
    pub cells: Vec<CellDiff>,
}

/// `true` when a metric value pair counts as drift at `tolerance`.
///
/// Absence on exactly one side is drift; `NaN` (serialized `null`)
/// equals itself; otherwise the test is
/// `|new − old| > tolerance · max(1, |old|, |new|)` — so `tolerance = 0`
/// demands exact equality, and a non-zero tolerance is relative with an
/// absolute floor for near-zero values.
#[must_use]
pub fn drifted(old: Option<f64>, new: Option<f64>, tolerance: f64) -> bool {
    match (old, new) {
        (None, None) => false,
        (None, Some(_)) | (Some(_), None) => true,
        (Some(o), Some(n)) => {
            if o.is_nan() && n.is_nan() {
                false
            } else if o.is_nan() || n.is_nan() {
                true
            } else {
                (n - o).abs() > tolerance * o.abs().max(n.abs()).max(1.0)
            }
        }
    }
}

/// Compares `new` against the baseline `old` at `tolerance`.
#[must_use]
pub fn compare(old: &BaselineSet, new: &BaselineSet, tolerance: f64) -> Comparison {
    let mut cells = Vec::new();
    let mut exact = 0usize;
    for (key, old_metrics) in &old.cells {
        match new.cells.get(key) {
            None => cells.push(CellDiff {
                key: key.clone(),
                status: CellStatus::Removed,
                deltas: Vec::new(),
                metric_count: old_metrics.len(),
            }),
            Some(new_metrics) => {
                let names: BTreeSet<&String> =
                    old_metrics.keys().chain(new_metrics.keys()).collect();
                let metric_count = names.len();
                let deltas: Vec<MetricDelta> = names
                    .into_iter()
                    .filter_map(|name| {
                        if metric_exempt(key, name) {
                            return None;
                        }
                        let o = old_metrics.get(name).copied();
                        let n = new_metrics.get(name).copied();
                        drifted(o, n, tolerance).then(|| MetricDelta {
                            name: name.clone(),
                            old: o,
                            new: n,
                        })
                    })
                    .collect();
                if deltas.is_empty() {
                    exact += 1;
                } else {
                    cells.push(CellDiff {
                        key: key.clone(),
                        status: CellStatus::Drift,
                        deltas,
                        metric_count,
                    });
                }
            }
        }
    }
    for (key, new_metrics) in &new.cells {
        if !old.cells.contains_key(key) {
            cells.push(CellDiff {
                key: key.clone(),
                status: CellStatus::Added,
                deltas: Vec::new(),
                metric_count: new_metrics.len(),
            });
        }
    }
    cells.sort_by(|a, b| a.key.cmp(&b.key));
    Comparison {
        tolerance,
        old_info: (old.schema_version, old.mode.clone(), old.cells.len()),
        new_info: (new.schema_version, new.mode.clone(), new.cells.len()),
        exact,
        cells,
    }
}

fn value_cell(v: Option<f64>) -> String {
    match v {
        Some(v) => json_number(v),
        None => "—".to_string(),
    }
}

impl Comparison {
    /// Count of cells with the given status.
    #[must_use]
    pub fn count(&self, status: CellStatus) -> usize {
        self.cells.iter().filter(|c| c.status == status).count()
    }

    /// `true` when the comparison found nothing to flag: schemas match
    /// and every cell of both sets matched exactly (within tolerance).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.cells.is_empty() && self.old_info.0 == self.new_info.0
    }

    /// Renders the deterministic human-readable diff: a header, and —
    /// when anything drifted — a Markdown table with one row per
    /// drifting metric (plus one row per added/removed cell).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "baseline comparison — tolerance {}",
            json_number(self.tolerance)
        );
        let side = |(schema, mode, cells): &(u64, String, usize)| {
            format!("mode={mode} schema={schema} cells={cells}")
        };
        let _ = writeln!(out, "  old: {}", side(&self.old_info));
        let _ = writeln!(out, "  new: {}", side(&self.new_info));
        let _ = writeln!(
            out,
            "  exact={} drift={} added={} removed={}",
            self.exact,
            self.count(CellStatus::Drift),
            self.count(CellStatus::Added),
            self.count(CellStatus::Removed),
        );
        if self.old_info.0 != self.new_info.0 {
            let _ = writeln!(
                out,
                "  schema_version changed: {} -> {} (value comparison unreliable)",
                self.old_info.0, self.new_info.0
            );
        }
        if self.old_info.1 != self.new_info.1 {
            let _ = writeln!(
                out,
                "  note: mode changed: {} -> {}",
                self.old_info.1, self.new_info.1
            );
        }
        if self.is_clean() {
            let _ = writeln!(out, "all {} matched cells are exact — no drift", self.exact);
            return out;
        }
        let mut table = Table::new(vec![
            "status",
            "experiment",
            "algo",
            "adversary",
            "backend",
            "shape",
            "d",
            "seeds",
            "metric",
            "old",
            "new",
            "delta",
            "rel",
        ]);
        for cell in &self.cells {
            let k = &cell.key;
            let base = vec![
                cell.status.label().to_string(),
                k.experiment.clone(),
                k.algo.clone(),
                k.adversary.clone(),
                k.backend.clone(),
                format!("{}x{}", k.p, k.t),
                k.d.to_string(),
                k.seeds.to_string(),
            ];
            if cell.deltas.is_empty() {
                let mut row = base;
                row.push(format!("({} metrics)", cell.metric_count));
                row.extend(["—", "—", "—", "—"].map(String::from));
                table.row(row);
            } else {
                for delta in &cell.deltas {
                    let mut row = base.clone();
                    row.push(delta.name.clone());
                    row.push(value_cell(delta.old));
                    row.push(value_cell(delta.new));
                    row.push(match delta.abs_delta() {
                        Some(d) => format!("{d:+}"),
                        None => "—".to_string(),
                    });
                    row.push(match delta.rel_delta() {
                        Some(r) => format!("{:+.3}%", r * 100.0),
                        None => "—".to_string(),
                    });
                    table.row(row);
                }
            }
        }
        out.push_str(&table.render());
        out
    }

    /// Renders the deterministic machine-readable diff
    /// (`diff_schema_version` [`DIFF_SCHEMA_VERSION`]).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"diff_schema_version\": {DIFF_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"tolerance\": {},", json_number(self.tolerance));
        let side = |(schema, mode, cells): &(u64, String, usize)| {
            format!(
                "{{\"mode\": \"{}\", \"schema_version\": {schema}, \"cells\": {cells}}}",
                json_escape(mode)
            )
        };
        let _ = writeln!(out, "  \"old\": {},", side(&self.old_info));
        let _ = writeln!(out, "  \"new\": {},", side(&self.new_info));
        let _ = writeln!(
            out,
            "  \"summary\": {{\"exact\": {}, \"drift\": {}, \"added\": {}, \"removed\": {}}},",
            self.exact,
            self.count(CellStatus::Drift),
            self.count(CellStatus::Added),
            self.count(CellStatus::Removed),
        );
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let k = &cell.key;
            let _ = write!(
                out,
                "    {{\"status\": \"{}\", \"experiment\": \"{}\", \"algo\": \"{}\", \
                 \"adversary\": \"{}\", \"backend\": \"{}\", \"p\": {}, \"t\": {}, \"d\": {}, \
                 \"seeds\": {}, \"metrics\": [",
                cell.status.label(),
                json_escape(&k.experiment),
                json_escape(&k.algo),
                json_escape(&k.adversary),
                json_escape(&k.backend),
                k.p,
                k.t,
                k.d,
                k.seeds,
            );
            for (j, delta) in cell.deltas.iter().enumerate() {
                let opt = |v: Option<f64>| match v {
                    Some(v) => json_number(v),
                    None => "null".to_string(),
                };
                let _ = write!(
                    out,
                    "{}{{\"name\": \"{}\", \"old\": {}, \"new\": {}, \"delta\": {}, \"rel\": {}}}",
                    if j == 0 { "" } else { ", " },
                    json_escape(&delta.name),
                    opt(delta.old),
                    opt(delta.new),
                    opt(delta.abs_delta()),
                    opt(delta.rel_delta()),
                );
            }
            out.push_str("]}");
            out.push_str(if i + 1 == self.cells.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Loads two result-set files and compares them.
///
/// # Errors
///
/// Returns a [`CompareError`] if either file cannot be read or parsed.
pub fn compare_files(
    old_path: &str,
    new_path: &str,
    tolerance: f64,
) -> Result<Comparison, CompareError> {
    let old = load_result_set(old_path)?;
    let new = load_result_set(new_path)?;
    Ok(compare(&old, &new, tolerance))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(records: &str) -> BaselineSet {
        let text = format!(
            "{{\"schema_version\": 1, \"generator\": \"x\", \"mode\": \"smoke\", \
             \"records\": [{records}]}}"
        );
        parse_result_set(&text).unwrap()
    }

    fn record(algo: &str, d: u64, work: f64) -> String {
        format!(
            "{{\"experiment\": \"e01\", \"algo\": \"{algo}\", \"adversary\": \"stage\", \
             \"p\": 4, \"t\": 16, \"d\": {d}, \"seeds\": 1, \
             \"metrics\": {{\"mean_work\": {work}, \"completed\": 1}}}}"
        )
    }

    #[test]
    fn parses_the_harness_schema() {
        let s = set(&[record("soloall", 1, 64.0), record("da:3", 2, 40.5)].join(", "));
        assert_eq!(s.schema_version, 1);
        assert_eq!(s.mode, "smoke");
        assert_eq!(s.cells.len(), 2);
        let key = CellKey {
            experiment: "e01".into(),
            algo: "da:3".into(),
            adversary: "stage".into(),
            backend: "sim".into(),
            p: 4,
            t: 16,
            d: 2,
            seeds: 1,
        };
        assert_eq!(s.cells[&key]["mean_work"], 40.5);
    }

    #[test]
    fn preserving_measured_values_makes_rerecording_byte_stable() {
        use crate::grid::{AdversarySpec, Backend, Cell};
        use crate::resultset::{Record, ResultSet};
        use std::collections::BTreeMap;
        let make = |backend, wall: f64, work: f64| {
            let mut metrics = BTreeMap::new();
            metrics.insert("mean_work".to_string(), work);
            metrics.insert("wall_clock_ms".to_string(), wall);
            Record {
                experiment: "e17".to_string(),
                cell: Cell {
                    algo: "paran1".to_string(),
                    adversary: AdversarySpec::Unit,
                    p: 4,
                    t: 16,
                    d: 2,
                    seeds: 1,
                    cell_seed: 7,
                    backend: Some(backend),
                },
                metrics,
            }
        };
        let old = ResultSet {
            mode: "smoke".to_string(),
            records: vec![
                make(Backend::Sim, 0.0, 64.0),
                make(Backend::Threads, 1.25, 70.0),
            ],
        };
        // A rerun re-measures wall clocks and thread counts...
        let mut fresh = ResultSet {
            mode: "smoke".to_string(),
            records: vec![
                make(Backend::Sim, 0.0, 64.0),
                make(Backend::Threads, 9.75, 71.0),
            ],
        };
        // ...but preserving the exempt values restores the old bytes.
        preserve_measured_values(&mut fresh, &BaselineSet::of(&old));
        assert_eq!(fresh.to_json(), old.to_json());
        // A genuine sim-value change is NOT papered over.
        let mut drifted_run = ResultSet {
            mode: "smoke".to_string(),
            records: vec![
                make(Backend::Sim, 0.0, 65.0),
                make(Backend::Threads, 1.25, 70.0),
            ],
        };
        preserve_measured_values(&mut drifted_run, &BaselineSet::of(&old));
        assert_ne!(drifted_run.to_json(), old.to_json());
        assert_eq!(drifted_run.records[0].metrics["mean_work"], 65.0);
        // New cells (absent from the old baseline) keep fresh values.
        let mut added = ResultSet {
            mode: "smoke".to_string(),
            records: vec![make(Backend::Threads, 3.5, 80.0)],
        };
        let empty = ResultSet {
            mode: "smoke".to_string(),
            records: Vec::new(),
        };
        preserve_measured_values(&mut added, &BaselineSet::of(&empty));
        assert_eq!(added.records[0].metrics["wall_clock_ms"], 3.5);
    }

    #[test]
    fn backend_defaults_to_sim_and_distinguishes_cells() {
        let cell = |backend_field: &str, work: f64| {
            format!(
                "{{\"experiment\": \"e17\", \"algo\": \"paran1\", \"adversary\": \"unit\", \
                 {backend_field}\"p\": 4, \"t\": 16, \"d\": 2, \"seeds\": 1, \
                 \"metrics\": {{\"mean_work\": {work}}}}}"
            )
        };
        // A pre-backend baseline (no field) matches a tagged sim record.
        let old = set(&cell("", 64.0));
        let new = set(&cell("\"backend\": \"sim\", ", 64.0));
        assert!(compare(&old, &new, 0.0).is_clean());
        // sim and threads are distinct cells, not value drift.
        let both = set(&[
            cell("\"backend\": \"sim\", ", 64.0),
            cell("\"backend\": \"threads\", ", 71.0),
        ]
        .join(", "));
        assert_eq!(both.cells.len(), 2);
        let cmp = compare(&old, &both, 0.0);
        assert_eq!(cmp.exact, 1, "the sim cell matches the untagged baseline");
        assert_eq!(cmp.count(CellStatus::Added), 1, "the threads cell is new");
        // The non-default backend is named in the rendered key.
        let added = cmp.cells.iter().find(|c| c.status == CellStatus::Added);
        assert!(added.unwrap().key.to_string().contains("backend=threads"));
    }

    #[test]
    fn measured_only_metrics_never_drift() {
        let cell = |extra: &str| {
            format!(
                "{{\"experiment\": \"e17\", \"algo\": \"paran1\", \"adversary\": \"unit\", \
                 \"backend\": \"sim\", \"p\": 4, \"t\": 16, \"d\": 2, \"seeds\": 1, \
                 \"metrics\": {{\"mean_work\": 64{extra}}}}}"
            )
        };
        // Value changes and one-sided presence of the measured-only trio
        // are both invisible at tolerance 0 …
        let old = set(&cell(", \"wall_clock_ms\": 0, \"crashed_drained\": 0"));
        let new = set(&cell(
            ", \"wall_clock_ms\": 3.25, \"max_crashed_backlog\": 7",
        ));
        assert!(compare(&old, &new, 0.0).is_clean());
        // … while the simulated metrics still gate exactly.
        let drifted_work = set(&cell(", \"wall_clock_ms\": 1").replacen("64", "65", 1));
        let cmp = compare(&old, &drifted_work, 0.0);
        assert_eq!(cmp.count(CellStatus::Drift), 1);
        assert_eq!(cmp.cells[0].deltas.len(), 1);
        assert_eq!(cmp.cells[0].deltas[0].name, "mean_work");
    }

    #[test]
    fn threads_cells_compare_by_presence_only() {
        let cell = |d: u64, work: f64| {
            format!(
                "{{\"experiment\": \"e17\", \"algo\": \"paran1\", \"adversary\": \"unit\", \
                 \"backend\": \"threads\", \"p\": 4, \"t\": 16, \"d\": {d}, \"seeds\": 1, \
                 \"metrics\": {{\"mean_work\": {work}, \"wall_clock_ms\": {work}}}}}"
            )
        };
        // Different work counts on the threads backend: expected
        // scheduling noise, not drift.
        let old = set(&[cell(2, 64.0), cell(8, 80.0)].join(", "));
        let new = set(&[cell(2, 71.0), cell(8, 78.5)].join(", "));
        let cmp = compare(&old, &new, 0.0);
        assert!(cmp.is_clean(), "{}", cmp.render_text());
        assert_eq!(cmp.exact, 2);
        // A vanished threads cell is still a structural regression.
        let shrunk = set(&cell(2, 71.0));
        let cmp = compare(&old, &shrunk, 0.0);
        assert!(!cmp.is_clean());
        assert_eq!(cmp.count(CellStatus::Removed), 1);
    }

    #[test]
    fn null_metrics_parse_as_nan_and_match_themselves() {
        let rec = "{\"experiment\": \"e01\", \"algo\": \"a\", \"adversary\": \"stage\", \
                   \"p\": 1, \"t\": 1, \"d\": 1, \"seeds\": 1, \"metrics\": {\"bad\": null}}";
        let s = set(rec);
        let v = s.cells.values().next().unwrap()["bad"];
        assert!(v.is_nan());
        let cmp = compare(&s, &s, 0.0);
        assert!(cmp.is_clean(), "{}", cmp.render_text());
    }

    #[test]
    fn schema_errors_are_descriptive() {
        for (doc, needle) in [
            ("[1]", "top level"),
            ("{\"mode\": \"x\", \"records\": []}", "schema_version"),
            ("{\"schema_version\": 1, \"records\": []}", "mode"),
            ("{\"schema_version\": 1, \"mode\": \"x\"}", "records"),
            (
                "{\"schema_version\": 1, \"mode\": \"x\", \"records\": [{}]}",
                "records[0]",
            ),
        ] {
            let e = parse_result_set(doc).unwrap_err().to_string();
            assert!(e.contains(needle), "`{doc}` -> {e}");
        }
    }

    #[test]
    fn adversary_spellings_are_canonicalized_for_matching() {
        // A pre-normalization baseline may spell numeric knobs with
        // leading zeros or an explicit default stagger; both must match a
        // fresh run's canonical key instead of reporting removed + added.
        // The normalization itself has exactly one implementation:
        // resultset::canonical_adversary.
        let cell = |adversary: &str, work: f64| {
            format!(
                "{{\"experiment\": \"e12\", \"algo\": \"paran1\", \"adversary\": \"{adversary}\", \
                 \"p\": 8, \"t\": 32, \"d\": 4, \"seeds\": 1, \
                 \"metrics\": {{\"mean_work\": {work}}}}}"
            )
        };
        let old = set(&[cell("crash:07", 64.0), cell("crash:25@even", 40.0)].join(", "));
        let new = set(&[cell("crash:7", 64.0), cell("crash:25", 40.0)].join(", "));
        let cmp = compare(&old, &new, 0.0);
        assert!(cmp.is_clean(), "{}", cmp.render_text());
        assert_eq!(cmp.exact, 2);
        // Keys outside the grammar pass through verbatim (no false merge).
        let exotic = set(&cell("quantum:3", 1.0));
        assert!(exotic.cells.keys().any(|k| k.adversary == "quantum:3"));
    }

    #[test]
    fn duplicate_cells_are_rejected() {
        let e = parse_result_set(&format!(
            "{{\"schema_version\": 1, \"mode\": \"smoke\", \"records\": [{}, {}]}}",
            record("soloall", 1, 64.0),
            record("soloall", 1, 65.0),
        ))
        .unwrap_err();
        assert!(e.to_string().contains("duplicate cell"), "{e}");
    }

    #[test]
    fn identical_sets_compare_clean() {
        let s = set(&record("soloall", 1, 64.0));
        let cmp = compare(&s, &s, 0.0);
        assert!(cmp.is_clean());
        assert_eq!(cmp.exact, 1);
        assert!(cmp.cells.is_empty());
        assert!(cmp.render_text().contains("no drift"));
    }

    #[test]
    fn drift_added_and_removed_are_classified() {
        let old = set(&[record("soloall", 1, 64.0), record("soloall", 2, 64.0)].join(", "));
        let new = set(&[record("soloall", 1, 70.0), record("da:3", 2, 40.0)].join(", "));
        let cmp = compare(&old, &new, 0.0);
        assert!(!cmp.is_clean());
        assert_eq!(cmp.exact, 0);
        assert_eq!(cmp.count(CellStatus::Drift), 1);
        assert_eq!(cmp.count(CellStatus::Added), 1);
        assert_eq!(cmp.count(CellStatus::Removed), 1);
        let drift = cmp
            .cells
            .iter()
            .find(|c| c.status == CellStatus::Drift)
            .unwrap();
        assert_eq!(drift.deltas.len(), 1);
        assert_eq!(drift.deltas[0].name, "mean_work");
        assert_eq!(drift.deltas[0].abs_delta(), Some(6.0));
        let text = cmp.render_text();
        for needle in ["drift", "added", "removed", "mean_work", "+6", "+9.375%"] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn metric_appearing_or_vanishing_is_drift() {
        let old = set(&record("soloall", 1, 64.0));
        let extra = "{\"experiment\": \"e01\", \"algo\": \"soloall\", \"adversary\": \"stage\", \
                     \"p\": 4, \"t\": 16, \"d\": 1, \"seeds\": 1, \
                     \"metrics\": {\"mean_work\": 64, \"completed\": 1, \"crash_count\": 2}}";
        let new = set(extra);
        let cmp = compare(&old, &new, 0.0);
        assert_eq!(cmp.count(CellStatus::Drift), 1);
        assert_eq!(cmp.cells[0].deltas[0].name, "crash_count");
        assert_eq!(cmp.cells[0].deltas[0].old, None);
    }

    #[test]
    fn tolerance_is_relative_with_a_unit_floor() {
        let old = set(&record("soloall", 1, 1000.0));
        let new = set(&record("soloall", 1, 1004.0));
        assert!(compare(&old, &new, 0.01).is_clean(), "0.4% < 1%");
        assert!(!compare(&old, &new, 0.001).is_clean(), "0.4% > 0.1%");
        // Near-zero values use the absolute floor of `tolerance`.
        assert!(!drifted(Some(0.0), Some(0.0005), 0.001));
        assert!(drifted(Some(0.0), Some(0.5), 0.001));
        // Tolerance 0 is exact.
        assert!(drifted(Some(1.0), Some(1.0 + f64::EPSILON), 0.0));
        assert!(!drifted(Some(1.0), Some(1.0), 0.0));
    }

    #[test]
    fn schema_version_mismatch_is_never_clean() {
        let old = set(&record("soloall", 1, 64.0));
        let mut new = old.clone();
        new.schema_version = 2;
        let cmp = compare(&old, &new, 0.0);
        assert!(!cmp.is_clean());
        assert!(cmp.render_text().contains("schema_version changed"));
    }

    #[test]
    fn renders_are_deterministic_and_json_is_balanced() {
        let old = set(&[record("soloall", 1, 64.0), record("soloall", 2, 64.0)].join(", "));
        let new = set(&[record("soloall", 1, 70.0), record("da:3", 2, 40.0)].join(", "));
        let cmp = compare(&old, &new, 0.0);
        assert_eq!(cmp.render_text(), cmp.render_text());
        let json = cmp.render_json();
        assert_eq!(json, cmp.render_json());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // And the diff document itself parses with our own reader.
        let doc = parse_json(&json).unwrap();
        assert_eq!(doc.get("clean"), Some(&Json::Bool(false)));
        assert_eq!(
            doc.get("summary").unwrap().get("drift"),
            Some(&Json::Number(1.0))
        );
    }

    #[test]
    fn compare_files_reports_missing_files() {
        let e = compare_files("/nonexistent/a.json", "/nonexistent/b.json", 0.0).unwrap_err();
        assert!(e.to_string().contains("cannot read"));
    }
}
