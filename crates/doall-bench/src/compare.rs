//! Baseline comparison for sweep results: parse two result sets (our own
//! JSON schema, read by a minimal hand-rolled parser — no serde), match
//! cells by `(experiment, algo, adversary, backend, p, t, d, seeds)`,
//! and classify every matched cell as exact or drifting and every
//! unmatched cell as added or removed. Records without a `backend` field
//! (every pre-backend baseline) key as `"sim"`, so old files keep
//! matching.
//!
//! The sweep harness is byte-deterministic per cell (seeds derive from
//! cell parameters, output carries nothing time- or machine-dependent),
//! so on an unchanged grid *any* value difference is a regression — the
//! default tolerance is therefore `0`. A non-zero tolerance treats a
//! metric as drifted only when `|new − old| > tolerance · max(1, |old|,
//! |new|)` (relative, with an absolute floor of `tolerance` for values
//! near zero).
//!
//! Two exemptions keep `--tolerance 0` honest about what determinism
//! promises: the measured-only metrics ([`MEASURED_ONLY_METRICS`] —
//! wall-clock and engine-side accounting) are excluded from drift
//! classification everywhere, and cells on the `threads` backend are
//! compared for *presence* only (their work/message counts depend on OS
//! scheduling, so value drift there is expected, not a regression).
//!
//! Rendering is deterministic: cells sort by key, metrics by name, and
//! floats print via Rust's shortest-round-trip `Display` — comparing the
//! same pair of files always yields byte-identical output, regardless of
//! thread counts anywhere upstream.

use crate::output::{json_escape, json_number, ResultSet};
use crate::Table;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fmt::Write as _;

/// Version of the *diff* JSON schema emitted by
/// [`Comparison::render_json`]; independent of the result-set schema
/// ([`crate::output::SCHEMA_VERSION`]).
pub const DIFF_SCHEMA_VERSION: u32 = 1;

/// Metric names that are *measured* (wall-clock or engine-side
/// accounting) rather than simulated: never part of drift
/// classification, whatever the tolerance — two byte-identical sim runs
/// on different machines may legitimately disagree on them, and the
/// `sim` backend pins them to zero anyway.
pub const MEASURED_ONLY_METRICS: &[&str] =
    &["wall_clock_ms", "crashed_drained", "max_crashed_backlog"];

/// The backend key whose cells compare by presence only (see the module
/// docs): real-thread counts are schedule-dependent.
const MEASURED_BACKEND: &str = "threads";

/// `true` when `metric` of a cell keyed `key` is exempt from drift
/// classification.
fn metric_exempt(key: &CellKey, metric: &str) -> bool {
    key.backend == MEASURED_BACKEND || MEASURED_ONLY_METRICS.contains(&metric)
}

/// An error from reading or interpreting a result-set file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompareError(String);

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CompareError {}

fn err(msg: impl Into<String>) -> CompareError {
    CompareError(msg.into())
}

// === Minimal JSON reader ==================================================
//
// Just enough JSON for the sweep schema (and strict about it): objects,
// arrays, strings with the standard escapes (including `\uXXXX` surrogate
// pairs), numbers via `f64::from_str` (round-trips everything our writer
// emits), `true`/`false`/`null`. No serde, no vendored crate.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (our writer uses it for non-finite metric values).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in document order (duplicate keys kept as-is).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup (first match) when `self` is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn fail(&self, msg: &str) -> CompareError {
        err(format!("JSON error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), CompareError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, CompareError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, CompareError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.fail(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, CompareError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.fail("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, CompareError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.fail("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, CompareError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.fail("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.fail("non-ASCII \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.fail("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, CompareError> {
        self.eat(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    out.push_str(&self.text[run_start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.text[run_start..self.pos]);
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.fail("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..=0xDBFF).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(self.fail("bad low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.fail("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.fail(&format!("unknown escape `\\{}`", other as char)));
                        }
                    }
                    run_start = self.pos;
                }
                Some(b) if b < 0x20 => return Err(self.fail("raw control byte in string")),
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a valid &str,
                    // so continuation bytes follow their leader).
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, CompareError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let s = &self.text[start..self.pos];
        s.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| err(format!("JSON error at byte {start}: bad number `{s}`")))
    }
}

/// Parses a complete JSON document (one value plus optional trailing
/// whitespace).
///
/// # Errors
///
/// Returns a [`CompareError`] naming the first byte offset that fails to
/// parse.
pub fn parse_json(text: &str) -> Result<Json, CompareError> {
    let mut p = Parser::new(text);
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing garbage after JSON value"));
    }
    Ok(value)
}

// === The sweep result-set schema ==========================================

/// The identity of a cell for baseline matching: everything that names
/// the scenario, none of what measures it.
///
/// The `adversary` field holds the *canonical* spelling: result-set
/// parsing re-renders any key the grid grammar understands through
/// [`crate::grid::AdversarySpec`], so a pre-normalization baseline
/// containing `crash:07` matches a fresh run's `crash:7` instead of
/// reporting a spurious removed/added pair. Keys the grammar does not
/// know (future schema extensions) are kept verbatim.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CellKey {
    /// Experiment id (`"e01"` … `"e15"`, `"sweep"`, …).
    pub experiment: String,
    /// Algorithm key.
    pub algo: String,
    /// Adversary key.
    pub adversary: String,
    /// Backend key (`"sim"` / `"threads"`); `"sim"` when the record
    /// carries no `backend` field, so pre-backend baselines keep their
    /// identities.
    pub backend: String,
    /// Processors.
    pub p: u64,
    /// Tasks.
    pub t: u64,
    /// Delay bound.
    pub d: u64,
    /// Replicates per cell.
    pub seeds: u64,
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} vs {} {}x{} d={} seeds={}",
            self.experiment, self.algo, self.adversary, self.p, self.t, self.d, self.seeds
        )?;
        // The default backend stays invisible, so legacy (sim-only)
        // renderings are unchanged.
        if self.backend != "sim" {
            write!(f, " backend={}", self.backend)?;
        }
        Ok(())
    }
}

/// A result set reduced to what comparison needs: document metadata plus
/// cells keyed for matching. Serialized `null` metric values (non-finite
/// numbers) come back as `NaN`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineSet {
    /// The file's `schema_version`.
    pub schema_version: u64,
    /// The file's `mode` (`"smoke"`, `"full"`, `"custom"`).
    pub mode: String,
    /// Metric maps keyed by cell identity.
    pub cells: BTreeMap<CellKey, BTreeMap<String, f64>>,
}

impl BaselineSet {
    /// Reduces an in-memory [`ResultSet`] through its own rendered JSON,
    /// so comparison always sees exactly what serialization preserves.
    ///
    /// # Panics
    ///
    /// Panics if the harness's own JSON fails to re-parse (a writer bug)
    /// or if the set holds duplicate cell keys.
    #[must_use]
    pub fn of(results: &ResultSet) -> Self {
        parse_result_set(&results.to_json()).expect("the harness's own JSON round-trips")
    }
}

fn field<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, CompareError> {
    obj.get(key)
        .ok_or_else(|| err(format!("{what}: missing `{key}`")))
}

fn as_u64(value: &Json, what: &str) -> Result<u64, CompareError> {
    match value {
        Json::Number(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= 2f64.powi(53) =>
        {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Ok(*v as u64)
        }
        _ => Err(err(format!("{what}: expected a non-negative integer"))),
    }
}

fn as_str<'a>(value: &'a Json, what: &str) -> Result<&'a str, CompareError> {
    match value {
        Json::String(s) => Ok(s),
        _ => Err(err(format!("{what}: expected a string"))),
    }
}

/// Parses a sweep result-set document (the schema written by
/// [`ResultSet::to_json`]) into a [`BaselineSet`]. Unknown fields are
/// ignored (forward compatibility); missing or mistyped required fields
/// and duplicate cell keys are errors.
///
/// # Errors
///
/// Returns a [`CompareError`] describing the first structural problem.
pub fn parse_result_set(text: &str) -> Result<BaselineSet, CompareError> {
    let root = parse_json(text)?;
    if !matches!(root, Json::Object(_)) {
        return Err(err("result set: top level is not an object"));
    }
    let schema_version = as_u64(
        field(&root, "schema_version", "result set")?,
        "schema_version",
    )?;
    let mode = as_str(field(&root, "mode", "result set")?, "mode")?.to_string();
    let records = match field(&root, "records", "result set")? {
        Json::Array(items) => items,
        _ => return Err(err("records: expected an array")),
    };
    let mut cells: BTreeMap<CellKey, BTreeMap<String, f64>> = BTreeMap::new();
    for (i, record) in records.iter().enumerate() {
        let what = format!("records[{i}]");
        if !matches!(record, Json::Object(_)) {
            return Err(err(format!("{what}: expected an object")));
        }
        let raw_adversary = as_str(field(record, "adversary", &what)?, &what)?;
        let key = CellKey {
            experiment: as_str(field(record, "experiment", &what)?, &what)?.to_string(),
            algo: as_str(field(record, "algo", &what)?, &what)?.to_string(),
            // Canonicalize through the grid grammar so differently spelled
            // but identical adversaries (`crash:07` vs `crash:7`) match;
            // unknown keys pass through untouched.
            adversary: crate::grid::AdversarySpec::parse(raw_adversary)
                .map_or_else(|_| raw_adversary.to_string(), |spec| spec.to_string()),
            // Optional: absent on every pre-backend record (and on
            // legacy, axis-omitted grids today), which keys as `sim`.
            backend: match record.get("backend") {
                Some(value) => as_str(value, &what)?.to_string(),
                None => "sim".to_string(),
            },
            p: as_u64(field(record, "p", &what)?, &what)?,
            t: as_u64(field(record, "t", &what)?, &what)?,
            d: as_u64(field(record, "d", &what)?, &what)?,
            seeds: as_u64(field(record, "seeds", &what)?, &what)?,
        };
        let metrics_obj = match field(record, "metrics", &what)? {
            Json::Object(members) => members,
            _ => return Err(err(format!("{what}: metrics is not an object"))),
        };
        let mut metrics = BTreeMap::new();
        for (name, value) in metrics_obj {
            let v = match value {
                Json::Number(v) => *v,
                Json::Null => f64::NAN,
                _ => {
                    return Err(err(format!("{what}: metric `{name}` is not a number")));
                }
            };
            metrics.insert(name.clone(), v);
        }
        if cells.insert(key.clone(), metrics).is_some() {
            // Two records can collapse onto one key through adversary
            // canonicalization (e.g. a pre-normalization file holding both
            // `crash:07` and `crash:7` cells); name that in the error so
            // the "duplicate" is explicable when no literal dup exists.
            let hint = if raw_adversary == key.adversary {
                String::new()
            } else {
                format!(
                    " (adversary `{raw_adversary}` canonicalizes to `{}`)",
                    key.adversary
                )
            };
            return Err(err(format!("duplicate cell `{key}`{hint}")));
        }
    }
    Ok(BaselineSet {
        schema_version,
        mode,
        cells,
    })
}

/// Reads and parses a result-set file.
///
/// # Errors
///
/// Returns a [`CompareError`] for I/O problems or malformed content.
pub fn load_result_set(path: &str) -> Result<BaselineSet, CompareError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    parse_result_set(&text).map_err(|e| err(format!("{path}: {e}")))
}

// === Comparison ===========================================================

/// How one matched-or-unmatched cell compares across the two sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// Present in both; at least one metric drifted beyond tolerance.
    Drift,
    /// Present only in the new set.
    Added,
    /// Present only in the old set.
    Removed,
}

impl CellStatus {
    fn label(self) -> &'static str {
        match self {
            CellStatus::Drift => "drift",
            CellStatus::Added => "added",
            CellStatus::Removed => "removed",
        }
    }
}

/// One drifting metric of a matched cell: both sides plus the deltas.
/// `None` means the metric is absent on that side; `NaN` means it was
/// serialized as `null`.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub old: Option<f64>,
    /// New value.
    pub new: Option<f64>,
}

impl MetricDelta {
    /// `new − old`, when both sides are finite.
    #[must_use]
    pub fn abs_delta(&self) -> Option<f64> {
        match (self.old, self.new) {
            (Some(o), Some(n)) if o.is_finite() && n.is_finite() => Some(n - o),
            _ => None,
        }
    }

    /// `(new − old) / |old|`, when defined.
    #[must_use]
    pub fn rel_delta(&self) -> Option<f64> {
        match (self.old, self.new) {
            (Some(o), Some(n)) if o.is_finite() && n.is_finite() && o != 0.0 => {
                Some((n - o) / o.abs())
            }
            _ => None,
        }
    }
}

/// A non-exact cell in a comparison: its key, classification, and (for
/// drifting cells) the metrics that moved.
#[derive(Debug, Clone, PartialEq)]
pub struct CellDiff {
    /// The cell's identity.
    pub key: CellKey,
    /// Drift / added / removed.
    pub status: CellStatus,
    /// Drifting metrics (sorted by name); empty for added/removed cells,
    /// whose whole metric map is one-sided.
    pub deltas: Vec<MetricDelta>,
    /// Metric count on whichever side(s) the cell exists — rendered for
    /// added/removed rows.
    pub metric_count: usize,
}

/// The outcome of comparing two result sets.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The tolerance the comparison ran with.
    pub tolerance: f64,
    /// `(schema_version, mode, cell count)` of the baseline.
    pub old_info: (u64, String, usize),
    /// `(schema_version, mode, cell count)` of the new set.
    pub new_info: (u64, String, usize),
    /// Matched cells whose every metric agreed within tolerance.
    pub exact: usize,
    /// Every non-exact cell, sorted by key.
    pub cells: Vec<CellDiff>,
}

/// `true` when a metric value pair counts as drift at `tolerance`.
///
/// Absence on exactly one side is drift; `NaN` (serialized `null`)
/// equals itself; otherwise the test is
/// `|new − old| > tolerance · max(1, |old|, |new|)` — so `tolerance = 0`
/// demands exact equality, and a non-zero tolerance is relative with an
/// absolute floor for near-zero values.
#[must_use]
pub fn drifted(old: Option<f64>, new: Option<f64>, tolerance: f64) -> bool {
    match (old, new) {
        (None, None) => false,
        (None, Some(_)) | (Some(_), None) => true,
        (Some(o), Some(n)) => {
            if o.is_nan() && n.is_nan() {
                false
            } else if o.is_nan() || n.is_nan() {
                true
            } else {
                (n - o).abs() > tolerance * o.abs().max(n.abs()).max(1.0)
            }
        }
    }
}

/// Compares `new` against the baseline `old` at `tolerance`.
#[must_use]
pub fn compare(old: &BaselineSet, new: &BaselineSet, tolerance: f64) -> Comparison {
    let mut cells = Vec::new();
    let mut exact = 0usize;
    for (key, old_metrics) in &old.cells {
        match new.cells.get(key) {
            None => cells.push(CellDiff {
                key: key.clone(),
                status: CellStatus::Removed,
                deltas: Vec::new(),
                metric_count: old_metrics.len(),
            }),
            Some(new_metrics) => {
                let names: BTreeSet<&String> =
                    old_metrics.keys().chain(new_metrics.keys()).collect();
                let metric_count = names.len();
                let deltas: Vec<MetricDelta> = names
                    .into_iter()
                    .filter_map(|name| {
                        if metric_exempt(key, name) {
                            return None;
                        }
                        let o = old_metrics.get(name).copied();
                        let n = new_metrics.get(name).copied();
                        drifted(o, n, tolerance).then(|| MetricDelta {
                            name: name.clone(),
                            old: o,
                            new: n,
                        })
                    })
                    .collect();
                if deltas.is_empty() {
                    exact += 1;
                } else {
                    cells.push(CellDiff {
                        key: key.clone(),
                        status: CellStatus::Drift,
                        deltas,
                        metric_count,
                    });
                }
            }
        }
    }
    for (key, new_metrics) in &new.cells {
        if !old.cells.contains_key(key) {
            cells.push(CellDiff {
                key: key.clone(),
                status: CellStatus::Added,
                deltas: Vec::new(),
                metric_count: new_metrics.len(),
            });
        }
    }
    cells.sort_by(|a, b| a.key.cmp(&b.key));
    Comparison {
        tolerance,
        old_info: (old.schema_version, old.mode.clone(), old.cells.len()),
        new_info: (new.schema_version, new.mode.clone(), new.cells.len()),
        exact,
        cells,
    }
}

fn value_cell(v: Option<f64>) -> String {
    match v {
        Some(v) => json_number(v),
        None => "—".to_string(),
    }
}

impl Comparison {
    /// Count of cells with the given status.
    #[must_use]
    pub fn count(&self, status: CellStatus) -> usize {
        self.cells.iter().filter(|c| c.status == status).count()
    }

    /// `true` when the comparison found nothing to flag: schemas match
    /// and every cell of both sets matched exactly (within tolerance).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.cells.is_empty() && self.old_info.0 == self.new_info.0
    }

    /// Renders the deterministic human-readable diff: a header, and —
    /// when anything drifted — a Markdown table with one row per
    /// drifting metric (plus one row per added/removed cell).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "baseline comparison — tolerance {}",
            json_number(self.tolerance)
        );
        let side = |(schema, mode, cells): &(u64, String, usize)| {
            format!("mode={mode} schema={schema} cells={cells}")
        };
        let _ = writeln!(out, "  old: {}", side(&self.old_info));
        let _ = writeln!(out, "  new: {}", side(&self.new_info));
        let _ = writeln!(
            out,
            "  exact={} drift={} added={} removed={}",
            self.exact,
            self.count(CellStatus::Drift),
            self.count(CellStatus::Added),
            self.count(CellStatus::Removed),
        );
        if self.old_info.0 != self.new_info.0 {
            let _ = writeln!(
                out,
                "  schema_version changed: {} -> {} (value comparison unreliable)",
                self.old_info.0, self.new_info.0
            );
        }
        if self.old_info.1 != self.new_info.1 {
            let _ = writeln!(
                out,
                "  note: mode changed: {} -> {}",
                self.old_info.1, self.new_info.1
            );
        }
        if self.is_clean() {
            let _ = writeln!(out, "all {} matched cells are exact — no drift", self.exact);
            return out;
        }
        let mut table = Table::new(vec![
            "status",
            "experiment",
            "algo",
            "adversary",
            "backend",
            "shape",
            "d",
            "seeds",
            "metric",
            "old",
            "new",
            "delta",
            "rel",
        ]);
        for cell in &self.cells {
            let k = &cell.key;
            let base = vec![
                cell.status.label().to_string(),
                k.experiment.clone(),
                k.algo.clone(),
                k.adversary.clone(),
                k.backend.clone(),
                format!("{}x{}", k.p, k.t),
                k.d.to_string(),
                k.seeds.to_string(),
            ];
            if cell.deltas.is_empty() {
                let mut row = base;
                row.push(format!("({} metrics)", cell.metric_count));
                row.extend(["—", "—", "—", "—"].map(String::from));
                table.row(row);
            } else {
                for delta in &cell.deltas {
                    let mut row = base.clone();
                    row.push(delta.name.clone());
                    row.push(value_cell(delta.old));
                    row.push(value_cell(delta.new));
                    row.push(match delta.abs_delta() {
                        Some(d) => format!("{d:+}"),
                        None => "—".to_string(),
                    });
                    row.push(match delta.rel_delta() {
                        Some(r) => format!("{:+.3}%", r * 100.0),
                        None => "—".to_string(),
                    });
                    table.row(row);
                }
            }
        }
        out.push_str(&table.render());
        out
    }

    /// Renders the deterministic machine-readable diff
    /// (`diff_schema_version` [`DIFF_SCHEMA_VERSION`]).
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"diff_schema_version\": {DIFF_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"tolerance\": {},", json_number(self.tolerance));
        let side = |(schema, mode, cells): &(u64, String, usize)| {
            format!(
                "{{\"mode\": \"{}\", \"schema_version\": {schema}, \"cells\": {cells}}}",
                json_escape(mode)
            )
        };
        let _ = writeln!(out, "  \"old\": {},", side(&self.old_info));
        let _ = writeln!(out, "  \"new\": {},", side(&self.new_info));
        let _ = writeln!(
            out,
            "  \"summary\": {{\"exact\": {}, \"drift\": {}, \"added\": {}, \"removed\": {}}},",
            self.exact,
            self.count(CellStatus::Drift),
            self.count(CellStatus::Added),
            self.count(CellStatus::Removed),
        );
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let k = &cell.key;
            let _ = write!(
                out,
                "    {{\"status\": \"{}\", \"experiment\": \"{}\", \"algo\": \"{}\", \
                 \"adversary\": \"{}\", \"backend\": \"{}\", \"p\": {}, \"t\": {}, \"d\": {}, \
                 \"seeds\": {}, \"metrics\": [",
                cell.status.label(),
                json_escape(&k.experiment),
                json_escape(&k.algo),
                json_escape(&k.adversary),
                json_escape(&k.backend),
                k.p,
                k.t,
                k.d,
                k.seeds,
            );
            for (j, delta) in cell.deltas.iter().enumerate() {
                let opt = |v: Option<f64>| match v {
                    Some(v) => json_number(v),
                    None => "null".to_string(),
                };
                let _ = write!(
                    out,
                    "{}{{\"name\": \"{}\", \"old\": {}, \"new\": {}, \"delta\": {}, \"rel\": {}}}",
                    if j == 0 { "" } else { ", " },
                    json_escape(&delta.name),
                    opt(delta.old),
                    opt(delta.new),
                    opt(delta.abs_delta()),
                    opt(delta.rel_delta()),
                );
            }
            out.push_str("]}");
            out.push_str(if i + 1 == self.cells.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Loads two result-set files and compares them.
///
/// # Errors
///
/// Returns a [`CompareError`] if either file cannot be read or parsed.
pub fn compare_files(
    old_path: &str,
    new_path: &str,
    tolerance: f64,
) -> Result<Comparison, CompareError> {
    let old = load_result_set(old_path)?;
    let new = load_result_set(new_path)?;
    Ok(compare(&old, &new, tolerance))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(records: &str) -> BaselineSet {
        let text = format!(
            "{{\"schema_version\": 1, \"generator\": \"x\", \"mode\": \"smoke\", \
             \"records\": [{records}]}}"
        );
        parse_result_set(&text).unwrap()
    }

    fn record(algo: &str, d: u64, work: f64) -> String {
        format!(
            "{{\"experiment\": \"e01\", \"algo\": \"{algo}\", \"adversary\": \"stage\", \
             \"p\": 4, \"t\": 16, \"d\": {d}, \"seeds\": 1, \
             \"metrics\": {{\"mean_work\": {work}, \"completed\": 1}}}}"
        )
    }

    #[test]
    fn json_parser_handles_the_value_zoo() {
        let doc =
            r#"{"a": [1, -2.5, 1e3, null, true, false], "b": {"nested": ""}, "c": "q\"\\\nA🦀"}"#;
        let v = parse_json(doc).unwrap();
        let a = match v.get("a").unwrap() {
            Json::Array(items) => items,
            other => panic!("{other:?}"),
        };
        assert_eq!(a[0], Json::Number(1.0));
        assert_eq!(a[1], Json::Number(-2.5));
        assert_eq!(a[2], Json::Number(1000.0));
        assert_eq!(a[3], Json::Null);
        assert_eq!(a[4], Json::Bool(true));
        assert_eq!(a[5], Json::Bool(false));
        assert_eq!(
            v.get("b").unwrap().get("nested"),
            Some(&Json::String(String::new()))
        );
        assert_eq!(
            v.get("c").unwrap(),
            &Json::String("q\"\\\nA\u{1F980}".to_string())
        );
    }

    #[test]
    fn json_parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "\"bad \\q escape\"",
            "nul",
            "+5",
            "1.2.3",
            "{\"a\": 1 \"b\": 2}",
            "\"\\ud800 lone\"",
        ] {
            assert!(parse_json(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn parses_the_harness_schema() {
        let s = set(&[record("soloall", 1, 64.0), record("da:3", 2, 40.5)].join(", "));
        assert_eq!(s.schema_version, 1);
        assert_eq!(s.mode, "smoke");
        assert_eq!(s.cells.len(), 2);
        let key = CellKey {
            experiment: "e01".into(),
            algo: "da:3".into(),
            adversary: "stage".into(),
            backend: "sim".into(),
            p: 4,
            t: 16,
            d: 2,
            seeds: 1,
        };
        assert_eq!(s.cells[&key]["mean_work"], 40.5);
    }

    #[test]
    fn backend_defaults_to_sim_and_distinguishes_cells() {
        let cell = |backend_field: &str, work: f64| {
            format!(
                "{{\"experiment\": \"e17\", \"algo\": \"paran1\", \"adversary\": \"unit\", \
                 {backend_field}\"p\": 4, \"t\": 16, \"d\": 2, \"seeds\": 1, \
                 \"metrics\": {{\"mean_work\": {work}}}}}"
            )
        };
        // A pre-backend baseline (no field) matches a tagged sim record.
        let old = set(&cell("", 64.0));
        let new = set(&cell("\"backend\": \"sim\", ", 64.0));
        assert!(compare(&old, &new, 0.0).is_clean());
        // sim and threads are distinct cells, not value drift.
        let both = set(&[
            cell("\"backend\": \"sim\", ", 64.0),
            cell("\"backend\": \"threads\", ", 71.0),
        ]
        .join(", "));
        assert_eq!(both.cells.len(), 2);
        let cmp = compare(&old, &both, 0.0);
        assert_eq!(cmp.exact, 1, "the sim cell matches the untagged baseline");
        assert_eq!(cmp.count(CellStatus::Added), 1, "the threads cell is new");
        // The non-default backend is named in the rendered key.
        let added = cmp.cells.iter().find(|c| c.status == CellStatus::Added);
        assert!(added.unwrap().key.to_string().contains("backend=threads"));
    }

    #[test]
    fn measured_only_metrics_never_drift() {
        let cell = |extra: &str| {
            format!(
                "{{\"experiment\": \"e17\", \"algo\": \"paran1\", \"adversary\": \"unit\", \
                 \"backend\": \"sim\", \"p\": 4, \"t\": 16, \"d\": 2, \"seeds\": 1, \
                 \"metrics\": {{\"mean_work\": 64{extra}}}}}"
            )
        };
        // Value changes and one-sided presence of the measured-only trio
        // are both invisible at tolerance 0 …
        let old = set(&cell(", \"wall_clock_ms\": 0, \"crashed_drained\": 0"));
        let new = set(&cell(
            ", \"wall_clock_ms\": 3.25, \"max_crashed_backlog\": 7",
        ));
        assert!(compare(&old, &new, 0.0).is_clean());
        // … while the simulated metrics still gate exactly.
        let drifted_work = set(&cell(", \"wall_clock_ms\": 1").replacen("64", "65", 1));
        let cmp = compare(&old, &drifted_work, 0.0);
        assert_eq!(cmp.count(CellStatus::Drift), 1);
        assert_eq!(cmp.cells[0].deltas.len(), 1);
        assert_eq!(cmp.cells[0].deltas[0].name, "mean_work");
    }

    #[test]
    fn threads_cells_compare_by_presence_only() {
        let cell = |d: u64, work: f64| {
            format!(
                "{{\"experiment\": \"e17\", \"algo\": \"paran1\", \"adversary\": \"unit\", \
                 \"backend\": \"threads\", \"p\": 4, \"t\": 16, \"d\": {d}, \"seeds\": 1, \
                 \"metrics\": {{\"mean_work\": {work}, \"wall_clock_ms\": {work}}}}}"
            )
        };
        // Different work counts on the threads backend: expected
        // scheduling noise, not drift.
        let old = set(&[cell(2, 64.0), cell(8, 80.0)].join(", "));
        let new = set(&[cell(2, 71.0), cell(8, 78.5)].join(", "));
        let cmp = compare(&old, &new, 0.0);
        assert!(cmp.is_clean(), "{}", cmp.render_text());
        assert_eq!(cmp.exact, 2);
        // A vanished threads cell is still a structural regression.
        let shrunk = set(&cell(2, 71.0));
        let cmp = compare(&old, &shrunk, 0.0);
        assert!(!cmp.is_clean());
        assert_eq!(cmp.count(CellStatus::Removed), 1);
    }

    #[test]
    fn null_metrics_parse_as_nan_and_match_themselves() {
        let rec = "{\"experiment\": \"e01\", \"algo\": \"a\", \"adversary\": \"stage\", \
                   \"p\": 1, \"t\": 1, \"d\": 1, \"seeds\": 1, \"metrics\": {\"bad\": null}}";
        let s = set(rec);
        let v = s.cells.values().next().unwrap()["bad"];
        assert!(v.is_nan());
        let cmp = compare(&s, &s, 0.0);
        assert!(cmp.is_clean(), "{}", cmp.render_text());
    }

    #[test]
    fn schema_errors_are_descriptive() {
        for (doc, needle) in [
            ("[1]", "top level"),
            ("{\"mode\": \"x\", \"records\": []}", "schema_version"),
            ("{\"schema_version\": 1, \"records\": []}", "mode"),
            ("{\"schema_version\": 1, \"mode\": \"x\"}", "records"),
            (
                "{\"schema_version\": 1, \"mode\": \"x\", \"records\": [{}]}",
                "records[0]",
            ),
        ] {
            let e = parse_result_set(doc).unwrap_err().to_string();
            assert!(e.contains(needle), "`{doc}` -> {e}");
        }
    }

    #[test]
    fn adversary_spellings_are_canonicalized_for_matching() {
        // A pre-normalization baseline may spell numeric knobs with
        // leading zeros or an explicit default stagger; both must match a
        // fresh run's canonical key instead of reporting removed + added.
        let cell = |adversary: &str, work: f64| {
            format!(
                "{{\"experiment\": \"e12\", \"algo\": \"paran1\", \"adversary\": \"{adversary}\", \
                 \"p\": 8, \"t\": 32, \"d\": 4, \"seeds\": 1, \
                 \"metrics\": {{\"mean_work\": {work}}}}}"
            )
        };
        let old = set(&[cell("crash:07", 64.0), cell("crash:25@even", 40.0)].join(", "));
        let new = set(&[cell("crash:7", 64.0), cell("crash:25", 40.0)].join(", "));
        let cmp = compare(&old, &new, 0.0);
        assert!(cmp.is_clean(), "{}", cmp.render_text());
        assert_eq!(cmp.exact, 2);
        // Keys outside the grammar pass through verbatim (no false merge).
        let exotic = set(&cell("quantum:3", 1.0));
        assert!(exotic.cells.keys().any(|k| k.adversary == "quantum:3"));
    }

    #[test]
    fn duplicate_cells_are_rejected() {
        let e = parse_result_set(&format!(
            "{{\"schema_version\": 1, \"mode\": \"smoke\", \"records\": [{}, {}]}}",
            record("soloall", 1, 64.0),
            record("soloall", 1, 65.0),
        ))
        .unwrap_err();
        assert!(e.to_string().contains("duplicate cell"), "{e}");
    }

    #[test]
    fn identical_sets_compare_clean() {
        let s = set(&record("soloall", 1, 64.0));
        let cmp = compare(&s, &s, 0.0);
        assert!(cmp.is_clean());
        assert_eq!(cmp.exact, 1);
        assert!(cmp.cells.is_empty());
        assert!(cmp.render_text().contains("no drift"));
    }

    #[test]
    fn drift_added_and_removed_are_classified() {
        let old = set(&[record("soloall", 1, 64.0), record("soloall", 2, 64.0)].join(", "));
        let new = set(&[record("soloall", 1, 70.0), record("da:3", 2, 40.0)].join(", "));
        let cmp = compare(&old, &new, 0.0);
        assert!(!cmp.is_clean());
        assert_eq!(cmp.exact, 0);
        assert_eq!(cmp.count(CellStatus::Drift), 1);
        assert_eq!(cmp.count(CellStatus::Added), 1);
        assert_eq!(cmp.count(CellStatus::Removed), 1);
        let drift = cmp
            .cells
            .iter()
            .find(|c| c.status == CellStatus::Drift)
            .unwrap();
        assert_eq!(drift.deltas.len(), 1);
        assert_eq!(drift.deltas[0].name, "mean_work");
        assert_eq!(drift.deltas[0].abs_delta(), Some(6.0));
        let text = cmp.render_text();
        for needle in ["drift", "added", "removed", "mean_work", "+6", "+9.375%"] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn metric_appearing_or_vanishing_is_drift() {
        let old = set(&record("soloall", 1, 64.0));
        let extra = "{\"experiment\": \"e01\", \"algo\": \"soloall\", \"adversary\": \"stage\", \
                     \"p\": 4, \"t\": 16, \"d\": 1, \"seeds\": 1, \
                     \"metrics\": {\"mean_work\": 64, \"completed\": 1, \"crash_count\": 2}}";
        let new = set(extra);
        let cmp = compare(&old, &new, 0.0);
        assert_eq!(cmp.count(CellStatus::Drift), 1);
        assert_eq!(cmp.cells[0].deltas[0].name, "crash_count");
        assert_eq!(cmp.cells[0].deltas[0].old, None);
    }

    #[test]
    fn tolerance_is_relative_with_a_unit_floor() {
        let old = set(&record("soloall", 1, 1000.0));
        let new = set(&record("soloall", 1, 1004.0));
        assert!(compare(&old, &new, 0.01).is_clean(), "0.4% < 1%");
        assert!(!compare(&old, &new, 0.001).is_clean(), "0.4% > 0.1%");
        // Near-zero values use the absolute floor of `tolerance`.
        assert!(!drifted(Some(0.0), Some(0.0005), 0.001));
        assert!(drifted(Some(0.0), Some(0.5), 0.001));
        // Tolerance 0 is exact.
        assert!(drifted(Some(1.0), Some(1.0 + f64::EPSILON), 0.0));
        assert!(!drifted(Some(1.0), Some(1.0), 0.0));
    }

    #[test]
    fn schema_version_mismatch_is_never_clean() {
        let old = set(&record("soloall", 1, 64.0));
        let mut new = old.clone();
        new.schema_version = 2;
        let cmp = compare(&old, &new, 0.0);
        assert!(!cmp.is_clean());
        assert!(cmp.render_text().contains("schema_version changed"));
    }

    #[test]
    fn renders_are_deterministic_and_json_is_balanced() {
        let old = set(&[record("soloall", 1, 64.0), record("soloall", 2, 64.0)].join(", "));
        let new = set(&[record("soloall", 1, 70.0), record("da:3", 2, 40.0)].join(", "));
        let cmp = compare(&old, &new, 0.0);
        assert_eq!(cmp.render_text(), cmp.render_text());
        let json = cmp.render_json();
        assert_eq!(json, cmp.render_json());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // And the diff document itself parses with our own reader.
        let doc = parse_json(&json).unwrap();
        assert_eq!(doc.get("clean"), Some(&Json::Bool(false)));
        assert_eq!(
            doc.get("summary").unwrap().get("drift"),
            Some(&Json::Number(1.0))
        );
    }

    #[test]
    fn compare_files_reports_missing_files() {
        let e = compare_files("/nonexistent/a.json", "/nonexistent/b.json", 0.0).unwrap_err();
        assert!(e.to_string().contains("cannot read"));
    }
}
