//! Scenario files: experiments as data, not Rust.
//!
//! A scenario file (`*.scn`) is a line-oriented description of one
//! experiment — the same hand-rolled-parser discipline as
//! [`mod@crate::compare`] (no serde). It holds the prose printed in human
//! mode, one or more grid specs (the [`crate::grid::Grid`] grammar
//! verbatim), an optional smoke-grid override, the name of a derived-
//! metric hook ([`crate::experiments::derive_by_name`]), and a small
//! assertion grammar over the summarized metrics:
//!
//! ```text
//! id = e01
//! title = Proposition 2.2 (quadratic wall at d = Ω(t))
//! setup = …printed above the table…
//! notes = …printed below the table…
//! trace = true                      # optional; collect execution traces
//! max_ticks = 50000000              # optional per-run tick cutoff
//! grid = algos=… advs=… shapes=… ds=… seeds=1 seed=0
//! smoke = algos=… advs=… shapes=… ds=… seeds=1 seed=0
//! derive = ratio_quadratic
//! assert work >= t
//! assert ratio(work, t) <= 3.41
//! assert agg max(ratio_quadratic) < 10
//! assert [backend=sim] wall_clock_ms == 0
//! assert mean_crashes_fired >= 1 when crash_count >= 1
//! ```
//!
//! Assertion semantics:
//!
//! * The default scope is **per cell**: the comparison is evaluated on
//!   every cell's post-derive metric map. `p`, `t`, `d`, and `seeds`
//!   resolve to the cell's parameters; `work`, `messages`, `primary`,
//!   and `secondary` are aliases for the `mean_*` metrics; anything
//!   else is a metric name. A cell missing a referenced metric is
//!   skipped, as is a cell whose `when` guard is false — but an
//!   assertion that matches **no** cell at all fails the scenario
//!   (that is almost always a typo).
//! * `agg` scope evaluates once per scenario; metrics must be wrapped
//!   in `min(m)` / `max(m)` / `mean(m)` / `sum(m)` over all cells
//!   carrying the metric.
//! * An optional `[key=value,…]` selector restricts either scope to
//!   cells matching on `algo`, `adversary`, `backend`, `p`, `t`, or
//!   `d` (adversaries by their canonical spelling).
//! * Arithmetic is `+ - * /` with the usual precedence, parentheses,
//!   and `ratio(a, b)` as a readable spelling of `a / b`. Division by
//!   zero follows IEEE (and a NaN comparison fails the assertion).
//!
//! Parsing and rendering are exact inverses (`parse ∘ render ≡ id`,
//! property-tested), and malformed lines report their line number.

use crate::grid::{Cell, Grid};
use std::collections::BTreeMap;
use std::fmt;

/// A parsed scenario file: grids, prose, and assertions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Scenario {
    /// Scenario id (`"e01"` …); the `experiment` key of every record.
    pub id: String,
    /// What the scenario reproduces (printed in the human-mode header).
    pub title: String,
    /// Setup line printed above the table in human mode.
    pub setup: String,
    /// Interpretation notes printed after the table in human mode.
    pub notes: String,
    /// Collect execution traces (primary/secondary execution metrics).
    pub trace: bool,
    /// Per-run tick cutoff override (`None`: the simulator's default).
    pub max_ticks: Option<u64>,
    /// The full, paper-scale grids.
    pub grids: Vec<Grid>,
    /// The tiny CI smoke grids (empty: smoke mode reuses `grids`).
    pub smoke: Vec<Grid>,
    /// Named derived-metric hook (see
    /// [`crate::experiments::derive_by_name`]).
    pub derive: Option<String>,
    /// Assertions checked against the post-derive metric maps.
    pub asserts: Vec<Assertion>,
}

/// A parse error pointing at the offending line (1-based; 0 for
/// file-level problems such as a missing `id`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line number, or 0 for file-level errors.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ScenarioError {}

fn err_at(line: usize, msg: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line,
        msg: msg.into(),
    }
}

/// Comparison operator of an assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl Cmp {
    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "<=" => Cmp::Le,
            ">=" => Cmp::Ge,
            "<" => Cmp::Lt,
            ">" => Cmp::Gt,
            "==" => Cmp::Eq,
            "!=" => Cmp::Ne,
            _ => return None,
        })
    }

    /// Evaluates `lhs CMP rhs` (NaN operands compare false, so a NaN
    /// fails the assertion rather than passing silently).
    #[must_use]
    pub fn holds(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Le => lhs <= rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Lt => lhs < rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Eq => lhs == rhs,
            Cmp::Ne => lhs != rhs,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Lt => "<",
            Cmp::Gt => ">",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
        })
    }
}

/// Aggregation functions usable in `agg`-scope assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Minimum over all cells carrying the metric.
    Min,
    /// Maximum over all cells carrying the metric.
    Max,
    /// Mean over all cells carrying the metric.
    Mean,
    /// Sum over all cells carrying the metric.
    Sum,
}

impl AggFn {
    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "min" => AggFn::Min,
            "max" => AggFn::Max,
            "mean" => AggFn::Mean,
            "sum" => AggFn::Sum,
            _ => return None,
        })
    }

    fn apply(self, samples: &[f64]) -> f64 {
        match self {
            AggFn::Min => samples.iter().copied().fold(f64::INFINITY, f64::min),
            AggFn::Max => samples.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            AggFn::Mean => samples.iter().sum::<f64>() / samples.len() as f64,
            AggFn::Sum => samples.iter().sum(),
        }
    }
}

impl fmt::Display for AggFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Mean => "mean",
            AggFn::Sum => "sum",
        })
    }
}

/// An arithmetic expression over metrics and cell parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A number literal (decimal notation).
    Num(f64),
    /// A metric name, alias, or cell parameter (`p`/`t`/`d`/`seeds`).
    Var(String),
    /// `ratio(a, b)` — a readable spelling of `a / b`.
    Ratio(Box<Expr>, Box<Expr>),
    /// `min(m)` / `max(m)` / `mean(m)` / `sum(m)` over all cells
    /// carrying metric `m` (aggregate scope only).
    Agg(AggFn, String),
    /// `a + b`
    Add(Box<Expr>, Box<Expr>),
    /// `a - b`
    Sub(Box<Expr>, Box<Expr>),
    /// `a * b`
    Mul(Box<Expr>, Box<Expr>),
    /// `a / b`
    Div(Box<Expr>, Box<Expr>),
}

/// Resolves the documented metric aliases.
fn alias(name: &str) -> &str {
    match name {
        "work" => "mean_work",
        "messages" => "mean_messages",
        "primary" => "mean_primary",
        "secondary" => "mean_secondary",
        other => other,
    }
}

impl Expr {
    fn prec(&self) -> u8 {
        match self {
            Expr::Add(..) | Expr::Sub(..) => 1,
            Expr::Mul(..) | Expr::Div(..) => 2,
            _ => 3,
        }
    }

    fn fmt_child(child: &Expr, parent_prec: u8, right: bool, out: &mut String) {
        let wrap = child.prec() < parent_prec || (right && child.prec() == parent_prec);
        if wrap {
            out.push('(');
        }
        child.render(out);
        if wrap {
            out.push(')');
        }
    }

    fn render(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Expr::Num(v) => {
                let _ = write!(out, "{v}");
            }
            Expr::Var(name) => out.push_str(name),
            Expr::Ratio(a, b) => {
                out.push_str("ratio(");
                a.render(out);
                out.push_str(", ");
                b.render(out);
                out.push(')');
            }
            Expr::Agg(f, m) => {
                let _ = write!(out, "{f}({m})");
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                let op = match self {
                    Expr::Add(..) => " + ",
                    Expr::Sub(..) => " - ",
                    Expr::Mul(..) => " * ",
                    _ => " / ",
                };
                Self::fmt_child(a, self.prec(), false, out);
                out.push_str(op);
                Self::fmt_child(b, self.prec(), true, out);
            }
        }
    }

    /// Evaluates the expression on one cell's post-derive metric map.
    /// Returns `None` if a referenced metric is absent from the cell.
    #[must_use]
    pub fn eval_cell(&self, cell: &Cell, metrics: &BTreeMap<String, f64>) -> Option<f64> {
        match self {
            Expr::Num(v) => Some(*v),
            #[allow(clippy::cast_precision_loss)]
            Expr::Var(name) => match name.as_str() {
                "p" => Some(cell.p as f64),
                "t" => Some(cell.t as f64),
                "d" => Some(cell.d as f64),
                "seeds" => Some(cell.seeds as f64),
                other => metrics.get(alias(other)).copied(),
            },
            Expr::Ratio(a, b) | Expr::Div(a, b) => {
                Some(a.eval_cell(cell, metrics)? / b.eval_cell(cell, metrics)?)
            }
            Expr::Agg(..) => None,
            Expr::Add(a, b) => Some(a.eval_cell(cell, metrics)? + b.eval_cell(cell, metrics)?),
            Expr::Sub(a, b) => Some(a.eval_cell(cell, metrics)? - b.eval_cell(cell, metrics)?),
            Expr::Mul(a, b) => Some(a.eval_cell(cell, metrics)? * b.eval_cell(cell, metrics)?),
        }
    }

    /// Evaluates the expression in aggregate scope over the metric maps
    /// of all selected cells. Returns `None` if any aggregated metric
    /// has no samples.
    #[must_use]
    pub fn eval_agg(&self, rows: &[(&Cell, &BTreeMap<String, f64>)]) -> Option<f64> {
        match self {
            Expr::Num(v) => Some(*v),
            Expr::Var(_) => None,
            Expr::Agg(f, metric) => {
                let key = alias(metric);
                let samples: Vec<f64> = rows
                    .iter()
                    .filter_map(|(_, m)| m.get(key).copied())
                    .collect();
                if samples.is_empty() {
                    None
                } else {
                    Some(f.apply(&samples))
                }
            }
            Expr::Ratio(a, b) | Expr::Div(a, b) => Some(a.eval_agg(rows)? / b.eval_agg(rows)?),
            Expr::Add(a, b) => Some(a.eval_agg(rows)? + b.eval_agg(rows)?),
            Expr::Sub(a, b) => Some(a.eval_agg(rows)? - b.eval_agg(rows)?),
            Expr::Mul(a, b) => Some(a.eval_agg(rows)? * b.eval_agg(rows)?),
        }
    }

    fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Num(_) | Expr::Var(_) | Expr::Agg(..) => {}
            Expr::Ratio(a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b) => {
                a.visit(f);
                b.visit(f);
            }
        }
    }

    fn contains_agg(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| found |= matches!(e, Expr::Agg(..)));
        found
    }

    fn contains_var(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| found |= matches!(e, Expr::Var(_)));
        found
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(&mut out);
        f.write_str(&out)
    }
}

/// The optional `when LHS CMP RHS` guard of a per-cell assertion: cells
/// where the guard is false (or references a missing metric) are
/// skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct Guard {
    /// Left-hand side of the guard comparison.
    pub lhs: Expr,
    /// Guard comparison operator.
    pub cmp: Cmp,
    /// Right-hand side of the guard comparison.
    pub rhs: Expr,
}

/// One `assert …` line of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Assertion {
    /// `agg` scope: evaluate once over all cells instead of per cell.
    pub aggregate: bool,
    /// `[key=value,…]` cell selector (conjunctive; empty = all cells).
    pub filters: Vec<(String, String)>,
    /// Left-hand side of the comparison.
    pub lhs: Expr,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side of the comparison.
    pub rhs: Expr,
    /// Optional `when` guard (per-cell scope only).
    pub guard: Option<Guard>,
}

/// Filter keys a `[key=value]` selector may match on.
const FILTER_KEYS: &[&str] = &["algo", "adversary", "backend", "p", "t", "d"];

impl Assertion {
    /// Parses one assertion line (everything after a leading `assert`
    /// keyword is fine too — this expects the full line).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax problem.
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut p = Tokens::new(line)?;
        p.expect_ident("assert")?;
        let aggregate = p.eat_ident("agg");
        let mut filters = Vec::new();
        if p.eat(&Tok::LBracket) {
            loop {
                let key = p.ident("selector key")?;
                if !FILTER_KEYS.contains(&key.as_str()) {
                    return Err(format!(
                        "unknown selector key `{key}` (expected one of {})",
                        FILTER_KEYS.join("|")
                    ));
                }
                p.expect(&Tok::Assign, "=")?;
                let value = p.filter_value()?;
                filters.push((key, value));
                if !p.eat(&Tok::Comma) {
                    break;
                }
            }
            p.expect(&Tok::RBracket, "]")?;
        }
        let lhs = p.expr()?;
        let cmp = p.cmp()?;
        let rhs = p.expr()?;
        let guard = if p.eat_ident("when") {
            let glhs = p.expr()?;
            let gcmp = p.cmp()?;
            let grhs = p.expr()?;
            Some(Guard {
                lhs: glhs,
                cmp: gcmp,
                rhs: grhs,
            })
        } else {
            None
        };
        p.finish()?;
        let a = Assertion {
            aggregate,
            filters,
            lhs,
            cmp,
            rhs,
            guard,
        };
        a.validate()?;
        Ok(a)
    }

    fn validate(&self) -> Result<(), String> {
        let exprs: Vec<&Expr> = [Some(&self.lhs), Some(&self.rhs)]
            .into_iter()
            .chain(self.guard.iter().flat_map(|g| [Some(&g.lhs), Some(&g.rhs)]))
            .flatten()
            .collect();
        if self.aggregate {
            if self.guard.is_some() {
                return Err("`when` guards apply per cell; drop `agg` or the guard".to_string());
            }
            for e in &exprs {
                if e.contains_var() {
                    return Err(format!(
                        "aggregate assertions must wrap metrics in min/max/mean/sum: `{e}`"
                    ));
                }
            }
        } else {
            for e in &exprs {
                if e.contains_agg() {
                    return Err(format!(
                        "min/max/mean/sum need the `agg` scope: `assert agg {} {} {}`",
                        self.lhs, self.cmp, self.rhs
                    ));
                }
                let _ = e;
            }
        }
        Ok(())
    }

    /// Whether the selector matches this cell.
    #[must_use]
    pub fn selects(&self, cell: &Cell) -> bool {
        self.filters.iter().all(|(key, value)| {
            let actual = match key.as_str() {
                "algo" => cell.algo.clone(),
                "adversary" => cell.adversary.to_string(),
                "backend" => cell.effective_backend().to_string(),
                "p" => cell.p.to_string(),
                "t" => cell.t.to_string(),
                _ => cell.d.to_string(),
            };
            actual == *value
        })
    }

    /// Checks the assertion against one cell. `None`: the cell is
    /// skipped (filtered out, missing metric, or false guard);
    /// `Some(Ok(()))`: the comparison holds; `Some(Err((lhs, rhs)))`:
    /// it is violated, with the observed operand values.
    #[must_use]
    pub fn check_cell(
        &self,
        cell: &Cell,
        metrics: &BTreeMap<String, f64>,
    ) -> Option<Result<(), (f64, f64)>> {
        if self.aggregate || !self.selects(cell) {
            return None;
        }
        if let Some(g) = &self.guard {
            let glhs = g.lhs.eval_cell(cell, metrics)?;
            let grhs = g.rhs.eval_cell(cell, metrics)?;
            if !g.cmp.holds(glhs, grhs) {
                return None;
            }
        }
        let lhs = self.lhs.eval_cell(cell, metrics)?;
        let rhs = self.rhs.eval_cell(cell, metrics)?;
        Some(if self.cmp.holds(lhs, rhs) {
            Ok(())
        } else {
            Err((lhs, rhs))
        })
    }

    /// Checks an aggregate assertion over all cells of a scenario.
    /// Semantics mirror [`Assertion::check_cell`], with `None` meaning
    /// no selected cell carried the aggregated metrics.
    #[must_use]
    pub fn check_agg(
        &self,
        rows: &[(&Cell, &BTreeMap<String, f64>)],
    ) -> Option<Result<(), (f64, f64)>> {
        if !self.aggregate {
            return None;
        }
        let selected: Vec<(&Cell, &BTreeMap<String, f64>)> = rows
            .iter()
            .filter(|(cell, _)| self.selects(cell))
            .copied()
            .collect();
        let lhs = self.lhs.eval_agg(&selected)?;
        let rhs = self.rhs.eval_agg(&selected)?;
        Some(if self.cmp.holds(lhs, rhs) {
            Ok(())
        } else {
            Err((lhs, rhs))
        })
    }
}

impl fmt::Display for Assertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "assert ")?;
        if self.aggregate {
            write!(f, "agg ")?;
        }
        if !self.filters.is_empty() {
            let parts: Vec<String> = self
                .filters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            write!(f, "[{}] ", parts.join(","))?;
        }
        write!(f, "{} {} {}", self.lhs, self.cmp, self.rhs)?;
        if let Some(g) = &self.guard {
            write!(f, " when {} {} {}", g.lhs, g.cmp, g.rhs)?;
        }
        Ok(())
    }
}

/// Assertion-line tokens.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Ident(String),
    Cmp(Cmp),
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
}

struct Tokens {
    toks: Vec<Tok>,
    pos: usize,
}

impl Tokens {
    fn new(line: &str) -> Result<Self, String> {
        let mut toks = Vec::new();
        let bytes: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i];
            match c {
                ' ' | '\t' => i += 1,
                '(' => {
                    toks.push(Tok::LParen);
                    i += 1;
                }
                ')' => {
                    toks.push(Tok::RParen);
                    i += 1;
                }
                '[' => {
                    toks.push(Tok::LBracket);
                    i += 1;
                }
                ']' => {
                    toks.push(Tok::RBracket);
                    i += 1;
                }
                ',' => {
                    toks.push(Tok::Comma);
                    i += 1;
                }
                '+' => {
                    toks.push(Tok::Plus);
                    i += 1;
                }
                '-' => {
                    toks.push(Tok::Minus);
                    i += 1;
                }
                '*' => {
                    toks.push(Tok::Star);
                    i += 1;
                }
                '/' => {
                    toks.push(Tok::Slash);
                    i += 1;
                }
                '<' | '>' | '=' | '!' => {
                    let two: String = bytes[i..(i + 2).min(bytes.len())].iter().collect();
                    if let Some(cmp) = Cmp::parse(&two) {
                        toks.push(Tok::Cmp(cmp));
                        i += 2;
                    } else if c == '<' || c == '>' {
                        toks.push(Tok::Cmp(if c == '<' { Cmp::Lt } else { Cmp::Gt }));
                        i += 1;
                    } else if c == '=' {
                        toks.push(Tok::Assign);
                        i += 1;
                    } else {
                        return Err("`!` is only valid as `!=`".to_string());
                    }
                }
                c if c.is_ascii_digit() || c == '.' => {
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    let v: f64 = text
                        .parse()
                        .map_err(|_| format!("`{text}` is not a number"))?;
                    toks.push(Tok::Num(v));
                }
                c if c.is_alphanumeric() || c == '_' => {
                    let start = i;
                    while i < bytes.len()
                        && (bytes[i].is_alphanumeric() || matches!(bytes[i], '_' | ':' | '@' | '.'))
                    {
                        i += 1;
                    }
                    toks.push(Tok::Ident(bytes[start..i].iter().collect()));
                }
                other => return Err(format!("unexpected character `{other}`")),
            }
        }
        Ok(Tokens { toks, pos: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(w)) if w == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), String> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(format!("expected `{what}`"))
        }
    }

    fn expect_ident(&mut self, word: &str) -> Result<(), String> {
        if self.eat_ident(word) {
            Ok(())
        } else {
            Err(format!("expected `{word}`"))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(Tok::Ident(w)) => Ok(w),
            _ => Err(format!("expected {what}")),
        }
    }

    /// A selector value: an identifier-ish token or a number, verbatim.
    fn filter_value(&mut self) -> Result<String, String> {
        match self.next() {
            Some(Tok::Ident(w)) => Ok(w),
            Some(Tok::Num(v)) => Ok(format!("{v}")),
            _ => Err("expected a selector value".to_string()),
        }
    }

    fn cmp(&mut self) -> Result<Cmp, String> {
        match self.next() {
            Some(Tok::Cmp(c)) => Ok(c),
            other => Err(format!(
                "expected a comparison (<=, >=, <, >, ==, !=), got {other:?}"
            )),
        }
    }

    fn expr(&mut self) -> Result<Expr, String> {
        let mut lhs = self.term()?;
        loop {
            if self.eat(&Tok::Plus) {
                lhs = Expr::Add(Box::new(lhs), Box::new(self.term()?));
            } else if self.eat(&Tok::Minus) {
                lhs = Expr::Sub(Box::new(lhs), Box::new(self.term()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<Expr, String> {
        let mut lhs = self.factor()?;
        loop {
            if self.eat(&Tok::Star) {
                lhs = Expr::Mul(Box::new(lhs), Box::new(self.factor()?));
            } else if self.eat(&Tok::Slash) {
                lhs = Expr::Div(Box::new(lhs), Box::new(self.factor()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, String> {
        match self.next() {
            Some(Tok::Num(v)) => Ok(Expr::Num(v)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, ")")?;
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                if self.eat(&Tok::LParen) {
                    if name == "ratio" {
                        let a = self.expr()?;
                        self.expect(&Tok::Comma, ",")?;
                        let b = self.expr()?;
                        self.expect(&Tok::RParen, ")")?;
                        Ok(Expr::Ratio(Box::new(a), Box::new(b)))
                    } else if let Some(f) = AggFn::parse(&name) {
                        let metric = self.ident("a metric name")?;
                        self.expect(&Tok::RParen, ")")?;
                        Ok(Expr::Agg(f, metric))
                    } else {
                        Err(format!(
                            "unknown function `{name}` (expected ratio, min, max, mean, or sum)"
                        ))
                    }
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(format!("expected an expression, got {other:?}")),
        }
    }

    fn finish(&mut self) -> Result<(), String> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(format!("trailing input starting at {t:?}")),
        }
    }
}

/// Validates a scenario id: the characters that survive cell keys,
/// file names, and JSON unescaped.
fn valid_id(id: &str) -> bool {
    !id.is_empty()
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

impl Scenario {
    /// Parses a scenario file.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] naming the offending line (or the
    /// file-level problem: missing `id`, no `grid`).
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let mut s = Scenario::default();
        let mut seen_id = false;
        let mut seen: BTreeMap<&'static str, usize> = BTreeMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "assert" || line.starts_with("assert ") {
                let a = Assertion::parse(line).map_err(|e| err_at(lineno, e))?;
                s.asserts.push(a);
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err_at(
                    lineno,
                    format!("expected `key = value` or `assert …`, got `{line}`"),
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            let mut scalar = |name: &'static str| -> Result<(), ScenarioError> {
                if let Some(prev) = seen.insert(name, lineno) {
                    return Err(err_at(
                        lineno,
                        format!("duplicate `{name}` (first set on line {prev})"),
                    ));
                }
                Ok(())
            };
            match key {
                "id" => {
                    scalar("id")?;
                    if !valid_id(value) {
                        return Err(err_at(
                            lineno,
                            format!("invalid id `{value}` (use [A-Za-z0-9_-]+)"),
                        ));
                    }
                    s.id = value.to_string();
                    seen_id = true;
                }
                "title" => {
                    scalar("title")?;
                    s.title = value.to_string();
                }
                "setup" => {
                    scalar("setup")?;
                    s.setup = value.to_string();
                }
                "notes" => {
                    scalar("notes")?;
                    s.notes = value.to_string();
                }
                "trace" => {
                    scalar("trace")?;
                    s.trace = match value {
                        "true" => true,
                        "false" => false,
                        other => {
                            return Err(err_at(
                                lineno,
                                format!("trace must be `true` or `false`, got `{other}`"),
                            ));
                        }
                    };
                }
                "max_ticks" => {
                    scalar("max_ticks")?;
                    let n: u64 = value.parse().map_err(|_| {
                        err_at(lineno, format!("max_ticks: `{value}` is not a count"))
                    })?;
                    if n == 0 {
                        return Err(err_at(lineno, "max_ticks must be at least 1"));
                    }
                    s.max_ticks = Some(n);
                }
                "grid" => {
                    let grid =
                        Grid::parse(value).map_err(|e| err_at(lineno, format!("bad grid: {e}")))?;
                    s.grids.push(grid);
                }
                "smoke" => {
                    let grid = Grid::parse(value)
                        .map_err(|e| err_at(lineno, format!("bad smoke grid: {e}")))?;
                    s.smoke.push(grid);
                }
                "derive" => {
                    scalar("derive")?;
                    s.derive = Some(value.to_string());
                }
                other => {
                    return Err(err_at(
                        lineno,
                        format!(
                            "unknown key `{other}` (expected id, title, setup, notes, trace, \
                             max_ticks, grid, smoke, derive, or assert)"
                        ),
                    ));
                }
            }
        }
        if !seen_id {
            return Err(err_at(0, "scenario has no `id` line"));
        }
        if s.grids.is_empty() {
            return Err(err_at(0, format!("scenario `{}` has no `grid` line", s.id)));
        }
        Ok(s)
    }

    /// The grids to run in the given mode: smoke mode uses the smoke
    /// override when present and falls back to the full grids.
    #[must_use]
    pub fn grids_for(&self, smoke: bool) -> &[Grid] {
        if smoke && !self.smoke.is_empty() {
            &self.smoke
        } else {
            &self.grids
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "id = {}", self.id)?;
        if !self.title.is_empty() {
            writeln!(f, "title = {}", self.title)?;
        }
        if !self.setup.is_empty() {
            writeln!(f, "setup = {}", self.setup)?;
        }
        if !self.notes.is_empty() {
            writeln!(f, "notes = {}", self.notes)?;
        }
        if self.trace {
            writeln!(f, "trace = true")?;
        }
        if let Some(n) = self.max_ticks {
            writeln!(f, "max_ticks = {n}")?;
        }
        for grid in &self.grids {
            writeln!(f, "grid = {grid}")?;
        }
        for grid in &self.smoke {
            writeln!(f, "smoke = {grid}")?;
        }
        if let Some(name) = &self.derive {
            writeln!(f, "derive = {name}")?;
        }
        for a in &self.asserts {
            writeln!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::AdversarySpec;

    fn cell(algo: &str, p: usize, t: usize, d: u64) -> Cell {
        Cell {
            algo: algo.to_string(),
            adversary: AdversarySpec::Stage,
            p,
            t,
            d,
            seeds: 2,
            cell_seed: 7,
            backend: None,
        }
    }

    fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| ((*k).to_string(), *v)).collect()
    }

    #[test]
    fn parses_a_full_scenario_and_round_trips() {
        let text = "\
# header comment
id = e01
title = Proposition 2.2
setup = All algorithms at d in {t, 2t}.
notes = Ratios sit in a constant band.
trace = true
max_ticks = 50000000
grid = algos=soloall,da:3 advs=fixed shapes=8x8 ds=8,16 seeds=1 seed=0
smoke = algos=soloall advs=fixed shapes=4x4 ds=4 seeds=1 seed=0
derive = ratio_quadratic
assert work >= t
assert ratio(work, t) <= 3.41
assert agg max(ratio_quadratic) < 10
";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.id, "e01");
        assert!(s.trace);
        assert_eq!(s.max_ticks, Some(50_000_000));
        assert_eq!(s.grids.len(), 1);
        assert_eq!(s.smoke.len(), 1);
        assert_eq!(s.derive.as_deref(), Some("ratio_quadratic"));
        assert_eq!(s.asserts.len(), 3);
        let rendered = s.to_string();
        let reparsed = Scenario::parse(&rendered).unwrap();
        assert_eq!(reparsed, s);
        // Fixed point: rendering again reproduces the same bytes.
        assert_eq!(reparsed.to_string(), rendered);
    }

    #[test]
    fn smoke_override_falls_back_to_full_grids() {
        let s =
            Scenario::parse("id = x\ngrid = algos=soloall advs=unit shapes=2x2 ds=1\n").unwrap();
        assert_eq!(s.grids_for(false), &s.grids[..]);
        assert_eq!(s.grids_for(true), &s.grids[..], "no smoke override");
    }

    #[test]
    fn errors_name_the_line() {
        let cases = [
            ("id = e01\nfrobnicate\n", 2, "expected `key = value`"),
            ("id = e01\nwat = 1\n", 2, "unknown key `wat`"),
            ("id = bad id\n", 1, "invalid id"),
            ("id = e01\nid = e02\n", 2, "duplicate `id`"),
            ("id = e01\ntrace = maybe\n", 2, "trace must be"),
            ("id = e01\nmax_ticks = none\n", 2, "not a count"),
            ("id = e01\nmax_ticks = 0\n", 2, "at least 1"),
            ("id = e01\ngrid = algos=nope shapes=2x2\n", 2, "bad grid"),
            ("id = e01\nassert work >=\n", 2, "expected an expression"),
            ("id = e01\nassert work ?? t\n", 2, "unexpected character"),
        ];
        for (text, line, needle) in cases {
            let e = Scenario::parse(text).expect_err(text);
            assert_eq!(e.line, line, "{text}: {e}");
            assert!(e.to_string().contains(needle), "{text}: {e}");
        }
        // File-level problems carry line 0 and no line prefix.
        let e = Scenario::parse("title = x\ngrid = algos=soloall shapes=2x2\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.to_string().contains("no `id`"));
        let e = Scenario::parse("id = e01\n").unwrap_err();
        assert!(e.to_string().contains("no `grid`"));
    }

    #[test]
    fn assertion_grammar_round_trips_the_readme_examples() {
        for line in [
            "assert work >= t",
            "assert ratio(work, t) <= 3.41",
            "assert mean_crashes_fired >= 1 when crash_count >= 1",
            "assert messages <= 3 * p * t",
            "assert agg max(ratio_threshold) < 1",
            "assert [backend=sim] wall_clock_ms == 0",
            "assert [algo=paran1,p=8] work != 0",
            "assert work <= dcont + p when dcont_exact == 1",
            "assert agg mean(ratio_quadratic) / 2 > 0.1",
            "assert (work - t) / p < 100",
        ] {
            let a = Assertion::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(a.to_string(), line, "canonical rendering");
            let again = Assertion::parse(&a.to_string()).unwrap();
            assert_eq!(again, a);
        }
    }

    #[test]
    fn assertion_rejects_malformed_lines() {
        for (line, needle) in [
            ("assert", "expected an expression"),
            ("assert work", "expected a comparison"),
            ("assert work >= t trailing", "trailing input"),
            ("assert [color=red] work >= t", "unknown selector key"),
            ("assert frob(work) >= t", "unknown function"),
            ("assert agg work >= t", "wrap metrics in min/max/mean/sum"),
            ("assert max(work) >= t", "need the `agg` scope"),
            (
                "assert agg max(work) >= 1 when work >= 1",
                "guards apply per cell",
            ),
            ("assert work ! t", "only valid as `!=`"),
            ("assert 1.2.3 >= t", "not a number"),
        ] {
            let e = Assertion::parse(line).expect_err(line);
            assert!(e.contains(needle), "`{line}` error `{e}` lacks `{needle}`");
        }
    }

    #[test]
    fn cell_evaluation_skips_missing_metrics_and_false_guards() {
        let a = Assertion::parse("assert work >= t").unwrap();
        let c = cell("paran1", 4, 16, 2);
        assert_eq!(
            a.check_cell(&c, &metrics(&[("mean_work", 20.0)])),
            Some(Ok(()))
        );
        assert_eq!(
            a.check_cell(&c, &metrics(&[("mean_work", 10.0)])),
            Some(Err((10.0, 16.0)))
        );
        assert_eq!(a.check_cell(&c, &metrics(&[])), None, "missing metric");
        let guarded =
            Assertion::parse("assert mean_crashes_fired >= 1 when crash_count >= 1").unwrap();
        assert_eq!(
            guarded.check_cell(
                &c,
                &metrics(&[("crash_count", 0.0), ("mean_crashes_fired", 0.0)])
            ),
            None,
            "false guard skips"
        );
        assert_eq!(
            guarded.check_cell(
                &c,
                &metrics(&[("crash_count", 2.0), ("mean_crashes_fired", 0.0)])
            ),
            Some(Err((0.0, 1.0)))
        );
    }

    #[test]
    fn filters_restrict_cells() {
        let a = Assertion::parse("assert [algo=paran1,d=2] work >= t").unwrap();
        let hit = cell("paran1", 4, 16, 2);
        let miss = cell("padet", 4, 16, 2);
        let m = metrics(&[("mean_work", 20.0)]);
        assert_eq!(a.check_cell(&hit, &m), Some(Ok(())));
        assert_eq!(a.check_cell(&miss, &m), None);
        let wrong_d = cell("paran1", 4, 16, 8);
        assert_eq!(a.check_cell(&wrong_d, &m), None);
    }

    #[test]
    fn aggregate_evaluation_pools_cells() {
        let a = Assertion::parse("assert agg max(ratio) < 1").unwrap();
        let c1 = cell("a", 4, 16, 1);
        let c2 = cell("b", 4, 16, 1);
        let m1 = metrics(&[("ratio", 0.5)]);
        let m2 = metrics(&[("ratio", 0.9)]);
        let rows = vec![(&c1, &m1), (&c2, &m2)];
        assert_eq!(a.check_agg(&rows), Some(Ok(())));
        let m3 = metrics(&[("ratio", 1.5)]);
        let rows = vec![(&c1, &m1), (&c2, &m3)];
        assert_eq!(a.check_agg(&rows), Some(Err((1.5, 1.0))));
        // No cell carries the metric: no verdict (the suite flags it).
        let empty = metrics(&[]);
        let rows = vec![(&c1, &empty)];
        assert_eq!(a.check_agg(&rows), None);
        // min/mean/sum agree on a singleton.
        for f in ["min", "mean", "sum"] {
            let a = Assertion::parse(&format!("assert agg {f}(ratio) == 0.5")).unwrap();
            let rows = vec![(&c1, &m1)];
            assert_eq!(a.check_agg(&rows), Some(Ok(())), "{f}");
        }
    }

    #[test]
    fn expression_precedence_matches_arithmetic() {
        let a = Assertion::parse("assert 2 + 3 * 4 == 14").unwrap();
        let c = cell("x", 1, 1, 1);
        assert_eq!(a.check_cell(&c, &metrics(&[])), Some(Ok(())));
        let a = Assertion::parse("assert (2 + 3) * 4 == 20").unwrap();
        assert_eq!(a.check_cell(&c, &metrics(&[])), Some(Ok(())));
        let a = Assertion::parse("assert 10 - 4 - 3 == 3").unwrap();
        assert_eq!(a.check_cell(&c, &metrics(&[])), Some(Ok(())));
        let a = Assertion::parse("assert ratio(1, 4) == 0.25").unwrap();
        assert_eq!(a.check_cell(&c, &metrics(&[])), Some(Ok(())));
    }

    #[test]
    fn aliases_resolve_to_mean_metrics() {
        let c = cell("x", 2, 8, 1);
        let m = metrics(&[
            ("mean_work", 10.0),
            ("mean_messages", 4.0),
            ("mean_primary", 3.0),
            ("mean_secondary", 1.0),
        ]);
        for (line, ok) in [
            ("assert work == 10", true),
            ("assert messages == 4", true),
            ("assert primary == 3", true),
            ("assert secondary == 1", true),
            ("assert mean_work == 10", true),
            ("assert work == 11", false),
        ] {
            let a = Assertion::parse(line).unwrap();
            assert_eq!(a.check_cell(&c, &m).unwrap().is_ok(), ok, "{line}");
        }
    }
}
