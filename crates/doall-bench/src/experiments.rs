//! The experiment loader: every `e01`–`e17` binary is a suite invocation
//! over the committed `scenarios/*.scn` files, executed by the shared
//! sweep engine via [`crate::suite`].
//!
//! Experiments used to be a 950-line Rust registry of spec structs and
//! derive closures; they are now *data* — each scenario file holds its
//! grids, smoke override, prose, and property assertions (see
//! [`crate::scenario`] for the format). What stays in Rust is the one
//! thing a text format cannot express: the derived-metric hooks that
//! restate the paper's closed-form bounds next to the measurements. A
//! scenario names its hook with `derive = <name>`; the name table is
//! [`DERIVE_HOOKS`]. The paper's inequality lemmas (4.2 and 6.1), once
//! buried in `assert!`s here, are now declarative `assert` lines in the
//! scenario files — a violation names the exact offending cell instead
//! of panicking the harness.

use crate::grid::{schedules_for_algo, Cell, ALGO_NONE};
use crate::output::{emit, parse_flags, Format, ResultSet, FLAGS_USAGE};
use crate::scenario::Scenario;
use crate::suite::{load_dir, run_scenario, SuiteConfig};
use doall_algorithms::Da;
use doall_bounds::{da_epsilon, da_upper_bound, lower_bound_work, oblivious_work, pa_upper_bound};
use doall_core::Instance;
use doall_perms::{contention_exact, d_contention_of_list, dcont_threshold, search, Schedules};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// The standard algorithm roster used by the headline sweeps.
pub const ROSTER: &[&str] = &["soloall", "da:2", "da:3", "paran1", "paran2", "padet"];

/// A derived-metric hook: reads a cell's measured metrics from the map
/// and inserts bounds/ratios next to them.
pub type DeriveFn = fn(&Cell, &mut BTreeMap<String, f64>);

fn instance_of(cell: &Cell) -> Instance {
    Instance::new(cell.p, cell.t).expect("cells are validated before running")
}

fn quadratic(cell: &Cell) -> f64 {
    oblivious_work(cell.p, cell.t)
}

fn ratio_quadratic(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    if let Some(&w) = m.get("mean_work") {
        m.insert("ratio_quadratic".to_string(), w / quadratic(cell));
    }
}

fn d_lower_bound(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    let lb = lower_bound_work(cell.p, cell.t, cell.d);
    m.insert("lb_bound".to_string(), lb);
    if let Some(&w) = m.get("mean_work") {
        m.insert("ratio_lb".to_string(), w / lb);
    }
    ratio_quadratic(cell, m);
}

fn d_contention_lemmas(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    let n = cell.t;
    if cell.algo == ALGO_NONE {
        // Lemma 4.1: certified low-contention list search vs the 3nH_n bound.
        let (_, cont) = search::low_contention_list(n, 0);
        m.insert("cont_found".to_string(), cont.value as f64);
        m.insert("bound_3nHn".to_string(), search::lemma41_bound(n));
        m.insert("worst_list_nn".to_string(), (n * n) as f64);
    } else {
        // Lemma 4.2 data: ObliDo's primary executions vs Cont(Σ) of the
        // very list it ran with. The inequality itself is a scenario
        // `assert primary <= cont` line, not a panic here.
        let sched = schedules_for_algo(&cell.algo, instance_of(cell), cell.run_seed(0))
            .expect("oblido keys carry schedules");
        let cont = contention_exact(sched.as_slice()) as f64;
        m.insert("cont".to_string(), cont);
        m.insert("total_nn".to_string(), (n * n) as f64);
    }
}

fn d_dcont_threshold(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    // Theorem 4.4 / Corollary 4.5: (d)-Cont of a random list vs threshold.
    let sched = Schedules::random(cell.p, cell.t, cell.run_seed(0));
    let est = d_contention_of_list(sched.as_slice(), cell.d as usize);
    let th = dcont_threshold(cell.t, cell.p, cell.d as usize);
    m.insert("dcont".to_string(), est.value as f64);
    m.insert("dcont_exact".to_string(), f64::from(u8::from(est.exact)));
    m.insert("threshold".to_string(), th);
    m.insert("ratio_threshold".to_string(), est.value as f64 / th);
    m.insert("cap_np".to_string(), (cell.t * cell.p) as f64);
}

fn da_q_of(cell: &Cell) -> usize {
    cell.algo
        .strip_prefix("da:")
        .and_then(|q| q.parse().ok())
        .expect("DA experiments use da:<q> keys")
}

fn da_eps_of(cell: &Cell, m: &mut BTreeMap<String, f64>) -> f64 {
    let q = da_q_of(cell);
    let da = Da::with_default_schedules(q, cell.run_seed(0));
    let cont = contention_exact(da.schedules().as_slice());
    let eps = da_epsilon(q, cont).max(0.05);
    m.insert("cont".to_string(), cont as f64);
    m.insert("epsilon".to_string(), eps);
    eps
}

fn d_da_bound(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    let eps = da_eps_of(cell, m);
    let bound = da_upper_bound(cell.p, cell.t, cell.d, eps);
    m.insert("da_bound".to_string(), bound);
    if let Some(&w) = m.get("mean_work") {
        m.insert("ratio_bound".to_string(), w / bound);
    }
    ratio_quadratic(cell, m);
}

fn msgs_over_p_work(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    if let (Some(&msgs), Some(&w)) = (m.get("mean_messages"), m.get("mean_work")) {
        if w > 0.0 {
            m.insert("m_over_pw".to_string(), msgs / (cell.p as f64 * w));
        }
    }
}

fn d_pa_bound(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    let bound = pa_upper_bound(cell.p, cell.t, cell.d);
    m.insert("pa_bound".to_string(), bound);
    if let Some(&w) = m.get("mean_work") {
        m.insert("ratio_bound".to_string(), w / bound);
    }
    ratio_quadratic(cell, m);
    msgs_over_p_work(cell, m);
}

fn d_dcont_lemma(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    // Lemma 6.1 data: PaDet work vs (d)-Cont(Σ) of its own schedule
    // list. The exact-row inequality (small slack: the final tick may
    // charge idle steps of processors that have not yet learned
    // completion) is a scenario `assert work <= dcont + p when
    // dcont_exact == 1` line.
    let sched = schedules_for_algo(&cell.algo, instance_of(cell), cell.run_seed(0))
        .expect("padet carries schedules");
    let dc = d_contention_of_list(sched.as_slice(), cell.d as usize);
    m.insert("dcont".to_string(), dc.value as f64);
    m.insert("dcont_exact".to_string(), f64::from(u8::from(dc.exact)));
    if let Some(&w) = m.get("mean_work") {
        m.insert("ratio_dcont".to_string(), w / dc.value as f64);
    }
}

fn d_da_epsilon(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    let _ = da_eps_of(cell, m);
    msgs_over_p_work(cell, m);
}

fn d_msgs_over_work(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    if let (Some(&msgs), Some(&w)) = (m.get("mean_messages"), m.get("mean_work")) {
        if w > 0.0 {
            m.insert("m_over_w".to_string(), msgs / w);
        }
    }
    ratio_quadratic(cell, m);
}

fn d_dcont_list(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    let sched = schedules_for_algo(&cell.algo, instance_of(cell), cell.run_seed(0))
        .expect("structured-schedule keys carry schedules");
    let dc = d_contention_of_list(sched.as_slice(), cell.d as usize);
    m.insert("dcont".to_string(), dc.value as f64);
    ratio_quadratic(cell, m);
}

/// Every derived-metric hook a scenario file may name with
/// `derive = <name>`, sorted by name.
pub const DERIVE_HOOKS: &[(&str, DeriveFn)] = &[
    ("contention_lemmas", d_contention_lemmas),
    ("da_bound", d_da_bound),
    ("da_epsilon", d_da_epsilon),
    ("dcont_lemma", d_dcont_lemma),
    ("dcont_list", d_dcont_list),
    ("dcont_threshold", d_dcont_threshold),
    ("lower_bound", d_lower_bound),
    ("msgs_over_p_work", msgs_over_p_work),
    ("msgs_over_work", d_msgs_over_work),
    ("pa_bound", d_pa_bound),
    ("ratio_quadratic", ratio_quadratic),
];

/// Resolves a scenario's `derive = <name>` hook.
#[must_use]
pub fn derive_by_name(name: &str) -> Option<DeriveFn> {
    DERIVE_HOOKS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, f)| f)
}

/// The committed scenario directory: `./scenarios` when invoked from the
/// repository root (the CLI and CI case), else resolved relative to this
/// crate's manifest (the `cargo test` / `cargo run` case).
#[must_use]
pub fn scenarios_dir() -> PathBuf {
    let cwd = PathBuf::from("scenarios");
    if cwd.is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

/// Runs the suite and returns whether it is clean: `false` means an
/// assertion failed or a `--compare` baseline comparison found drift
/// (the caller exits 1).
fn run_suite(only: Option<&str>, args: &[String]) -> Result<bool, String> {
    let flags = parse_flags(args)?;
    let all = load_dir(&scenarios_dir())?;
    let ids: Vec<&str> = match only {
        Some(id) => vec![id],
        None => match &flags.only {
            Some(ids) => ids.iter().map(String::as_str).collect(),
            None => Vec::new(),
        },
    };
    let scenarios: Vec<Scenario> = if ids.is_empty() {
        all
    } else {
        for id in &ids {
            if !all.iter().any(|s| s.id == *id) {
                return Err(format!("unknown experiment `{id}`"));
            }
        }
        all.into_iter()
            .filter(|s| ids.iter().any(|id| *id == s.id))
            .collect()
    };
    let cfg = SuiteConfig {
        smoke: flags.smoke,
        threads: flags.threads,
        shard_size: flags.shard_size,
        max_ticks: flags.max_ticks,
    };
    let human = flags.format == Format::Table;
    let mut records = Vec::new();
    let mut failures = Vec::new();
    for scn in &scenarios {
        let outcome = run_scenario(scn, &cfg)?;
        if human {
            crate::section(&scn.id, &scn.title, &scn.setup);
            ResultSet {
                mode: String::new(),
                records: outcome.records.clone(),
            }
            .print_tables();
            println!("{}", scn.notes);
        }
        failures.extend(outcome.failures);
        records.extend(outcome.records);
    }
    let mode = if flags.smoke { "smoke" } else { "full" };
    let results = ResultSet {
        mode: mode.to_string(),
        records,
    };
    if !human {
        emit(&results, &flags)?;
    }
    // Assertion failures go to stderr (stdout may carry the results).
    for failure in &failures {
        eprintln!("FAIL {failure}");
    }
    let mut clean = failures.is_empty();
    if let Some(path) = &flags.compare {
        let baseline = crate::compare::load_result_set(path).map_err(|e| e.to_string())?;
        let current = crate::compare::BaselineSet::of(&results);
        let comparison = crate::compare::compare(&baseline, &current, flags.tolerance);
        // The diff goes to stderr too.
        eprint!("{}", comparison.render_text());
        clean &= comparison.is_clean();
    }
    Ok(clean)
}

fn main_with(only: Option<&str>) {
    // lint:allow(D003) — CLI entry point: args select which experiments run, never reach a record
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_suite(only, &args) {
        Ok(true) => {}
        // Assertion failure or baseline drift: exit 1, diff-style (2 is
        // reserved for errors).
        Ok(false) => std::process::exit(1),
        Err(e) if e == "help" => {
            println!("{FLAGS_USAGE}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Entry point for a single experiment binary: parses the shared flags
/// from `std::env::args` and runs scenario `id` from the committed
/// suite.
pub fn experiment_main(id: &str) {
    main_with(Some(id));
}

/// Entry point for the `all_experiments` binary: runs the whole
/// committed suite (or the `--only` subset) in-process and emits one
/// merged result set.
pub fn suite_main() {
    main_with(None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::run_suite as run_suite_scenarios;

    fn committed() -> Vec<Scenario> {
        load_dir(&scenarios_dir()).expect("committed scenarios load")
    }

    #[test]
    fn committed_suite_has_seventeen_unique_ids() {
        let scenarios = committed();
        assert_eq!(scenarios.len(), 17);
        let ids: std::collections::BTreeSet<&str> =
            scenarios.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids.len(), 17);
        assert!(ids.contains("e01"));
        assert!(ids.contains("e17"));
        // Sorted-path discovery puts them in id order.
        let in_order: Vec<&str> = scenarios.iter().map(|s| s.id.as_str()).collect();
        let mut sorted = in_order.clone();
        sorted.sort_unstable();
        assert_eq!(in_order, sorted);
    }

    #[test]
    fn every_committed_scenario_is_fully_specified() {
        for scn in committed() {
            assert!(!scn.title.is_empty(), "{} needs a title", scn.id);
            assert!(!scn.setup.is_empty(), "{} needs a setup line", scn.id);
            assert!(!scn.notes.is_empty(), "{} needs notes", scn.id);
            assert!(
                !scn.smoke.is_empty(),
                "{} needs a smoke grid for CI",
                scn.id
            );
            assert!(!scn.asserts.is_empty(), "{} needs assertions", scn.id);
            // Grids are validated by load_dir; spot-check round-tripping.
            let rendered = scn.to_string();
            assert_eq!(Scenario::parse(&rendered).unwrap(), scn, "{}", scn.id);
        }
    }

    #[test]
    fn smoke_suite_covers_the_full_algorithm_and_adversary_matrix() {
        let mut algos = std::collections::BTreeSet::new();
        let mut advs = std::collections::BTreeSet::new();
        for scn in committed() {
            for grid in scn.grids_for(true) {
                algos.extend(grid.algos.clone());
                advs.extend(grid.adversaries.iter().map(ToString::to_string));
            }
        }
        for key in ROSTER {
            assert!(algos.contains(*key), "roster algo {key} missing from smoke");
        }
        for key in [
            "oblido",
            "oblido-searched",
            "oblido-worst",
            "padet-rot",
            "padet-affine",
        ] {
            assert!(algos.contains(key), "algo {key} missing from smoke");
        }
        assert!(algos.iter().any(|a| a.starts_with("gossip:")));
        for key in ["unit", "fixed", "random", "stage", "bursty", "lb", "lbrand"] {
            assert!(advs.contains(key), "adversary {key} missing from smoke");
        }
        assert!(advs.iter().any(|a| a.starts_with("crash:")));
        // The parameterized families: every knob axis is exercised by CI.
        assert!(
            advs.iter().any(|a| a.starts_with("bursty:")),
            "no bursty period knob in smoke: {advs:?}"
        );
        for stagger in ["@burst", "@front"] {
            assert!(
                advs.iter()
                    .any(|a| a.starts_with("crash:") && a.ends_with(stagger)),
                "no crash {stagger} stagger in smoke: {advs:?}"
            );
        }
        assert!(
            advs.iter().any(|a| a.starts_with("straggler:")),
            "no straggler cell in smoke: {advs:?}"
        );
    }

    #[test]
    fn smoke_e01_produces_expected_metrics_and_passes_its_assertions() {
        let scenarios = committed();
        let e01 = scenarios.iter().find(|s| s.id == "e01").unwrap();
        let cfg = SuiteConfig {
            smoke: true,
            threads: Some(2),
            ..SuiteConfig::default()
        };
        let outcome = run_scenario(e01, &cfg).unwrap();
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
        // roster × 1 shape × 2 ds
        assert_eq!(outcome.records.len(), ROSTER.len() * 2);
        for r in &outcome.records {
            assert!(r.metrics.contains_key("mean_work"));
            assert!(r.metrics.contains_key("median_work"));
            assert!(r.metrics.contains_key("max_messages"));
            // The quadratic-wall band is Θ(1), but the constant at tiny
            // smoke shapes can sit above 1 — only sanity-check the order
            // (the scenario's own assertions encode the same band).
            let ratio = r.metrics["ratio_quadratic"];
            assert!(ratio > 0.0 && ratio < 10.0, "{}: {ratio}", r.cell.algo);
        }
    }

    #[test]
    fn suite_compare_is_clean_against_own_output_and_flags_drift() {
        let args = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
        let base =
            std::env::temp_dir().join(format!("doall_suite_compare_{}.json", std::process::id()));
        let base = base.to_str().unwrap().to_string();
        // e05 is pure combinatorics (`none` cells) — cheap to run twice.
        let clean = run_suite(
            None,
            &args(&format!("--smoke --only e05 --json --out {base}")),
        )
        .unwrap();
        assert!(clean, "no --compare given");
        let clean = run_suite(
            None,
            &args(&format!(
                "--smoke --only e05 --json --out {base}.2 --compare {base}"
            )),
        )
        .unwrap();
        assert!(clean, "a deterministic rerun must match its own baseline");
        // Doctor one value in the baseline: the rerun must flag drift.
        let doctored =
            std::fs::read_to_string(&base)
                .unwrap()
                .replacen("\"dcont\": ", "\"dcont\": 9", 1);
        std::fs::write(&base, doctored).unwrap();
        let clean = run_suite(
            None,
            &args(&format!(
                "--smoke --only e05 --json --out {base}.2 --compare {base}"
            )),
        )
        .unwrap();
        assert!(
            !clean,
            "a doctored baseline value must be reported as drift"
        );
        assert!(
            run_suite(None, &args("--smoke --only e99 --json")).is_err(),
            "unknown ids are rejected"
        );
        let _ = std::fs::remove_file(&base);
        let _ = std::fs::remove_file(format!("{base}.2"));
    }

    #[test]
    fn lemma_scenarios_pass_their_declarative_assertions_in_smoke() {
        let scenarios = committed();
        let cfg = SuiteConfig {
            smoke: true,
            threads: Some(2),
            ..SuiteConfig::default()
        };
        // e04 (Lemma 4.2) and e10 (Lemma 6.1) carry the paper's
        // inequalities as scenario asserts; a violation now names the
        // cell instead of panicking.
        let subset: Vec<Scenario> = scenarios
            .into_iter()
            .filter(|s| s.id == "e04" || s.id == "e10")
            .collect();
        assert_eq!(subset.len(), 2);
        let report = run_suite_scenarios(&subset, &cfg).unwrap();
        assert!(report.is_clean(), "{}", report.render_table());
        assert!(report.scenarios.iter().all(|s| s.checks > 0));
    }

    #[test]
    fn derive_hooks_resolve_by_name() {
        for (name, _) in DERIVE_HOOKS {
            assert!(derive_by_name(name).is_some(), "{name}");
        }
        assert!(derive_by_name("frobnicate").is_none());
        // The table is sorted so the docs render predictably.
        let names: Vec<&str> = DERIVE_HOOKS.iter().map(|(n, _)| *n).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
