//! The experiment registry: every `e01`–`e17` binary as a declarative
//! scenario-grid spec plus a derived-metric function, all executed by the
//! shared parallel sweep engine.
//!
//! A spec names its full grids (the paper-scale tables recorded in
//! EXPERIMENTS.md) and a tiny smoke grid (run on every CI push, under two
//! minutes for the whole suite). Derived metrics re-state the paper's
//! closed-form bounds next to the measurements; the two inequality lemmas
//! (4.2 and 6.1) are *asserted*, so a violating run fails the harness
//! rather than printing a quietly wrong table.

use crate::grid::{schedules_for_algo, Backend, Cell, Grid, ALGO_NONE};
use crate::output::{emit, parse_flags, Flags, Format, Record, ResultSet, FLAGS_USAGE};
use crate::sweep::{default_threads, run_cells, SweepConfig};
use doall_algorithms::Da;
use doall_bounds::{da_epsilon, da_upper_bound, lower_bound_work, oblivious_work, pa_upper_bound};
use doall_core::Instance;
use doall_perms::{contention_exact, d_contention_of_list, dcont_threshold, search, Schedules};
use doall_sim::DEFAULT_MAX_TICKS;
use std::collections::BTreeMap;

/// The standard algorithm roster used by the headline sweeps.
pub const ROSTER: &[&str] = &["soloall", "da:2", "da:3", "paran1", "paran2", "padet"];

/// A derived-metric hook: reads a cell's measured metrics from the map
/// and inserts bounds/ratios next to them.
pub type DeriveFn = fn(&Cell, &mut BTreeMap<String, f64>);

/// One experiment: id, prose, grids, and derived metrics.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Registry id (`"e01"` … `"e15"`); also the record key in outputs.
    pub id: &'static str,
    /// What the experiment reproduces.
    pub title: &'static str,
    /// Setup line printed above the table in human mode.
    pub setup: &'static str,
    /// Interpretation notes printed after the table in human mode.
    pub notes: &'static str,
    /// Collect execution traces (primary/secondary execution metrics).
    pub trace: bool,
    /// Per-run tick cutoff (lower-bound experiments shorten it; long
    /// sweeps raise it).
    pub max_ticks: u64,
    /// The full, paper-scale grids.
    pub grids: fn() -> Vec<Grid>,
    /// The tiny CI smoke grids.
    pub smoke: fn() -> Vec<Grid>,
    /// Adds derived metrics (bounds, ratios, contention) to a cell whose
    /// measured metrics are already in the map.
    pub derive: Option<DeriveFn>,
}

fn g(algos: &[&str], advs: &[&str], shapes: &[(usize, usize)], ds: &[u64], seeds: u64) -> Grid {
    Grid::new(algos, advs, shapes, ds, seeds, 0)
}

fn instance_of(cell: &Cell) -> Instance {
    Instance::new(cell.p, cell.t).expect("cells are validated before running")
}

fn quadratic(cell: &Cell) -> f64 {
    oblivious_work(cell.p, cell.t)
}

fn ratio_quadratic(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    if let Some(&w) = m.get("mean_work") {
        m.insert("ratio_quadratic".to_string(), w / quadratic(cell));
    }
}

fn d_lower_bound(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    let lb = lower_bound_work(cell.p, cell.t, cell.d);
    m.insert("lb_bound".to_string(), lb);
    if let Some(&w) = m.get("mean_work") {
        m.insert("ratio_lb".to_string(), w / lb);
    }
    ratio_quadratic(cell, m);
}

fn d_e04(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    let n = cell.t;
    if cell.algo == ALGO_NONE {
        // Lemma 4.1: certified low-contention list search vs the 3nH_n bound.
        let (_, cont) = search::low_contention_list(n, 0);
        m.insert("cont_found".to_string(), cont.value as f64);
        m.insert("bound_3nHn".to_string(), search::lemma41_bound(n));
        m.insert("worst_list_nn".to_string(), (n * n) as f64);
    } else {
        // Lemma 4.2: ObliDo's primary executions never exceed Cont(Σ).
        let sched = schedules_for_algo(&cell.algo, instance_of(cell), cell.run_seed(0))
            .expect("oblido keys carry schedules");
        let cont = contention_exact(sched.as_slice()) as f64;
        let primary = m["mean_primary"];
        assert!(
            primary <= cont,
            "Lemma 4.2 violated: {primary} > {cont} ({} n={n})",
            cell.algo
        );
        m.insert("cont".to_string(), cont);
        m.insert("total_nn".to_string(), (n * n) as f64);
    }
}

fn d_e05(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    // Theorem 4.4 / Corollary 4.5: (d)-Cont of a random list vs threshold.
    let sched = Schedules::random(cell.p, cell.t, cell.run_seed(0));
    let est = d_contention_of_list(sched.as_slice(), cell.d as usize);
    let th = dcont_threshold(cell.t, cell.p, cell.d as usize);
    m.insert("dcont".to_string(), est.value as f64);
    m.insert("dcont_exact".to_string(), f64::from(u8::from(est.exact)));
    m.insert("threshold".to_string(), th);
    m.insert("ratio_threshold".to_string(), est.value as f64 / th);
    m.insert("cap_np".to_string(), (cell.t * cell.p) as f64);
}

fn da_q_of(cell: &Cell) -> usize {
    cell.algo
        .strip_prefix("da:")
        .and_then(|q| q.parse().ok())
        .expect("DA experiments use da:<q> keys")
}

fn da_eps_of(cell: &Cell, m: &mut BTreeMap<String, f64>) -> f64 {
    let q = da_q_of(cell);
    let da = Da::with_default_schedules(q, cell.run_seed(0));
    let cont = contention_exact(da.schedules().as_slice());
    let eps = da_epsilon(q, cont).max(0.05);
    m.insert("cont".to_string(), cont as f64);
    m.insert("epsilon".to_string(), eps);
    eps
}

fn d_e06(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    let eps = da_eps_of(cell, m);
    let bound = da_upper_bound(cell.p, cell.t, cell.d, eps);
    m.insert("da_bound".to_string(), bound);
    if let Some(&w) = m.get("mean_work") {
        m.insert("ratio_bound".to_string(), w / bound);
    }
    ratio_quadratic(cell, m);
}

fn msgs_over_p_work(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    if let (Some(&msgs), Some(&w)) = (m.get("mean_messages"), m.get("mean_work")) {
        if w > 0.0 {
            m.insert("m_over_pw".to_string(), msgs / (cell.p as f64 * w));
        }
    }
}

fn d_pa_bound(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    let bound = pa_upper_bound(cell.p, cell.t, cell.d);
    m.insert("pa_bound".to_string(), bound);
    if let Some(&w) = m.get("mean_work") {
        m.insert("ratio_bound".to_string(), w / bound);
    }
    ratio_quadratic(cell, m);
    msgs_over_p_work(cell, m);
}

fn d_e10(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    // Lemma 6.1: PaDet work ≤ (d)-Cont(Σ) of its own schedule list.
    let sched = schedules_for_algo(&cell.algo, instance_of(cell), cell.run_seed(0))
        .expect("padet carries schedules");
    let dc = d_contention_of_list(sched.as_slice(), cell.d as usize);
    m.insert("dcont".to_string(), dc.value as f64);
    m.insert("dcont_exact".to_string(), f64::from(u8::from(dc.exact)));
    if let Some(&w) = m.get("mean_work") {
        m.insert("ratio_dcont".to_string(), w / dc.value as f64);
        if dc.exact {
            // Small slack: the final tick may charge idle steps of
            // processors that have not yet learned completion.
            assert!(
                w <= (dc.value + cell.p) as f64,
                "Lemma 6.1 violated at d={}: {w} > {}",
                cell.d,
                dc.value
            );
        }
    }
}

fn d_e13(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    let _ = da_eps_of(cell, m);
    msgs_over_p_work(cell, m);
}

fn d_e14(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    if let (Some(&msgs), Some(&w)) = (m.get("mean_messages"), m.get("mean_work")) {
        if w > 0.0 {
            m.insert("m_over_w".to_string(), msgs / w);
        }
    }
    ratio_quadratic(cell, m);
}

fn d_e15(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    let sched = schedules_for_algo(&cell.algo, instance_of(cell), cell.run_seed(0))
        .expect("e15 keys carry schedules");
    let dc = d_contention_of_list(sched.as_slice(), cell.d as usize);
    m.insert("dcont".to_string(), dc.value as f64);
    ratio_quadratic(cell, m);
}

fn d_e16(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    ratio_quadratic(cell, m);
    // Structural sanity under every adversary parameterization: all t
    // tasks are performed at least once and a step performs at most one
    // task, so W ≥ t whatever the duty cycle, stagger, or slowdown.
    if let Some(&w) = m.get("mean_work") {
        assert!(
            w >= cell.t as f64,
            "impossible work under {}: mean_work {w} < t = {}",
            cell.adversary,
            cell.t
        );
    }
    // The afflicted-processor counts the sweep records must respect the
    // ≥ 1 full-speed survivor cap the builders promise.
    for key in ["crash_count", "straggler_count"] {
        if let Some(&count) = m.get(key) {
            assert!(
                count < cell.p as f64,
                "{} = {count} leaves no full-speed survivor at p = {}",
                key,
                cell.p
            );
        }
    }
}

fn d_e17(cell: &Cell, m: &mut BTreeMap<String, f64>) {
    ratio_quadratic(cell, m);
    // Substrate-independent floor: every task is performed at least once
    // and a step performs at most one task, so W ≥ t on *both* backends
    // (the threads runner counts real state-machine steps, not ticks).
    if let Some(&w) = m.get("mean_work") {
        assert!(
            w >= cell.t as f64,
            "impossible work on the {} backend: mean_work {w} < t = {}",
            cell.effective_backend(),
            cell.t
        );
    }
    // Backend-tagged cells always carry the measured-only trio, and
    // wall-clock is real exactly on the threads substrate.
    let ms = m["wall_clock_ms"];
    match cell.effective_backend() {
        Backend::Sim => assert!(ms == 0.0, "sim cells have no wall-clock: {ms}"),
        Backend::Threads => assert!(ms > 0.0, "threads cells must measure wall-clock"),
    }
}

/// Every experiment in suite order.
#[must_use]
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "e01",
            title: "Proposition 2.2 (quadratic wall at d = Ω(t))",
            setup: "All algorithms at d ∈ {t, 2t}; ratio_quadratic is W/(p·t). Expect Θ(1) everywhere.",
            notes: "Paper: Ω(t·p) is unavoidable for a (c·t)-adversary — the ratios sit in a narrow constant band.",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![
                    g(ROSTER, &["fixed"], &[(32, 32)], &[32, 64], 1),
                    g(ROSTER, &["fixed"], &[(64, 64)], &[64, 128], 1),
                ]
            },
            smoke: || vec![g(ROSTER, &["fixed"], &[(8, 8)], &[8, 16], 1)],
            derive: Some(ratio_quadratic),
        },
        Experiment {
            id: "e02",
            title: "Theorem 3.1 (delay-sensitive lower bound, deterministic)",
            setup: "p = t; LowerBoundAdversary (stage dry-runs) vs the bound t + p·min{d,t}·log_(d+1)(d+t); `unit` rows are the benign baseline.",
            notes: "Paper: forced work grows with d; forced/(p·t) saturates in the [1/18, 1] band at large d while forced/LB stays within a constant band.",
            trace: false,
            max_ticks: 50_000_000,
            grids: || {
                vec![
                    g(&["da:3", "padet"], &["lb"], &[(243, 243)], &[1, 3, 9, 27, 81, 243], 1),
                    g(&["da:3", "padet"], &["unit"], &[(243, 243)], &[1], 1),
                ]
            },
            smoke: || {
                vec![
                    g(&["da:3", "padet"], &["lb"], &[(9, 9)], &[1, 3], 1),
                    g(&["da:3", "padet"], &["unit"], &[(9, 9)], &[1], 1),
                ]
            },
            derive: Some(d_lower_bound),
        },
        Experiment {
            id: "e03",
            title: "Theorem 3.4 (delay-sensitive lower bound, randomized)",
            setup: "p = t; delay-on-touch adversary; mean over seeds; `unit` rows are the benign baseline.",
            notes: "Paper: expected forced work grows with d; freezing on touched defended tasks realizes Lemma 3.3's adversary.",
            trace: false,
            max_ticks: 50_000_000,
            grids: || {
                vec![
                    g(&["paran1", "paran2"], &["lbrand"], &[(128, 128)], &[1, 4, 16, 64, 128], 10),
                    g(&["paran1", "paran2"], &["unit"], &[(128, 128)], &[1], 10),
                ]
            },
            smoke: || {
                vec![
                    g(&["paran1", "paran2"], &["lbrand"], &[(8, 8)], &[1, 4], 2),
                    g(&["paran1", "paran2"], &["unit"], &[(8, 8)], &[1], 2),
                ]
            },
            derive: Some(d_lower_bound),
        },
        Experiment {
            id: "e04",
            title: "Lemma 4.1 (Cont(Σ) ≤ 3nH_n lists exist) and Lemma 4.2 (primary executions ≤ Cont(Σ))",
            setup: "`none` rows: certified low-contention search vs the bound. ObliDo rows: traced primary executions vs the exact Cont(Σ) of the same list (the inequality is asserted).",
            notes: "Paper: primary executions never exceed Cont(Σ); low-contention lists beat the worst case by ~n/log n.",
            trace: true,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![
                    g(&[ALGO_NONE], &["unit"], &[(2, 2), (3, 3), (4, 4), (5, 5), (6, 6), (7, 7)], &[1], 1),
                    g(
                        &["oblido-searched", "oblido", "oblido-worst"],
                        &["stage"],
                        &[(5, 5), (6, 6), (7, 7)],
                        &[2],
                        1,
                    ),
                ]
            },
            smoke: || {
                vec![
                    g(&[ALGO_NONE], &["unit"], &[(2, 2), (3, 3), (4, 4)], &[1], 1),
                    g(
                        &["oblido-searched", "oblido", "oblido-worst"],
                        &["stage"],
                        &[(4, 4), (5, 5)],
                        &[2],
                        1,
                    ),
                ]
            },
            derive: Some(d_e04),
        },
        Experiment {
            id: "e05",
            title: "Theorem 4.4 / Corollary 4.5 ((d)-contention of random schedule lists)",
            setup: "Estimated (exact for n ≤ 8) (d)-Cont(Σ) of a random list of p schedules over [t] vs n·ln n + 8pd·ln(e+n/d), across d. Pure combinatorics — no simulation.",
            notes: "Paper: the threshold holds for every d simultaneously w.h.p. — all ratios stay below 1, with the saturation cap n·p taking over once d ≳ n.",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![
                    g(&[ALGO_NONE], &["unit"], &[(8, 8)], &[1, 4], 1),
                    g(&[ALGO_NONE], &["unit"], &[(8, 64), (16, 64)], &[1, 4, 16, 64], 1),
                    g(&[ALGO_NONE], &["unit"], &[(16, 256), (32, 256)], &[1, 4, 16, 64, 256], 1),
                ]
            },
            smoke: || vec![g(&[ALGO_NONE], &["unit"], &[(4, 8)], &[1, 4], 1)],
            derive: Some(d_e05),
        },
        Experiment {
            id: "e06",
            title: "Theorems 5.4/5.5 (DA(q) delay-sensitive work)",
            setup: "DA(3) under the stage-aligned d-adversary vs t·p^ε + p·min{t,d}·⌈t/d⌉^ε, with ε = log_q(Cont(Σ)/q) from the certified schedule list.",
            notes: "Paper: W/bound stays in a constant band; W/(p·t) is ≪ 1 while d = o(t) (subquadratic regime).",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![
                    g(&["da:3"], &["stage"], &[(243, 243)], &[1, 3, 9, 27, 81, 243], 1),
                    g(&["da:3"], &["stage"], &[(27, 729)], &[1, 3, 9, 27, 81, 243, 729], 1),
                    g(
                        &["da:3"],
                        &["stage"],
                        &[(9, 6561)],
                        &[1, 3, 9, 27, 81, 243, 729, 2187, 6561],
                        1,
                    ),
                ]
            },
            smoke: || vec![g(&["da:3"], &["stage"], &[(9, 27)], &[1, 3, 9, 27], 1)],
            derive: Some(d_e06),
        },
        Experiment {
            id: "e07",
            title: "Theorem 5.6 (DA message complexity M = O(p·W))",
            setup: "M vs p·W across d and q; m_over_pw is bounded by 1 by construction — the table shows how far below the bound DA actually stays.",
            notes: "Paper: M = O(p·W) — every ratio is < 1, and only node-retiring steps broadcast.",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![g(
                    &["da:2", "da:3", "da:4"],
                    &["stage"],
                    &[(64, 256)],
                    &[1, 4, 16, 64, 256],
                    1,
                )]
            },
            smoke: || vec![g(&["da:2", "da:3"], &["stage"], &[(8, 32)], &[1, 4], 1)],
            derive: Some(|cell, m| {
                msgs_over_p_work(cell, m);
            }),
        },
        Experiment {
            id: "e08",
            title: "Theorem 6.2 / Corollary 6.4 (PaRan expected work and messages)",
            setup: "Mean over seeds under the stage-aligned d-adversary vs t·log n + p·min{t,d}·log(2+t/d).",
            notes: "Paper: E[W]/bound sits in a constant band across the sweep; messages stay within p×work.",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![
                    g(&["paran1", "paran2"], &["stage"], &[(128, 128)], &[1, 4, 16, 64], 20),
                    g(
                        &["paran1", "paran2"],
                        &["stage"],
                        &[(32, 1024)],
                        &[1, 4, 16, 64, 256, 1024],
                        20,
                    ),
                ]
            },
            smoke: || {
                vec![g(&["paran1", "paran2"], &["stage"], &[(8, 8), (4, 32)], &[1, 4], 3)]
            },
            derive: Some(d_pa_bound),
        },
        Experiment {
            id: "e09",
            title: "Theorem 6.3 / Corollary 6.5 (PaDet deterministic work)",
            setup: "PaDet (Cor-4.5-style random list) vs the bound, with PaRan1 seed-means alongside.",
            notes: "Paper: the deterministic algorithm tracks the randomized one (ratio_bound ≈ constant), confirming that a fixed good list derandomizes the schedule family.",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![
                    g(&["padet"], &["stage"], &[(128, 128)], &[1, 4, 16, 64], 3),
                    g(&["padet"], &["stage"], &[(32, 1024)], &[1, 4, 16, 64, 256, 1024], 3),
                    g(&["paran1"], &["stage"], &[(128, 128)], &[1, 4, 16, 64], 20),
                    g(&["paran1"], &["stage"], &[(32, 1024)], &[1, 4, 16, 64, 256, 1024], 20),
                ]
            },
            smoke: || {
                vec![
                    g(&["padet"], &["stage"], &[(8, 8)], &[1, 4], 2),
                    g(&["paran1"], &["stage"], &[(8, 8)], &[1, 4], 3),
                ]
            },
            derive: Some(d_pa_bound),
        },
        Experiment {
            id: "e10",
            title: "Lemma 6.1 (PaDet work ≤ (d)-Cont(Σ))",
            setup: "Measured work under the stage-aligned d-adversary vs the (d)-contention of the same list; exact (n ≤ 8) rows assert the inequality.",
            notes: "Paper: Lemma 6.1 is the bridge from executions to combinatorics — the exact rows are a hard pass/fail; sampled estimates are a lower bound on the true max, so ratios slightly above 1 remain consistent.",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![
                    g(&["padet"], &["stage"], &[(8, 8)], &[1, 2, 4, 8], 1),
                    g(&["padet"], &["stage"], &[(64, 64)], &[1, 4, 16, 64], 1),
                ]
            },
            smoke: || vec![g(&["padet"], &["stage"], &[(8, 8)], &[1, 2, 4, 8], 1)],
            derive: Some(d_e10),
        },
        Experiment {
            id: "e11",
            title: "Headline crossover (subquadratic iff d = o(t))",
            setup: "Every algorithm on one instance across d — who wins where, and the crossover into the quadratic wall at d ≈ t.",
            notes: "Paper: the cooperative algorithms are subquadratic while d ≪ t; the PA family beats DA for moderate d (logarithmic rather than polynomial overhead), and everything converges to p·t at d ≈ t.",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![g(ROSTER, &["stage"], &[(256, 256)], &[1, 4, 16, 64, 128, 256], 1)]
            },
            // The smoke grid doubles as the CI matrix check: the full
            // roster against every benign adversary family.
            smoke: || {
                vec![g(
                    ROSTER,
                    &["stage", "fixed", "random", "bursty", "unit"],
                    &[(8, 8)],
                    &[1, 4, 8],
                    1,
                )]
            },
            derive: Some(ratio_quadratic),
        },
        Experiment {
            id: "e12",
            title: "Fault tolerance (§1.2): any crash pattern, ≥ 1 survivor",
            setup: "Random delays ≤ d with staggered crashes of 0%, 50%, and 100% (capped at p−1) of the processors.",
            notes: "Paper: correctness under any crash pattern with one survivor; heavy crashes can *reduce* charged work (dead processors stop being charged) while the survivors slowly finish everything — time stretches, work does not explode.",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![g(
                    ROSTER,
                    &["crash:0", "crash:50", "crash:100"],
                    &[(32, 256)],
                    &[8],
                    1,
                )]
            },
            smoke: || {
                vec![g(
                    ROSTER,
                    &["crash:0", "crash:50", "crash:100"],
                    &[(8, 32)],
                    &[4],
                    1,
                )]
            },
            derive: Some(ratio_quadratic),
        },
        Experiment {
            id: "e13",
            title: "Ablation: DA branching factor q (Theorem 5.4's ε/q trade)",
            setup: "Certified schedule lists per q; work under stage-aligned delays; ε = log_q(Cont(Σ)/q).",
            notes: "Reading: ε decreases only slowly with q (the paper notes the required q is of order 2^(log(1/ε)/ε)), so small q already sit near the same ε; work differences at small d come from tree-shape constants, and larger q consistently lowers the message bill.",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![g(
                    &["da:2", "da:3", "da:4", "da:5", "da:6"],
                    &["stage"],
                    &[(64, 256)],
                    &[1, 16, 64],
                    1,
                )]
            },
            smoke: || {
                vec![g(&["da:2", "da:3", "da:4", "da:5", "da:6"], &["stage"], &[(8, 16)], &[1, 4], 1)]
            },
            derive: Some(d_e13),
        },
        Experiment {
            id: "e14",
            title: "Extension (§7): gossip fanout vs the work/message trade-off",
            setup: "PaGossip multicasts each completion to `fanout` random peers; the fanout sweep maps the Pareto frontier between SoloAll (no messages) and PaRan1 (full broadcast).",
            notes: "Reading: messages grow linearly with fanout while work falls steeply then flattens — a logarithmic fanout already buys most of the broadcast's work savings at a tiny fraction of its message cost.",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![g(
                    &[
                        "soloall", "gossip:1", "gossip:2", "gossip:4", "gossip:8", "gossip:16",
                        "gossip:32", "paran1",
                    ],
                    &["stage"],
                    &[(64, 256)],
                    &[16],
                    10,
                )]
            },
            smoke: || {
                vec![g(
                    &["soloall", "gossip:1", "gossip:4", "paran1"],
                    &["stage"],
                    &[(8, 32)],
                    &[4],
                    3,
                )]
            },
            derive: Some(d_e14),
        },
        Experiment {
            id: "e15",
            title: "Ablation (§7 open problem): structured vs random schedule lists",
            setup: "p = t prime (affine maps apply without padding); estimated (d)-Cont and measured PaDet work per list family.",
            notes: "Reading: rotations' worst-case contention is near-maximal yet their measured work under benign delays is fine — contention is a worst-case guarantee; affine lists track random lists on both counts with two words of storage per schedule.",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![g(
                    &["padet-rot", "padet-affine", "padet"],
                    &["stage"],
                    &[(67, 67)],
                    &[1, 8, 32],
                    1,
                )]
            },
            smoke: || {
                vec![g(&["padet-rot", "padet-affine", "padet"], &["stage"], &[(7, 7)], &[1, 4], 1)]
            },
            derive: Some(d_e15),
        },
        Experiment {
            id: "e16",
            title: "Adversary structure (§2.2 extension): bursty duty cycles × crash stagger × stragglers",
            setup: "The adversaries' own knobs as grid axes: bursty phase period × d (square-wave congestion), crash stagger patterns (even | burst | front) at fixed pct, and persistent stragglers (pct × slowdown). Same roster subset on one shape, so rows differ only in adversary structure.",
            notes: "Reading: the delay *ceiling* d undersells the adversary space — short bursty periods cost little while long congested phases approach the fixed-d wall; front-loaded crashes hurt more than evenly staggered ones (survivors run the whole execution short-handed); stragglers stretch σ but work stays bounded because slowed processors stop being charged between beats.",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![
                    g(
                        &["paran1", "padet"],
                        &["unit", "bursty:1", "bursty:8", "bursty:64"],
                        &[(32, 256)],
                        &[4, 16],
                        3,
                    ),
                    g(
                        &["paran1", "padet"],
                        &["crash:25@even", "crash:25@burst", "crash:25@front", "crash:50@burst"],
                        &[(32, 256)],
                        &[8],
                        3,
                    ),
                    g(
                        &["paran1", "padet"],
                        &["straggler:25:2", "straggler:25:4", "straggler:50:4"],
                        &[(32, 256)],
                        &[8],
                        3,
                    ),
                ]
            },
            smoke: || {
                vec![
                    g(&["paran1"], &["bursty:2", "bursty:8"], &[(8, 32)], &[4], 2),
                    g(
                        &["paran1"],
                        &["crash:50@even", "crash:50@burst", "crash:50@front"],
                        &[(8, 32)],
                        &[4],
                        2,
                    ),
                    g(&["paran1"], &["straggler:25:4"], &[(8, 32)], &[4], 2),
                ]
            },
            derive: Some(d_e16),
        },
        Experiment {
            id: "e17",
            title: "Substrate check (§1.2): simulation vs real threads, same state machines",
            setup: "Every cell runs twice — `backend=sim` (deterministic tick simulation) and `backend=threads` (doall-runtime: real OS threads, a delaying channel router for the d-adversary, step budgets for crashes) — with identical derived seeds, so the algorithm's randomness matches across substrates. wall_clock_ms / crashed_drained / max_crashed_backlog are measured on threads and pinned to 0 under sim.",
            notes: "Reading: sim rows are byte-stable (they gate CI at tolerance 0); threads rows share the sim rows' qualitative shape — W ≥ t holds, crashes fire, work grows with d — while the absolute counts wobble with OS scheduling. That agreement is the evidence the simulator measures the algorithms, not simulator artifacts.",
            trace: false,
            max_ticks: DEFAULT_MAX_TICKS,
            grids: || {
                vec![g(
                    &["da:3", "paran1"],
                    &["unit", "crash:50", "straggler:25:4"],
                    &[(8, 64)],
                    &[2, 8],
                    5,
                )
                .with_backends(&[Backend::Sim, Backend::Threads])]
            },
            smoke: || {
                vec![g(&["paran1"], &["unit", "crash:50"], &[(4, 16)], &[2], 2)
                    .with_backends(&[Backend::Sim, Backend::Threads])]
            },
            derive: Some(d_e17),
        },
    ]
}

/// Looks up one experiment by id.
#[must_use]
pub fn by_id(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}

/// Runs one experiment under `flags` and returns its records.
///
/// # Errors
///
/// Returns a rendered message for sweep failures (bad keys, invalid
/// shapes, tick-cutoff hits).
pub fn run_experiment(exp: &Experiment, flags: &Flags) -> Result<Vec<Record>, String> {
    let grids = if flags.smoke {
        (exp.smoke)()
    } else {
        (exp.grids)()
    };
    let mut cells = Vec::new();
    for grid in &grids {
        grid.validate().map_err(|e| format!("{}: {e}", exp.id))?;
        cells.extend(grid.cells());
    }
    let cfg = SweepConfig {
        threads: flags.threads.unwrap_or_else(default_threads),
        max_ticks: flags.max_ticks.unwrap_or(exp.max_ticks),
        trace: exp.trace,
        shard_size: flags.shard_size,
    };
    let measurements = run_cells(&cells, &cfg).map_err(|e| format!("{}: {e}", exp.id))?;
    let mut records = Vec::with_capacity(measurements.len());
    for m in measurements {
        let mut metrics = m.metrics();
        if let Some(derive) = exp.derive {
            derive(&m.cell, &mut metrics);
        }
        records.push(Record {
            experiment: exp.id.to_string(),
            cell: m.cell,
            metrics,
        });
    }
    Ok(records)
}

/// Runs the suite and returns whether it is clean: `false` means a
/// `--compare` baseline comparison found drift (the caller exits 1).
fn run_suite(only: Option<&str>, args: &[String]) -> Result<bool, String> {
    let flags = parse_flags(args)?;
    let exps: Vec<Experiment> = match only {
        Some(id) => vec![by_id(id).ok_or_else(|| format!("unknown experiment `{id}`"))?],
        None => {
            let all = registry();
            match &flags.only {
                Some(ids) => {
                    for id in ids {
                        if !all.iter().any(|e| e.id == id.as_str()) {
                            return Err(format!("unknown experiment `{id}` in --only"));
                        }
                    }
                    all.into_iter()
                        .filter(|e| ids.iter().any(|id| id == e.id))
                        .collect()
                }
                None => all,
            }
        }
    };
    let human = flags.format == Format::Table;
    let mut records = Vec::new();
    for exp in &exps {
        let recs = run_experiment(exp, &flags)?;
        if human {
            crate::section(exp.id, exp.title, exp.setup);
            ResultSet {
                mode: String::new(),
                records: recs.clone(),
            }
            .print_tables();
            println!("{}", exp.notes);
        }
        records.extend(recs);
    }
    let mode = if flags.smoke { "smoke" } else { "full" };
    let results = ResultSet {
        mode: mode.to_string(),
        records,
    };
    if !human {
        emit(&results, &flags)?;
    }
    if let Some(path) = &flags.compare {
        let baseline = crate::compare::load_result_set(path).map_err(|e| e.to_string())?;
        let current = crate::compare::BaselineSet::of(&results);
        let comparison = crate::compare::compare(&baseline, &current, flags.tolerance);
        // The diff goes to stderr: stdout may already carry the results.
        eprint!("{}", comparison.render_text());
        return Ok(comparison.is_clean());
    }
    Ok(true)
}

fn main_with(only: Option<&str>) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_suite(only, &args) {
        Ok(true) => {}
        // Baseline drift: exit 1, diff-style (2 is reserved for errors).
        Ok(false) => std::process::exit(1),
        Err(e) if e == "help" => {
            println!("{FLAGS_USAGE}");
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// Entry point for a single experiment binary: parses the shared flags
/// from `std::env::args` and runs experiment `id`.
pub fn experiment_main(id: &str) {
    main_with(Some(id));
}

/// Entry point for the `all_experiments` binary: runs the whole registry
/// (or the `--only` subset) in-process and emits one merged result set.
pub fn suite_main() {
    main_with(None);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_seventeen_unique_ids() {
        let reg = registry();
        assert_eq!(reg.len(), 17);
        let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 17);
        assert!(by_id("e01").is_some());
        assert!(by_id("e17").is_some());
        assert!(by_id("e99").is_none());
    }

    #[test]
    fn every_grid_full_and_smoke_validates() {
        for exp in registry() {
            for grid in (exp.grids)().iter().chain((exp.smoke)().iter()) {
                grid.validate().unwrap_or_else(|e| {
                    panic!("{}: invalid grid `{grid}`: {e}", exp.id);
                });
            }
            assert!(
                !(exp.smoke)().is_empty(),
                "{} needs a smoke grid for CI",
                exp.id
            );
        }
    }

    #[test]
    fn smoke_suite_covers_the_full_algorithm_and_adversary_matrix() {
        let mut algos = std::collections::BTreeSet::new();
        let mut advs = std::collections::BTreeSet::new();
        for exp in registry() {
            for grid in (exp.smoke)() {
                algos.extend(grid.algos.clone());
                advs.extend(grid.adversaries.iter().map(ToString::to_string));
            }
        }
        for key in ROSTER {
            assert!(algos.contains(*key), "roster algo {key} missing from smoke");
        }
        for key in [
            "oblido",
            "oblido-searched",
            "oblido-worst",
            "padet-rot",
            "padet-affine",
        ] {
            assert!(algos.contains(key), "algo {key} missing from smoke");
        }
        assert!(algos.iter().any(|a| a.starts_with("gossip:")));
        for key in ["unit", "fixed", "random", "stage", "bursty", "lb", "lbrand"] {
            assert!(advs.contains(key), "adversary {key} missing from smoke");
        }
        assert!(advs.iter().any(|a| a.starts_with("crash:")));
        // The parameterized families: every knob axis is exercised by CI.
        assert!(
            advs.iter().any(|a| a.starts_with("bursty:")),
            "no bursty period knob in smoke: {advs:?}"
        );
        for stagger in ["@burst", "@front"] {
            assert!(
                advs.iter()
                    .any(|a| a.starts_with("crash:") && a.ends_with(stagger)),
                "no crash {stagger} stagger in smoke: {advs:?}"
            );
        }
        assert!(
            advs.iter().any(|a| a.starts_with("straggler:")),
            "no straggler cell in smoke: {advs:?}"
        );
    }

    #[test]
    fn smoke_experiment_produces_expected_metrics() {
        let flags = Flags {
            smoke: true,
            threads: Some(2),
            ..Flags::default()
        };
        let exp = by_id("e01").unwrap();
        let records = run_experiment(&exp, &flags).unwrap();
        // roster × 1 shape × 2 ds
        assert_eq!(records.len(), ROSTER.len() * 2);
        for r in &records {
            assert!(r.metrics.contains_key("mean_work"));
            assert!(r.metrics.contains_key("median_work"));
            assert!(r.metrics.contains_key("max_messages"));
            // The quadratic-wall band is Θ(1), but the constant at tiny
            // smoke shapes can sit above 1 — only sanity-check the order.
            let ratio = r.metrics["ratio_quadratic"];
            assert!(ratio > 0.0 && ratio < 10.0, "{}: {ratio}", r.cell.algo);
        }
    }

    #[test]
    fn suite_compare_is_clean_against_own_output_and_flags_drift() {
        let args = |s: &str| -> Vec<String> { s.split_whitespace().map(String::from).collect() };
        let base =
            std::env::temp_dir().join(format!("doall_suite_compare_{}.json", std::process::id()));
        let base = base.to_str().unwrap().to_string();
        // e05 is pure combinatorics (`none` cells) — cheap to run twice.
        let clean = run_suite(
            None,
            &args(&format!("--smoke --only e05 --json --out {base}")),
        )
        .unwrap();
        assert!(clean, "no --compare given");
        let clean = run_suite(
            None,
            &args(&format!(
                "--smoke --only e05 --json --out {base}.2 --compare {base}"
            )),
        )
        .unwrap();
        assert!(clean, "a deterministic rerun must match its own baseline");
        // Doctor one value in the baseline: the rerun must flag drift.
        let doctored =
            std::fs::read_to_string(&base)
                .unwrap()
                .replacen("\"dcont\": ", "\"dcont\": 9", 1);
        std::fs::write(&base, doctored).unwrap();
        let clean = run_suite(
            None,
            &args(&format!(
                "--smoke --only e05 --json --out {base}.2 --compare {base}"
            )),
        )
        .unwrap();
        assert!(
            !clean,
            "a doctored baseline value must be reported as drift"
        );
        let _ = std::fs::remove_file(&base);
        let _ = std::fs::remove_file(format!("{base}.2"));
    }

    #[test]
    fn lemma_experiments_assert_their_inequalities_in_smoke() {
        let flags = Flags {
            smoke: true,
            threads: Some(2),
            ..Flags::default()
        };
        for id in ["e04", "e10"] {
            let exp = by_id(id).unwrap();
            // Would panic on a lemma violation; completing is the pass.
            let records = run_experiment(&exp, &flags).unwrap();
            assert!(!records.is_empty());
        }
    }
}
