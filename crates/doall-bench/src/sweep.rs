//! The parallel sweep engine: executes the cells of one or more grids
//! across a scoped thread pool, with results slotted by position so the
//! output is bit-identical regardless of thread count **and** shard size.
//!
//! The unit of scheduled work is a *(cell, replicate-chunk)* shard, not a
//! whole cell: a shared atomic cursor walks a flattened shard list, each
//! worker runs its chunk of a cell's seeds via [`Simulation::run_batch`]
//! (or the traced equivalent), and the per-shard [`RunReport`]s are merged
//! back **in replicate order** before [`summarize`] / profile averaging.
//! Because every replicate's seed derives from the cell's own parameters
//! and the replicate's absolute index (see [`crate::grid::Cell::run_seed`]),
//! neither the claim order, the worker count, nor the shard boundaries can
//! influence a single number in the results — a single huge cell (e.g.
//! `p = 4096, seeds = 32`) now spreads across every worker instead of
//! pinning one thread.
//!
//! [`RunReport`]: doall_core::RunReport

use crate::grid::{
    build_adversary, build_algorithm, AdversarySpec, Backend, Cell, GridError, ALGO_NONE,
};
use doall_core::Instance;
use doall_runtime::{Runtime, RuntimeConfig};
use doall_sim::analysis::{execution_profile, summarize, BatchSummary, ProfilePartial};
use doall_sim::{Simulation, Trace, TraceMode, DEFAULT_MAX_TICKS};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Ceiling on trace capacity when an experiment asks for execution
/// profiles. The per-run capacity is sized from the cell's shape and the
/// tick budget (see [`trace_capacity`]) and clamped to this, and the
/// buffer itself is recycled across a worker's replicates rather than
/// reallocated per run.
const TRACE_CAPACITY: usize = 4_000_000;

/// Pace of a full-speed processor on the `threads` backend. Real threads
/// need *some* pacing so runs genuinely interleave (a free-running worker
/// can sweep every task before its peers are even scheduled), but the
/// quantum is small enough that a smoke cell completes in milliseconds.
const THREADS_STEP_INTERVAL: Duration = Duration::from_micros(20);

/// Wall-clock value of one delay unit `d` on the `threads` backend: a
/// cell's `d` becomes a `d × quantum` cap on the router's random message
/// delays — the same knob the simulator's d-adversary turns, expressed
/// in microseconds instead of ticks.
const THREADS_DELAY_QUANTUM: Duration = Duration::from_micros(20);

/// Wall-clock budget per `threads` replicate — the analogue of the tick
/// cutoff. Generous: hitting it is an error, not a data point.
const THREADS_TIMEOUT: Duration = Duration::from_secs(30);

/// Trace capacity for a `(p, max_ticks)` run: at most one step event and
/// one send event per processor per tick, plus the completion event,
/// clamped to [`TRACE_CAPACITY`].
fn trace_capacity(p: usize, max_ticks: u64) -> usize {
    let per_tick = (p as u64).saturating_mul(2);
    let events = max_ticks.saturating_mul(per_tick).saturating_add(1);
    usize::try_from(events)
        .unwrap_or(TRACE_CAPACITY)
        .min(TRACE_CAPACITY)
}

/// How to execute a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Worker threads (≥ 1). Affects wall-clock only, never results.
    pub threads: usize,
    /// Tick cutoff per run (see [`doall_sim::DEFAULT_MAX_TICKS`]).
    pub max_ticks: u64,
    /// Collect execution traces and report primary/secondary execution
    /// counts (Section 4 analysis) for every simulated cell.
    pub trace: bool,
    /// Replicates per shard (`None` = auto). Affects wall-clock only,
    /// never results: shard boundaries are invisible in the output.
    ///
    /// Auto picks `ceil(seeds / threads)` when there are fewer cells than
    /// workers (so one big cell spreads over every thread) and whole-cell
    /// shards otherwise (cross-cell parallelism already saturates the
    /// pool, and coarser shards mean less claim traffic).
    pub shard_size: Option<u64>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            threads: default_threads(),
            max_ticks: DEFAULT_MAX_TICKS,
            trace: false,
            shard_size: None,
        }
    }
}

/// The default worker count: the machine's available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// An error from executing a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// A cell referenced an unknown or unbuildable key.
    Bad(GridError),
    /// A run hit the tick cutoff without completing.
    Incomplete {
        /// The offending cell, rendered for the error message.
        cell: String,
        /// The replicate index (`0..seeds`) that failed.
        replicate: u64,
        /// The actual derived seed of that replicate
        /// ([`Cell::run_seed`]`(replicate)`) — what `--seed`-style
        /// reproduction needs, as opposed to the position above.
        seed: u64,
    },
    /// The instance shape was invalid.
    Instance(String),
    /// Trace mode was requested for a cell on the `threads` backend —
    /// execution traces are a simulator feature (real threads have no
    /// tick-accurate event stream to record).
    TraceThreads {
        /// The offending cell, rendered for the error message.
        cell: String,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Bad(e) => write!(f, "{e}"),
            SweepError::Incomplete {
                cell,
                replicate,
                seed,
            } => write!(
                f,
                "run did not complete within the tick budget (cell {cell}, replicate \
                 {replicate}, seed {seed}); raise --max-ticks"
            ),
            SweepError::Instance(msg) => write!(f, "bad instance: {msg}"),
            SweepError::TraceThreads { cell } => write!(
                f,
                "execution traces are sim-only, but cell {cell} runs on the threads \
                 backend; drop --trace or the threads backend"
            ),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<GridError> for SweepError {
    fn from(e: GridError) -> Self {
        SweepError::Bad(e)
    }
}

/// The measured side of one cell: batch aggregates plus (optionally)
/// trace-derived execution-profile means. `summary` is `None` for
/// derive-only cells (`algo == "none"`).
#[derive(Debug, Clone, PartialEq)]
pub struct CellMeasurement {
    /// The cell that was run.
    pub cell: Cell,
    /// Work/message aggregates over the cell's replicates.
    pub summary: Option<BatchSummary>,
    /// Mean primary executions per run (trace mode only).
    pub mean_primary: Option<f64>,
    /// Mean secondary (redundant) executions per run (trace mode only).
    pub mean_secondary: Option<f64>,
    /// Scheduled crash count (`crash:<pct>` adversaries only) — the
    /// *actual* count after rounding and the `p − 1` survivor cap, so
    /// baselines capture how many crashes a cell really exercised.
    pub crash_count: Option<f64>,
    /// Mean number of scheduled crashes that fired before σ, per
    /// replicate (`crash:<pct>` adversaries only).
    pub mean_crashes_fired: Option<f64>,
    /// Number of persistently slow processors (`straggler:<pct>:<slowdown>`
    /// adversaries only) — the actual count after rounding and the
    /// `p − 1` full-speed cap, mirroring `crash_count`.
    pub straggler_count: Option<f64>,
    /// Mean wall-clock per replicate, in milliseconds. Backend-tagged
    /// cells only: measured on `threads`, always `0` under `sim` (the
    /// simulator's time is ticks, not wall-clock). `None` on legacy
    /// (axis-omitted) cells, so their schema is untouched.
    pub wall_clock_ms: Option<f64>,
    /// Mean messages drained-and-dropped from crashed processors' inboxes
    /// per replicate ([`doall_runtime::RuntimeStats::crashed_drained`]).
    /// Backend-tagged cells only; always `0` under `sim`.
    pub crashed_drained: Option<f64>,
    /// Largest single crashed-inbox drain batch observed across the
    /// cell's replicates
    /// ([`doall_runtime::RuntimeStats::max_crashed_backlog`]).
    /// Backend-tagged cells only; always `0` under `sim`.
    pub max_crashed_backlog: Option<f64>,
}

impl CellMeasurement {
    /// Renders the measured aggregates as the canonical metric map — the
    /// single definition of the measured half of the output schema
    /// (`mean/median/max work` & `messages`, `completed`, and the traced
    /// execution-profile means where present). Every producer of
    /// [`crate::output::Record`]s starts from this map so CLI sweeps,
    /// experiment runs, and tests cannot drift apart.
    #[must_use]
    pub fn metrics(&self) -> std::collections::BTreeMap<String, f64> {
        let mut metrics = std::collections::BTreeMap::new();
        if let Some(s) = &self.summary {
            metrics.insert("mean_work".to_string(), s.mean_work);
            metrics.insert("median_work".to_string(), s.median_work);
            metrics.insert("max_work".to_string(), s.max_work as f64);
            metrics.insert("mean_messages".to_string(), s.mean_messages);
            metrics.insert("median_messages".to_string(), s.median_messages);
            metrics.insert("max_messages".to_string(), s.max_messages as f64);
            metrics.insert("completed".to_string(), s.completed as f64);
        }
        if let Some(primary) = self.mean_primary {
            metrics.insert("mean_primary".to_string(), primary);
        }
        if let Some(secondary) = self.mean_secondary {
            metrics.insert("mean_secondary".to_string(), secondary);
        }
        if let Some(count) = self.crash_count {
            metrics.insert("crash_count".to_string(), count);
        }
        if let Some(fired) = self.mean_crashes_fired {
            metrics.insert("mean_crashes_fired".to_string(), fired);
        }
        if let Some(count) = self.straggler_count {
            metrics.insert("straggler_count".to_string(), count);
        }
        if let Some(ms) = self.wall_clock_ms {
            metrics.insert("wall_clock_ms".to_string(), ms);
        }
        if let Some(drained) = self.crashed_drained {
            metrics.insert("crashed_drained".to_string(), drained);
        }
        if let Some(backlog) = self.max_crashed_backlog {
            metrics.insert("max_crashed_backlog".to_string(), backlog);
        }
        metrics
    }
}

/// What the engine did to run a sweep — shard and worker accounting for
/// tests and the harness benches. None of it ever reaches the output
/// schema (results must stay byte-identical across `--threads` and
/// `--shard-size`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Shards scheduled (simulated cells only; `none` cells run nothing).
    pub shards: usize,
    /// Workers spawned: `min(threads, shards)`, at least 1.
    pub workers: usize,
    /// Workers that claimed at least one shard.
    pub workers_engaged: usize,
}

/// One unit of scheduled work: replicates `start .. start + len` of cell
/// `cells[cell]`, writing into merge slot `slot` of that cell.
#[derive(Debug, Clone, Copy)]
struct Shard {
    cell: usize,
    slot: usize,
    start: u64,
    len: u64,
}

/// What a shard produced: its chunk's reports (in replicate order), in
/// trace mode the mergeable profile partial, and on the `threads`
/// backend the per-replicate measured-side probes.
struct ShardOutput {
    reports: Vec<doall_core::RunReport>,
    profile: Option<ProfilePartial>,
    probes: Vec<ThreadsProbe>,
}

/// The measured-side numbers one `threads` replicate carries back out of
/// its shard — everything the simulator cannot produce (wall-clock,
/// engine accounting) plus the observed crash firings.
#[derive(Debug, Clone, Copy)]
struct ThreadsProbe {
    /// Elapsed wall-clock of the completed run, milliseconds.
    wall_clock_ms: f64,
    /// Messages drained-and-dropped from crashed inboxes.
    crashed_drained: u64,
    /// Largest single crashed-inbox drain batch.
    max_crashed_backlog: u64,
    /// Scheduled crashes whose step budget actually fired (a run can
    /// complete before a late budget is reached).
    crashes_fired: u64,
}

/// The `algo vs adversary p= t= d=` rendering error messages use for a
/// cell.
fn cell_label(cell: &Cell) -> String {
    format!(
        "{} vs {} p={} t={} d={}",
        cell.algo, cell.adversary, cell.p, cell.t, cell.d
    )
}

/// The shard size the engine actually uses for a sweep of `cell_count`
/// *simulated* cells (derive-only `none` cells schedule no work and must
/// not be counted) with `seeds` replicates each: the explicit
/// `shard_size` clamped to `[1, seeds]`, or the auto rule (see
/// [`SweepConfig::shard_size`]).
#[must_use]
pub fn effective_shard_size(cell_count: usize, seeds: u64, cfg: &SweepConfig) -> u64 {
    let threads = cfg.threads.max(1);
    match cfg.shard_size {
        Some(size) => size.clamp(1, seeds.max(1)),
        None if cell_count < threads => seeds.div_ceil(threads as u64).max(1),
        None => seeds,
    }
}

/// Splits every simulated cell into replicate-chunk shards.
fn plan_shards(cells: &[Cell], cfg: &SweepConfig) -> Vec<Shard> {
    // The auto rule sizes shards by the cells that actually schedule
    // work: derive-only `none` cells run nothing, so counting them would
    // keep whole-cell shards (and one pinned thread) on grids that mix
    // combinatorial baseline rows with a few big simulated cells.
    let simulated = cells.iter().filter(|c| c.algo != ALGO_NONE).count();
    let mut shards = Vec::new();
    for (cell_idx, cell) in cells.iter().enumerate() {
        if cell.algo == ALGO_NONE {
            continue;
        }
        let size = effective_shard_size(simulated, cell.seeds, cfg);
        let mut start = 0u64;
        let mut slot = 0usize;
        while start < cell.seeds {
            let len = size.min(cell.seeds - start);
            shards.push(Shard {
                cell: cell_idx,
                slot,
                start,
                len,
            });
            start += len;
            slot += 1;
        }
    }
    shards
}

/// Runs every cell, in parallel across `cfg.threads` workers.
///
/// Results come back in cell order, with each cell's replicates merged in
/// replicate order — output is byte-identical across any `threads` ×
/// `shard_size` combination.
///
/// # Errors
///
/// Returns the [`SweepError`] of the lowest-indexed failing cell (bad
/// key, invalid instance, or a run that hit the tick cutoff) — *which*
/// error surfaces does not depend on thread scheduling.
pub fn run_cells(cells: &[Cell], cfg: &SweepConfig) -> Result<Vec<CellMeasurement>, SweepError> {
    run_cells_with_stats(cells, cfg).map(|(measurements, _)| measurements)
}

/// [`run_cells`] plus the engine's shard/worker accounting — the probe
/// the determinism tests and harness benches use to assert that a single
/// huge cell really engages more than one worker.
///
/// # Errors
///
/// Same contract as [`run_cells`].
pub fn run_cells_with_stats(
    cells: &[Cell],
    cfg: &SweepConfig,
) -> Result<(Vec<CellMeasurement>, SweepStats), SweepError> {
    // Validate everything up front so workers only see well-formed cells.
    // `padet-affine` is the only key whose build can fail after key
    // validation (composite task count); probe it eagerly here so the
    // failure is a deterministic pre-spawn error rather than a worker
    // race. Other keys are infallible post-validation, and an
    // unconditional eager build would double the cost of searched
    // schedule lists.
    for cell in cells {
        crate::grid::validate_algo_key(&cell.algo)?;
        // Adversaries are structured specs — valid by construction.
        let instance =
            Instance::new(cell.p, cell.t).map_err(|e| SweepError::Instance(e.to_string()))?;
        if cell.algo == "padet-affine" {
            build_algorithm(&cell.algo, instance, cell.run_seed(0))?;
        }
        if cfg.trace && cell.algo != ALGO_NONE && cell.effective_backend() == Backend::Threads {
            return Err(SweepError::TraceThreads {
                cell: cell_label(cell),
            });
        }
    }

    let shards = plan_shards(cells, cfg);
    let slots_per_cell: Vec<usize> = {
        let mut counts = vec![0usize; cells.len()];
        for shard in &shards {
            counts[shard.cell] = counts[shard.cell].max(shard.slot + 1);
        }
        counts
    };
    let next = AtomicUsize::new(0);
    let engaged = AtomicUsize::new(0);
    type SlotGrid = Vec<Vec<Option<ShardOutput>>>;
    let slots: Mutex<SlotGrid> = Mutex::new(
        slots_per_cell
            .iter()
            .map(|&n| (0..n).map(|_| None).collect())
            .collect(),
    );
    // Errors keyed by (cell, slot): after the join, the lowest key wins,
    // so the surfaced error is the first failure in replicate order — not
    // whichever worker's failure happened to land first. The cursor
    // claims shards in order, so every shard below a claimed failing one
    // was itself claimed and runs to completion before its worker exits;
    // the minimum over collected errors is therefore scheduling-free.
    let errors: Mutex<BTreeMap<(usize, usize), SweepError>> = Mutex::new(BTreeMap::new());
    let workers = cfg.threads.max(1).min(shards.len().max(1));
    let worker = || {
        // One reusable trace buffer per worker (trace mode only):
        // cleared between replicates, never reallocated.
        let mut trace_buf: Option<Trace> = None;
        let mut claimed_any = false;
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= shards.len() {
                break;
            }
            if !claimed_any {
                claimed_any = true;
                engaged.fetch_add(1, Ordering::Relaxed);
            }
            let shard = shards[i];
            match run_shard(&cells[shard.cell], &shard, cfg, &mut trace_buf) {
                Ok(output) => {
                    slots.lock().expect("poisoned")[shard.cell][shard.slot] = Some(output);
                }
                Err(e) => {
                    errors
                        .lock()
                        .expect("poisoned")
                        .insert((shard.cell, shard.slot), e);
                    // Drain remaining work so every worker exits
                    // fast; in-flight shards still finish and
                    // record their own errors.
                    next.fetch_add(shards.len(), Ordering::Relaxed);
                    break;
                }
            }
        }
    };
    if workers == 1 {
        // A lone worker needs no pool: run the identical claim loop on
        // the caller thread (same shard walk, same slotting — results
        // can't differ) and skip the spawn/join round trip, which on
        // grids of tiny cells is a measurable slice of the wall-clock.
        worker();
    } else {
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(worker);
            }
        })
        .expect("sweep workers do not panic");
    }
    let stats = SweepStats {
        shards: shards.len(),
        workers,
        workers_engaged: engaged.load(Ordering::Relaxed),
    };
    if let Some((_, e)) = errors.into_inner().expect("poisoned").into_iter().next() {
        return Err(e);
    }
    let mut slot_grid = slots.into_inner().expect("poisoned").into_iter();
    let measurements = cells
        .iter()
        .map(|cell| {
            let cell_slots = slot_grid.next().expect("one slot row per cell");
            merge_cell(cell, cfg, cell_slots)
        })
        .collect();
    Ok((measurements, stats))
}

/// Runs one shard — replicates `start .. start + len` of `cell`,
/// sequentially, reusing `trace_buf` across replicates in trace mode.
fn run_shard(
    cell: &Cell,
    shard: &Shard,
    cfg: &SweepConfig,
    trace_buf: &mut Option<Trace>,
) -> Result<ShardOutput, SweepError> {
    if cell.effective_backend() == Backend::Threads {
        return run_threads_shard(cell, shard, cfg);
    }
    let instance =
        Instance::new(cell.p, cell.t).map_err(|e| SweepError::Instance(e.to_string()))?;
    let mut reports = Vec::with_capacity(shard.len as usize);
    let mut profile = cfg.trace.then(ProfilePartial::default);
    if let Some(partial) = profile.as_mut() {
        for k in shard.start..shard.start + shard.len {
            let seed = cell.run_seed(k);
            let algo = build_algorithm(&cell.algo, instance, seed).expect("validated above");
            let adversary =
                build_adversary(&cell.adversary, cell.p, cell.t, cell.d, seed, cfg.max_ticks);
            // Reuse the worker's buffer only when its capacity covers
            // this cell — a buffer first sized for a smaller shape would
            // truncate here, and `execution_profile` (rightly) rejects
            // truncated traces. An undersized buffer is dropped and a
            // correctly sized one allocated in its place.
            let needed = trace_capacity(cell.p, cfg.max_ticks);
            let mode = match trace_buf.take().filter(|buf| buf.capacity() >= needed) {
                Some(buf) => TraceMode::Recycled(buf),
                None => TraceMode::Buffered(needed),
            };
            let (report, trace) = Simulation::builder(instance)
                .procs(algo.spawn(instance))
                .adversary(adversary)
                .max_ticks(cfg.max_ticks)
                .trace(mode)
                .build()
                .run_traced();
            let trace = trace.expect("tracing enabled");
            partial.record(&execution_profile(&trace, cell.t));
            *trace_buf = Some(trace);
            reports.push(report);
        }
    } else {
        reports = Simulation::run_batch(
            instance,
            shard.len,
            cfg.max_ticks,
            |k, procs| {
                procs.extend(
                    build_algorithm(&cell.algo, instance, cell.run_seed(shard.start + k))
                        .expect("validated above")
                        .spawn(instance),
                );
            },
            |k| {
                build_adversary(
                    &cell.adversary,
                    cell.p,
                    cell.t,
                    cell.d,
                    cell.run_seed(shard.start + k),
                    cfg.max_ticks,
                )
            },
        );
    }
    if let Some(pos) = reports.iter().position(|r| !r.completed) {
        let replicate = shard.start + pos as u64;
        return Err(SweepError::Incomplete {
            cell: cell_label(cell),
            replicate,
            seed: cell.run_seed(replicate),
        });
    }
    Ok(ShardOutput {
        reports,
        profile,
        probes: Vec::new(),
    })
}

/// Runs one shard of a `threads`-backend cell: each replicate executes
/// the *same* algorithm state machines the simulator drives (same
/// derived seed, so the algorithm's randomness is identical across
/// backends) on real OS threads via [`doall_runtime::Runtime`]. The
/// cell's adversary maps onto the runtime's wall-clock knobs:
///
/// - `d` → random message delays capped at `d ×`
///   [`THREADS_DELAY_QUANTUM`] (every delay-only adversary measures as
///   this uniform-delay analogue);
/// - `crash:<pct>[@stagger]` → the simulator's own deterministic
///   [`crate::grid::crash_plan`] ticks, reused as per-processor step
///   budgets;
/// - `straggler:<pct>:<slowdown>` → a `slowdown ×` longer step pace for
///   the flagged processors.
fn run_threads_shard(
    cell: &Cell,
    shard: &Shard,
    cfg: &SweepConfig,
) -> Result<ShardOutput, SweepError> {
    let instance =
        Instance::new(cell.p, cell.t).map_err(|e| SweepError::Instance(e.to_string()))?;
    let crash_after_steps: Vec<Option<u64>> = match cell.adversary {
        AdversarySpec::Crash { pct, stagger } => {
            crate::grid::crash_plan(pct, stagger, cell.p, cell.t, cfg.max_ticks)
        }
        _ => Vec::new(),
    };
    let pace_overrides: Vec<Option<Duration>> = match cell.adversary {
        AdversarySpec::Straggler { pct, slowdown } => crate::grid::straggler_flags(pct, cell.p)
            .iter()
            .map(|&slow| {
                slow.then(|| {
                    THREADS_STEP_INTERVAL
                        .saturating_mul(u32::try_from(slowdown).unwrap_or(u32::MAX))
                })
            })
            .collect(),
        _ => vec![None; cell.p],
    };
    let mut reports = Vec::with_capacity(shard.len as usize);
    let mut probes = Vec::with_capacity(shard.len as usize);
    for k in shard.start..shard.start + shard.len {
        let seed = cell.run_seed(k);
        let algo = build_algorithm(&cell.algo, instance, seed).expect("validated above");
        let config = RuntimeConfig {
            max_delay: THREADS_DELAY_QUANTUM
                .saturating_mul(u32::try_from(cell.d).unwrap_or(u32::MAX)),
            seed,
            timeout: THREADS_TIMEOUT,
            crash_after_steps: crash_after_steps.clone(),
            step_interval: THREADS_STEP_INTERVAL,
        };
        let outcome = Runtime::builder(config)
            .pace_overrides(pace_overrides.clone())
            .run(instance, algo.spawn(instance))
            .expect("cell-derived runtime setup is valid");
        if !outcome.report.completed {
            return Err(SweepError::Incomplete {
                cell: cell_label(cell),
                replicate: k,
                seed,
            });
        }
        let sigma_us = outcome.report.sigma.expect("completed runs carry sigma");
        let crashes_fired = crash_after_steps
            .iter()
            .enumerate()
            .filter(|&(pid, budget)| {
                budget.is_some_and(|b| outcome.report.work_per_processor[pid] >= b)
            })
            .count() as u64;
        probes.push(ThreadsProbe {
            wall_clock_ms: sigma_us as f64 / 1_000.0,
            crashed_drained: outcome.stats.crashed_drained,
            max_crashed_backlog: outcome.stats.max_crashed_backlog,
            crashes_fired,
        });
        reports.push(outcome.report);
    }
    Ok(ShardOutput {
        reports,
        profile: None,
        probes,
    })
}

/// Merges a cell's shard outputs back, in replicate order, into the
/// measurement a sequential run would have produced.
fn merge_cell(cell: &Cell, cfg: &SweepConfig, shards: Vec<Option<ShardOutput>>) -> CellMeasurement {
    if cell.algo == ALGO_NONE {
        return CellMeasurement {
            cell: cell.clone(),
            summary: None,
            mean_primary: None,
            mean_secondary: None,
            crash_count: None,
            mean_crashes_fired: None,
            straggler_count: None,
            wall_clock_ms: None,
            crashed_drained: None,
            max_crashed_backlog: None,
        };
    }
    let mut reports = Vec::with_capacity(cell.seeds as usize);
    let mut probes = Vec::new();
    let mut profile = cfg.trace.then(ProfilePartial::default);
    // Slots are indexed by shard position within the cell, so pushing in
    // slot order concatenates the chunks back into replicate order.
    for output in shards {
        let output = output.expect("error-free sweeps fill every slot");
        reports.extend(output.reports);
        probes.extend(output.probes);
        if let (Some(whole), Some(part)) = (profile.as_mut(), output.profile.as_ref()) {
            whole.merge(part);
        }
    }
    assert_eq!(reports.len(), cell.seeds as usize, "all replicates merged");
    let (crash_count, mean_crashes_fired) = if cell.effective_backend() == Backend::Threads {
        threads_crash_stats(cell, cfg, &probes)
    } else {
        crash_stats(cell, cfg, &reports)
    };
    let straggler_count = match cell.adversary {
        AdversarySpec::Straggler { pct, .. } => Some(
            crate::grid::straggler_flags(pct, cell.p)
                .iter()
                .filter(|&&slow| slow)
                .count() as f64,
        ),
        _ => None,
    };
    // The measured-only trio exists exactly on backend-tagged cells —
    // zeros under `sim` keep the schema identical across a tagged grid's
    // backends, while legacy (axis-omitted) cells stay byte-identical to
    // their pre-backend output.
    let (wall_clock_ms, crashed_drained, max_crashed_backlog) = match cell.backend {
        None => (None, None, None),
        Some(Backend::Sim) => (Some(0.0), Some(0.0), Some(0.0)),
        Some(Backend::Threads) => {
            let n = probes.len().max(1) as f64;
            (
                Some(probes.iter().map(|pr| pr.wall_clock_ms).sum::<f64>() / n),
                Some(
                    probes
                        .iter()
                        .map(|pr| pr.crashed_drained as f64)
                        .sum::<f64>()
                        / n,
                ),
                Some(
                    probes
                        .iter()
                        .map(|pr| pr.max_crashed_backlog)
                        .max()
                        .unwrap_or(0) as f64,
                ),
            )
        }
    };
    CellMeasurement {
        cell: cell.clone(),
        summary: Some(summarize(&reports)),
        mean_primary: profile.as_ref().map(ProfilePartial::mean_primary),
        mean_secondary: profile.as_ref().map(ProfilePartial::mean_secondary),
        crash_count,
        mean_crashes_fired,
        straggler_count,
        wall_clock_ms,
        crashed_drained,
        max_crashed_backlog,
    }
}

/// For `crash:<pct>` cells: the scheduled crash count and the mean
/// number of crashes that fired (crash tick ≤ σ) across the replicates;
/// `(None, None)` for every other adversary.
///
/// The crash plan is deterministic in the cell's parameters and tick
/// budget (see [`crate::grid::crash_plan`]), so it can be recomputed
/// here from the completed reports instead of being threaded out of the
/// adversary.
///
/// # Panics
///
/// Panics if crashes were scheduled but none fired in some replicate
/// (for `t ≥ 2`, where at least the first crash provably lands before
/// σ) — a "crash" cell that exercises no crashes would quietly measure
/// the wrong scenario, which is exactly the bug this guards against.
fn crash_stats(
    cell: &Cell,
    cfg: &SweepConfig,
    reports: &[doall_core::RunReport],
) -> (Option<f64>, Option<f64>) {
    let AdversarySpec::Crash { pct, stagger } = cell.adversary else {
        return (None, None);
    };
    let plan = crate::grid::crash_plan(pct, stagger, cell.p, cell.t, cfg.max_ticks);
    let scheduled = plan.iter().flatten().count();
    let mut fired_total = 0usize;
    for report in reports {
        let sigma = report.sigma.expect("incomplete runs error out above");
        let fired = plan.iter().flatten().filter(|&&at| at <= sigma).count();
        assert!(
            scheduled == 0 || cell.t < 2 || fired >= 1,
            "crash cell exercised no crashes: {} p={} t={} scheduled={scheduled} σ={sigma}",
            cell.adversary,
            cell.p,
            cell.t,
        );
        fired_total += fired;
    }
    (
        Some(scheduled as f64),
        Some(fired_total as f64 / reports.len() as f64),
    )
}

/// [`crash_stats`] for `threads`-backend cells: the scheduled count is
/// the same deterministic [`crate::grid::crash_plan`], but *fired* is
/// what each replicate actually observed (a crashed worker stops exactly
/// at its step budget, so firing is measured, not recomputed). No
/// all-replicates-fired assertion here — on real threads a fast run can
/// legitimately complete before a late budget is reached.
fn threads_crash_stats(
    cell: &Cell,
    cfg: &SweepConfig,
    probes: &[ThreadsProbe],
) -> (Option<f64>, Option<f64>) {
    let AdversarySpec::Crash { pct, stagger } = cell.adversary else {
        return (None, None);
    };
    let plan = crate::grid::crash_plan(pct, stagger, cell.p, cell.t, cfg.max_ticks);
    let scheduled = plan.iter().flatten().count();
    let fired_total: u64 = probes.iter().map(|pr| pr.crashes_fired).sum();
    (
        Some(scheduled as f64),
        Some(fired_total as f64 / probes.len().max(1) as f64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    fn small_grid() -> Grid {
        Grid::parse("algos=paran1,soloall advs=stage,unit shapes=4x8 ds=1,2 seeds=2 seed=3")
            .unwrap()
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        let cells = small_grid().cells();
        let seq = run_cells(
            &cells,
            &SweepConfig {
                threads: 1,
                ..SweepConfig::default()
            },
        )
        .unwrap();
        let par = run_cells(
            &cells,
            &SweepConfig {
                threads: 8,
                ..SweepConfig::default()
            },
        )
        .unwrap();
        assert_eq!(seq, par, "thread count must not influence results");
        assert_eq!(seq.len(), cells.len());
    }

    #[test]
    fn shard_size_never_influences_results() {
        let cells = small_grid().cells();
        let baseline = run_cells(
            &cells,
            &SweepConfig {
                threads: 1,
                shard_size: Some(u64::MAX), // clamped to whole-cell shards
                ..SweepConfig::default()
            },
        )
        .unwrap();
        for threads in [1, 4] {
            for shard_size in [None, Some(1), Some(2), Some(3)] {
                let out = run_cells(
                    &cells,
                    &SweepConfig {
                        threads,
                        shard_size,
                        ..SweepConfig::default()
                    },
                )
                .unwrap();
                assert_eq!(
                    out, baseline,
                    "threads={threads} shard_size={shard_size:?} must match"
                );
            }
        }
    }

    #[test]
    fn effective_shard_size_auto_and_clamps() {
        let cfg = |threads: usize, shard_size: Option<u64>| SweepConfig {
            threads,
            shard_size,
            ..SweepConfig::default()
        };
        // Auto, fewer cells than workers: spread one cell's seeds evenly.
        assert_eq!(effective_shard_size(1, 32, &cfg(8, None)), 4);
        assert_eq!(effective_shard_size(1, 30, &cfg(8, None)), 4, "ceil");
        assert_eq!(effective_shard_size(1, 4, &cfg(8, None)), 1);
        // Auto, cells already saturate the pool: whole-cell shards.
        assert_eq!(effective_shard_size(8, 32, &cfg(8, None)), 32);
        assert_eq!(effective_shard_size(100, 5, &cfg(8, None)), 5);
        // Explicit values clamp to [1, seeds].
        assert_eq!(effective_shard_size(1, 8, &cfg(4, Some(3))), 3);
        assert_eq!(effective_shard_size(1, 8, &cfg(4, Some(0))), 1);
        assert_eq!(effective_shard_size(1, 8, &cfg(4, Some(1_000))), 8);
    }

    #[test]
    fn one_cell_grid_spreads_across_workers() {
        // The acceptance probe: a single cell with seeds ≥ 8 must engage
        // more than one worker. The shape is heavy enough (debug-mode
        // simulation ≫ thread-spawn latency) that late workers always
        // find unclaimed shards.
        let cells = Grid::parse("algos=paran1 advs=stage shapes=16x256 ds=4 seeds=8 seed=1")
            .unwrap()
            .cells();
        let cfg = SweepConfig {
            threads: 4,
            shard_size: Some(1),
            ..SweepConfig::default()
        };
        let (out, stats) = run_cells_with_stats(&cells, &cfg).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(stats.shards, 8, "seeds=8 at shard size 1");
        assert_eq!(stats.workers, 4, "one cell no longer caps the pool at 1");
        // Engagement (unlike the results) depends on OS scheduling: under
        // a loaded test runner the late workers can miss the window. Give
        // the measurement a few tries; one multi-worker observation is
        // the proof.
        let mut best = stats.workers_engaged;
        for _ in 0..20 {
            if best > 1 {
                break;
            }
            let (_, retry) = run_cells_with_stats(&cells, &cfg).unwrap();
            best = best.max(retry.workers_engaged);
        }
        assert!(
            best > 1,
            "a single huge cell must engage more than one worker: {stats:?}"
        );
        // Auto sharding on the same grid also splits the cell.
        let (_, auto_stats) = run_cells_with_stats(
            &cells,
            &SweepConfig {
                threads: 4,
                ..SweepConfig::default()
            },
        )
        .unwrap();
        assert_eq!(auto_stats.shards, 4, "auto = ceil(8/4) = 2 seeds per shard");
        assert!(auto_stats.workers > 1);
    }

    #[test]
    fn none_cells_skip_simulation() {
        let cells = Grid::parse("algos=none shapes=4x8").unwrap().cells();
        let (out, stats) = run_cells_with_stats(&cells, &SweepConfig::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].summary.is_none());
        assert_eq!(stats.shards, 0, "derive-only cells schedule no work");
    }

    #[test]
    fn trace_mode_reports_primary_executions() {
        let cells = Grid::parse("algos=soloall shapes=2x4 advs=unit seeds=1")
            .unwrap()
            .cells();
        let out = run_cells(
            &cells,
            &SweepConfig {
                trace: true,
                ..SweepConfig::default()
            },
        )
        .unwrap();
        // SoloAll: each processor sweeps all 4 tasks from its own offset,
        // so every task has exactly one primary execution.
        assert_eq!(out[0].mean_primary, Some(4.0));
        let secondary = out[0].mean_secondary.expect("trace mode");
        assert!(secondary >= 0.0);
    }

    #[test]
    fn trace_mode_is_shard_invariant() {
        let cells = Grid::parse("algos=paran1,oblido advs=stage shapes=4x8 ds=2 seeds=4 seed=5")
            .unwrap()
            .cells();
        let cfg = |threads: usize, shard_size: Option<u64>| SweepConfig {
            threads,
            shard_size,
            trace: true,
            ..SweepConfig::default()
        };
        let baseline = run_cells(&cells, &cfg(1, Some(4))).unwrap();
        assert!(baseline[0].mean_primary.is_some());
        for threads in [1, 4] {
            for shard_size in [None, Some(1), Some(3)] {
                let out = run_cells(&cells, &cfg(threads, shard_size)).unwrap();
                assert_eq!(
                    out, baseline,
                    "traced threads={threads} shard_size={shard_size:?}"
                );
            }
        }
    }

    #[test]
    fn trace_buffer_reuse_survives_growing_cell_shapes() {
        // Regression: a worker's recycled trace buffer keeps the capacity
        // it was first allocated with. With threads=1 the same worker
        // runs a tiny cell (small capacity) and then a much bigger one —
        // reusing the undersized buffer would truncate the big cell's
        // trace and panic the profile analysis.
        let cells = Grid::parse("algos=paran1 advs=fixed shapes=2x4,32x256 ds=2 seeds=1 seed=1")
            .unwrap()
            .cells();
        let cfg = SweepConfig {
            trace: true,
            threads: 1,
            max_ticks: 10_000, // small enough that capacities differ per shape
            ..SweepConfig::default()
        };
        let out = run_cells(&cells, &cfg).unwrap();
        assert!(out.iter().all(|m| m.mean_primary.is_some()));
        // Every task needs at least one primary execution (concurrent
        // firsts can push the count above t); completing at all is the
        // regression check — an undersized reused buffer panicked here.
        let primary = out[1].mean_primary.expect("trace mode");
        assert!(primary >= 256.0, "t=256 tasks all executed: {primary}");
    }

    #[test]
    fn auto_sharding_ignores_derive_only_cells() {
        // Regression: `none` cells schedule no shards, so they must not
        // count toward the auto rule's cell total — a grid of mostly
        // derive-only rows plus one big simulated cell used to keep
        // whole-cell shards and pin one thread.
        let mut cells = Grid::parse("algos=none advs=unit shapes=2x2,3x3,4x4,5x5,6x6,7x7,8x8")
            .unwrap()
            .cells();
        cells.extend(
            Grid::parse("algos=paran1 advs=stage shapes=8x16 ds=1 seeds=8 seed=2")
                .unwrap()
                .cells(),
        );
        assert_eq!(cells.len(), 8, "7 derive-only + 1 simulated");
        let (out, stats) = run_cells_with_stats(
            &cells,
            &SweepConfig {
                threads: 8,
                ..SweepConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.len(), 8);
        assert_eq!(
            stats.shards, 8,
            "auto = ceil(8 seeds / 8 threads) = 1 per shard; counting the \
             none cells would have produced a single whole-cell shard"
        );
        assert_eq!(stats.workers, 8);
    }

    #[test]
    fn tick_cutoff_is_an_error_not_a_silent_average() {
        // d=8 delays with a 4-tick budget: paran1 cannot finish.
        let cells = Grid::parse("algos=paran1 advs=fixed shapes=2x16 ds=8")
            .unwrap()
            .cells();
        let err = run_cells(
            &cells,
            &SweepConfig {
                max_ticks: 4,
                ..SweepConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SweepError::Incomplete { .. }), "{err}");
        assert!(err.to_string().contains("max-ticks"));
    }

    #[test]
    fn incomplete_reports_the_derived_seed_not_the_position() {
        let cells = Grid::parse("algos=paran1 advs=fixed shapes=2x16 ds=8 seeds=3 seed=7")
            .unwrap()
            .cells();
        let cell = cells[0].clone();
        let err = run_cells(
            &cells,
            &SweepConfig {
                max_ticks: 4,
                threads: 1,
                ..SweepConfig::default()
            },
        )
        .unwrap_err();
        match err {
            SweepError::Incomplete {
                replicate, seed, ..
            } => {
                assert_eq!(replicate, 0, "first replicate fails first");
                assert_eq!(
                    seed,
                    cell.run_seed(replicate),
                    "seed must be the derived run seed, not the replicate index"
                );
                assert_ne!(seed, replicate, "the old bug conflated the two");
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn error_selection_is_deterministic_across_threads_and_shards() {
        // Two bad cells (tick cutoff) surrounded by good ones: every
        // thread/shard combination must surface the *lowest-indexed* bad
        // cell, not whichever worker errored first.
        let mut cells = Grid::parse("algos=soloall advs=unit shapes=2x4 seeds=2")
            .unwrap()
            .cells();
        let bad = Grid::parse("algos=paran1 advs=fixed shapes=2x16,2x32 ds=8 seeds=2")
            .unwrap()
            .cells();
        cells.extend(bad); // cells[1] and cells[2] both hit the cutoff
        let baseline = run_cells(
            &cells,
            &SweepConfig {
                max_ticks: 4,
                threads: 1,
                shard_size: Some(u64::MAX),
                ..SweepConfig::default()
            },
        )
        .unwrap_err();
        assert!(
            baseline.to_string().contains("t=16"),
            "lowest-index bad cell wins: {baseline}"
        );
        for threads in [1, 2, 8] {
            for shard_size in [None, Some(1)] {
                let err = run_cells(
                    &cells,
                    &SweepConfig {
                        max_ticks: 4,
                        threads,
                        shard_size,
                        ..SweepConfig::default()
                    },
                )
                .unwrap_err();
                assert_eq!(
                    err, baseline,
                    "threads={threads} shard_size={shard_size:?} must report the same error"
                );
            }
        }
    }

    #[test]
    fn crash_cells_record_and_exercise_crashes() {
        let cells = Grid::parse("algos=paran1 advs=crash:50,crash:0 shapes=4x16 ds=2 seeds=2")
            .unwrap()
            .cells();
        let out = run_cells(&cells, &SweepConfig::default()).unwrap();
        let m50 = out[0].metrics();
        assert_eq!(m50["crash_count"], 2.0, "crash:50 of p=4, rounded");
        assert!(
            m50["mean_crashes_fired"] >= 1.0,
            "every replicate must exercise at least one crash: {m50:?}"
        );
        assert!(m50["mean_crashes_fired"] <= m50["crash_count"]);
        let m0 = out[1].metrics();
        assert_eq!(m0["crash_count"], 0.0);
        assert_eq!(m0["mean_crashes_fired"], 0.0);
        // Non-crash adversaries carry no crash metrics at all.
        let plain = run_cells(
            &Grid::parse("algos=paran1 shapes=4x8").unwrap().cells(),
            &SweepConfig::default(),
        )
        .unwrap();
        assert!(!plain[0].metrics().contains_key("crash_count"));
        assert!(!plain[0].metrics().contains_key("mean_crashes_fired"));
    }

    #[test]
    fn bursty_differs_from_unit_for_d_at_least_2() {
        // Run the *identically seeded* algorithm under both adversaries,
        // so the only difference between the two executions is the
        // adversary's behaviour — cell seeding cannot confound this the
        // way a two-cell grid comparison would.
        //
        // Regression guard for the degenerate case: at d = 1 bursty's
        // congested delay equals its calm delay, so it silently equals
        // `unit`; from d ≥ 2 the square wave must actually bite.
        let instance = Instance::new(16, 64).unwrap();
        let run = |key: &str, d: u64| {
            let spec = AdversarySpec::parse(key).unwrap();
            let algo = build_algorithm("paran1", instance, 7).unwrap();
            Simulation::builder(instance)
                .procs(algo.spawn(instance))
                .adversary(build_adversary(&spec, 16, 64, d, 7, 1_000_000))
                .max_ticks(1_000_000)
                .build()
                .run()
        };
        for bursty_key in ["bursty", "bursty:2"] {
            let unit = run("unit", 8);
            let bursty = run(bursty_key, 8);
            assert!(unit.completed && bursty.completed);
            assert!(
                (unit.work, unit.messages) != (bursty.work, bursty.messages),
                "{bursty_key}: bursty at d ≥ 2 must not match the unit profile \
                 (work {}, messages {})",
                bursty.work,
                bursty.messages,
            );
        }
        // At d = 1 the degenerate collapse is real — and documented.
        let unit = run("unit", 1);
        let bursty = run("bursty:4", 1);
        assert_eq!(
            (unit.work, unit.messages),
            (bursty.work, bursty.messages),
            "d = 1 bursty degenerates to unit (congested delay = calm delay)"
        );
    }

    #[test]
    fn crash_stagger_cells_are_distinct_and_all_fire() {
        let cells = Grid::parse(
            "algos=paran1 advs=crash:50@even,crash:50@burst,crash:50@front shapes=8x64 ds=2 \
             seeds=2",
        )
        .unwrap()
        .cells();
        let out = run_cells(&cells, &SweepConfig::default()).unwrap();
        for m in &out {
            let metrics = m.metrics();
            assert_eq!(metrics["crash_count"], 4.0, "{}", m.cell.adversary);
            assert!(metrics["mean_crashes_fired"] >= 1.0, "{}", m.cell.adversary);
        }
        // The stagger is a real knob: front-loaded crashes leave the
        // survivors short-handed for the whole run, so the three patterns
        // cannot all produce the same profile.
        let works: Vec<f64> = out
            .iter()
            .map(|m| m.summary.clone().unwrap().mean_work)
            .collect();
        assert!(
            works.windows(2).any(|w| w[0] != w[1]),
            "staggers even/burst/front all measured identically: {works:?}"
        );
    }

    #[test]
    fn straggler_cells_record_their_count() {
        let cells = Grid::parse(
            "algos=paran1 advs=straggler:25:4,straggler:100:2 shapes=8x32 \
                                 ds=2 seeds=2",
        )
        .unwrap()
        .cells();
        let out = run_cells(&cells, &SweepConfig::default()).unwrap();
        assert_eq!(out[0].metrics()["straggler_count"], 2.0, "25% of p=8");
        assert_eq!(out[1].metrics()["straggler_count"], 7.0, "capped at p − 1");
        // Non-straggler adversaries carry no straggler metrics.
        let plain = run_cells(
            &Grid::parse("algos=paran1 shapes=4x8").unwrap().cells(),
            &SweepConfig::default(),
        )
        .unwrap();
        assert!(!plain[0].metrics().contains_key("straggler_count"));
    }

    #[test]
    fn bad_keys_fail_before_any_run() {
        let mut cells = small_grid().cells();
        cells[0].algo = "frobnicate".to_string();
        assert!(matches!(
            run_cells(&cells, &SweepConfig::default()),
            Err(SweepError::Bad(_))
        ));
    }

    #[test]
    fn trace_capacity_scales_with_shape_and_clamps() {
        assert_eq!(trace_capacity(2, 4), 17, "2p·ticks + 1");
        assert_eq!(trace_capacity(1, 1), 3);
        assert_eq!(
            trace_capacity(4_096, DEFAULT_MAX_TICKS),
            TRACE_CAPACITY,
            "huge shapes clamp to the ceiling"
        );
    }
}
