//! The parallel sweep engine: executes the cells of one or more grids
//! across a scoped thread pool, with results slotted by cell index so the
//! output is bit-identical regardless of thread count.
//!
//! Work distribution is a shared atomic cursor over the cell list — each
//! worker claims the next unclaimed cell, runs its full replicate batch
//! via [`Simulation::run_batch`], and writes the measurement into its
//! slot. Because every seed is derived from the cell's own parameters
//! (see [`crate::grid::Cell::run_seed`]), neither the claim order nor the
//! worker count can influence a single number in the results.

use crate::grid::{build_adversary, build_algorithm, Cell, GridError, ALGO_NONE};
use doall_core::Instance;
use doall_sim::analysis::{execution_profile, summarize, BatchSummary};
use doall_sim::{Simulation, DEFAULT_MAX_TICKS};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Trace capacity used when an experiment asks for execution profiles.
const TRACE_CAPACITY: usize = 4_000_000;

/// How to execute a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Worker threads (≥ 1). Affects wall-clock only, never results.
    pub threads: usize,
    /// Tick cutoff per run (see [`doall_sim::DEFAULT_MAX_TICKS`]).
    pub max_ticks: u64,
    /// Collect execution traces and report primary/secondary execution
    /// counts (Section 4 analysis) for every simulated cell.
    pub trace: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            threads: default_threads(),
            max_ticks: DEFAULT_MAX_TICKS,
            trace: false,
        }
    }
}

/// The default worker count: the machine's available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// An error from executing a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// A cell referenced an unknown or unbuildable key.
    Bad(GridError),
    /// A run hit the tick cutoff without completing.
    Incomplete {
        /// The offending cell, rendered for the error message.
        cell: String,
        /// The replicate seed index that failed.
        seed: u64,
    },
    /// The instance shape was invalid.
    Instance(String),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Bad(e) => write!(f, "{e}"),
            SweepError::Incomplete { cell, seed } => write!(
                f,
                "run did not complete within the tick budget (cell {cell}, seed {seed}); \
                 raise --max-ticks"
            ),
            SweepError::Instance(msg) => write!(f, "bad instance: {msg}"),
        }
    }
}

impl std::error::Error for SweepError {}

impl From<GridError> for SweepError {
    fn from(e: GridError) -> Self {
        SweepError::Bad(e)
    }
}

/// The measured side of one cell: batch aggregates plus (optionally)
/// trace-derived execution-profile means. `summary` is `None` for
/// derive-only cells (`algo == "none"`).
#[derive(Debug, Clone, PartialEq)]
pub struct CellMeasurement {
    /// The cell that was run.
    pub cell: Cell,
    /// Work/message aggregates over the cell's replicates.
    pub summary: Option<BatchSummary>,
    /// Mean primary executions per run (trace mode only).
    pub mean_primary: Option<f64>,
    /// Mean secondary (redundant) executions per run (trace mode only).
    pub mean_secondary: Option<f64>,
    /// Scheduled crash count (`crash:<pct>` adversaries only) — the
    /// *actual* count after rounding and the `p − 1` survivor cap, so
    /// baselines capture how many crashes a cell really exercised.
    pub crash_count: Option<f64>,
    /// Mean number of scheduled crashes that fired before σ, per
    /// replicate (`crash:<pct>` adversaries only).
    pub mean_crashes_fired: Option<f64>,
}

impl CellMeasurement {
    /// Renders the measured aggregates as the canonical metric map — the
    /// single definition of the measured half of the output schema
    /// (`mean/median/max work` & `messages`, `completed`, and the traced
    /// execution-profile means where present). Every producer of
    /// [`crate::output::Record`]s starts from this map so CLI sweeps,
    /// experiment runs, and tests cannot drift apart.
    #[must_use]
    pub fn metrics(&self) -> std::collections::BTreeMap<String, f64> {
        let mut metrics = std::collections::BTreeMap::new();
        if let Some(s) = &self.summary {
            metrics.insert("mean_work".to_string(), s.mean_work);
            metrics.insert("median_work".to_string(), s.median_work);
            metrics.insert("max_work".to_string(), s.max_work as f64);
            metrics.insert("mean_messages".to_string(), s.mean_messages);
            metrics.insert("median_messages".to_string(), s.median_messages);
            metrics.insert("max_messages".to_string(), s.max_messages as f64);
            metrics.insert("completed".to_string(), s.completed as f64);
        }
        if let Some(primary) = self.mean_primary {
            metrics.insert("mean_primary".to_string(), primary);
        }
        if let Some(secondary) = self.mean_secondary {
            metrics.insert("mean_secondary".to_string(), secondary);
        }
        if let Some(count) = self.crash_count {
            metrics.insert("crash_count".to_string(), count);
        }
        if let Some(fired) = self.mean_crashes_fired {
            metrics.insert("mean_crashes_fired".to_string(), fired);
        }
        metrics
    }
}

/// Runs every cell, in parallel across `cfg.threads` workers.
///
/// Results come back in cell order. The first error (bad key, invalid
/// instance, or a run that hit the tick cutoff) aborts the sweep.
///
/// # Errors
///
/// Returns the first [`SweepError`] any worker encountered.
pub fn run_cells(cells: &[Cell], cfg: &SweepConfig) -> Result<Vec<CellMeasurement>, SweepError> {
    // Validate everything up front so workers only see well-formed cells.
    for cell in cells {
        crate::grid::validate_algo_key(&cell.algo)?;
        crate::grid::validate_adversary_key(&cell.adversary)?;
        Instance::new(cell.p, cell.t).map_err(|e| SweepError::Instance(e.to_string()))?;
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<CellMeasurement>>> = Mutex::new(vec![None; cells.len()]);
    let first_error: Mutex<Option<SweepError>> = Mutex::new(None);
    let workers = cfg.threads.max(1).min(cells.len().max(1));
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cells.len() {
                    break;
                }
                match run_cell(&cells[i], cfg) {
                    Ok(m) => slots.lock().expect("poisoned")[i] = Some(m),
                    Err(e) => {
                        let mut guard = first_error.lock().expect("poisoned");
                        if guard.is_none() {
                            *guard = Some(e);
                        }
                        // Drain remaining work so every worker exits fast.
                        next.fetch_add(cells.len(), Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    })
    .expect("sweep workers do not panic");
    if let Some(e) = first_error.into_inner().expect("poisoned") {
        return Err(e);
    }
    Ok(slots
        .into_inner()
        .expect("poisoned")
        .into_iter()
        .map(|slot| slot.expect("all cells ran"))
        .collect())
}

/// Runs one cell's full replicate batch sequentially.
///
/// # Errors
///
/// Returns a [`SweepError`] for bad keys, invalid shapes, or runs that
/// hit the tick cutoff (experiments must not silently aggregate over
/// broken executions).
pub fn run_cell(cell: &Cell, cfg: &SweepConfig) -> Result<CellMeasurement, SweepError> {
    if cell.algo == ALGO_NONE {
        return Ok(CellMeasurement {
            cell: cell.clone(),
            summary: None,
            mean_primary: None,
            mean_secondary: None,
            crash_count: None,
            mean_crashes_fired: None,
        });
    }
    let instance =
        Instance::new(cell.p, cell.t).map_err(|e| SweepError::Instance(e.to_string()))?;
    // `padet-affine` is the only key whose build can fail after key
    // validation (composite task count); surface that as an error rather
    // than a worker panic. Other keys are infallible post-validation, and
    // an unconditional eager build would double the cost of searched
    // schedule lists.
    if cell.algo == "padet-affine" {
        build_algorithm(&cell.algo, instance, cell.run_seed(0))?;
    }

    let mut reports = Vec::with_capacity(cell.seeds as usize);
    let mut primary_total = 0usize;
    let mut secondary_total = 0usize;
    if cfg.trace {
        for k in 0..cell.seeds {
            let seed = cell.run_seed(k);
            let algo = build_algorithm(&cell.algo, instance, seed).expect("validated above");
            let adversary =
                build_adversary(&cell.adversary, cell.p, cell.t, cell.d, seed, cfg.max_ticks)?;
            let (report, trace) = Simulation::new(instance, algo.spawn(instance), adversary)
                .max_ticks(cfg.max_ticks)
                .with_trace(TRACE_CAPACITY)
                .run_traced();
            let profile = execution_profile(&trace.expect("tracing enabled"), cell.t);
            primary_total += profile.primary_executions;
            secondary_total += profile.secondary_executions;
            reports.push(report);
        }
    } else {
        reports = Simulation::run_batch(
            instance,
            cell.seeds,
            cfg.max_ticks,
            |k| {
                build_algorithm(&cell.algo, instance, cell.run_seed(k))
                    .expect("validated above")
                    .spawn(instance)
            },
            |k| {
                build_adversary(
                    &cell.adversary,
                    cell.p,
                    cell.t,
                    cell.d,
                    cell.run_seed(k),
                    cfg.max_ticks,
                )
                .expect("validated before spawning workers")
            },
        );
    }
    if let Some(k) = reports.iter().position(|r| !r.completed) {
        return Err(SweepError::Incomplete {
            cell: format!(
                "{} vs {} p={} t={} d={}",
                cell.algo, cell.adversary, cell.p, cell.t, cell.d
            ),
            seed: k as u64,
        });
    }
    let runs = cell.seeds as f64;
    let (crash_count, mean_crashes_fired) = crash_stats(cell, cfg, &reports);
    Ok(CellMeasurement {
        cell: cell.clone(),
        summary: Some(summarize(&reports)),
        mean_primary: cfg.trace.then(|| primary_total as f64 / runs),
        mean_secondary: cfg.trace.then(|| secondary_total as f64 / runs),
        crash_count,
        mean_crashes_fired,
    })
}

/// For `crash:<pct>` cells: the scheduled crash count and the mean
/// number of crashes that fired (crash tick ≤ σ) across the replicates;
/// `(None, None)` for every other adversary.
///
/// The crash plan is deterministic in the cell's parameters and tick
/// budget (see [`crate::grid::crash_plan`]), so it can be recomputed
/// here from the completed reports instead of being threaded out of the
/// adversary.
///
/// # Panics
///
/// Panics if crashes were scheduled but none fired in some replicate
/// (for `t ≥ 2`, where at least the first crash provably lands before
/// σ) — a "crash" cell that exercises no crashes would quietly measure
/// the wrong scenario, which is exactly the bug this guards against.
fn crash_stats(
    cell: &Cell,
    cfg: &SweepConfig,
    reports: &[doall_core::RunReport],
) -> (Option<f64>, Option<f64>) {
    let Some(pct) = cell.adversary.strip_prefix("crash:") else {
        return (None, None);
    };
    let pct: u64 = pct.parse().expect("validated");
    let plan = crate::grid::crash_plan(pct, cell.p, cell.t, cfg.max_ticks);
    let scheduled = plan.iter().flatten().count();
    let mut fired_total = 0usize;
    for report in reports {
        let sigma = report.sigma.expect("incomplete runs error out above");
        let fired = plan.iter().flatten().filter(|&&at| at <= sigma).count();
        assert!(
            scheduled == 0 || cell.t < 2 || fired >= 1,
            "crash cell exercised no crashes: {} p={} t={} scheduled={scheduled} σ={sigma}",
            cell.adversary,
            cell.p,
            cell.t,
        );
        fired_total += fired;
    }
    (
        Some(scheduled as f64),
        Some(fired_total as f64 / reports.len() as f64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;

    fn small_grid() -> Grid {
        Grid::parse("algos=paran1,soloall advs=stage,unit shapes=4x8 ds=1,2 seeds=2 seed=3")
            .unwrap()
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        let cells = small_grid().cells();
        let seq = run_cells(
            &cells,
            &SweepConfig {
                threads: 1,
                ..SweepConfig::default()
            },
        )
        .unwrap();
        let par = run_cells(
            &cells,
            &SweepConfig {
                threads: 8,
                ..SweepConfig::default()
            },
        )
        .unwrap();
        assert_eq!(seq, par, "thread count must not influence results");
        assert_eq!(seq.len(), cells.len());
    }

    #[test]
    fn none_cells_skip_simulation() {
        let cells = Grid::parse("algos=none shapes=4x8").unwrap().cells();
        let out = run_cells(&cells, &SweepConfig::default()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].summary.is_none());
    }

    #[test]
    fn trace_mode_reports_primary_executions() {
        let cells = Grid::parse("algos=soloall shapes=2x4 advs=unit seeds=1")
            .unwrap()
            .cells();
        let out = run_cells(
            &cells,
            &SweepConfig {
                trace: true,
                ..SweepConfig::default()
            },
        )
        .unwrap();
        // SoloAll: each processor sweeps all 4 tasks from its own offset,
        // so every task has exactly one primary execution.
        assert_eq!(out[0].mean_primary, Some(4.0));
        let secondary = out[0].mean_secondary.expect("trace mode");
        assert!(secondary >= 0.0);
    }

    #[test]
    fn tick_cutoff_is_an_error_not_a_silent_average() {
        // d=8 delays with a 4-tick budget: paran1 cannot finish.
        let cells = Grid::parse("algos=paran1 advs=fixed shapes=2x16 ds=8")
            .unwrap()
            .cells();
        let err = run_cells(
            &cells,
            &SweepConfig {
                max_ticks: 4,
                ..SweepConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SweepError::Incomplete { .. }), "{err}");
        assert!(err.to_string().contains("max-ticks"));
    }

    #[test]
    fn crash_cells_record_and_exercise_crashes() {
        let cells = Grid::parse("algos=paran1 advs=crash:50,crash:0 shapes=4x16 ds=2 seeds=2")
            .unwrap()
            .cells();
        let out = run_cells(&cells, &SweepConfig::default()).unwrap();
        let m50 = out[0].metrics();
        assert_eq!(m50["crash_count"], 2.0, "crash:50 of p=4, rounded");
        assert!(
            m50["mean_crashes_fired"] >= 1.0,
            "every replicate must exercise at least one crash: {m50:?}"
        );
        assert!(m50["mean_crashes_fired"] <= m50["crash_count"]);
        let m0 = out[1].metrics();
        assert_eq!(m0["crash_count"], 0.0);
        assert_eq!(m0["mean_crashes_fired"], 0.0);
        // Non-crash adversaries carry no crash metrics at all.
        let plain = run_cells(
            &Grid::parse("algos=paran1 shapes=4x8").unwrap().cells(),
            &SweepConfig::default(),
        )
        .unwrap();
        assert!(!plain[0].metrics().contains_key("crash_count"));
        assert!(!plain[0].metrics().contains_key("mean_crashes_fired"));
    }

    #[test]
    fn bad_keys_fail_before_any_run() {
        let mut cells = small_grid().cells();
        cells[0].algo = "frobnicate".to_string();
        assert!(matches!(
            run_cells(&cells, &SweepConfig::default()),
            Err(SweepError::Bad(_))
        ));
    }
}
