//! E15 (ablation, §7 open problem) — structured schedule constructions
//! (rotations, affine maps) vs random lists.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e15`).

fn main() {
    doall_bench::experiment_main("e15");
}
