//! E15 (ablation, §7 open problem) — structured schedule constructions vs
//! random lists.
//!
//! The paper leaves constructing good permutations efficiently as an open
//! problem. We compare three O(1)-storage candidates on (a) estimated
//! `(d)`-contention and (b) actual PaDet work:
//!
//! * rotations  — same sweep direction, perfectly spread starting points;
//! * affine maps — distinct strides over a prime modulus;
//! * random lists — the Theorem 4.4 gold standard.

use doall_algorithms::PaDet;
use doall_bench::{fmt, run_once, section, Table};
use doall_core::Instance;
use doall_perms::structured::{affine_schedules, rotation_schedules};
use doall_perms::{d_contention_of_list, Schedules};
use doall_sim::adversary::StageAligned;

fn main() {
    // p = t = 67 (prime, so affine maps apply without padding).
    let n = 67;
    let instance = Instance::new(n, n).unwrap();
    section(
        "E15",
        "Ablation (§7 open problem): structured vs random schedule lists",
        &format!("p = t = {n} (prime); estimated (d)-Cont and measured PaDet work per list."),
    );
    let lists: Vec<(&str, Schedules)> = vec![
        ("rotations", rotation_schedules(n, n)),
        ("affine", affine_schedules(n, n, 3).expect("prime modulus")),
        ("random", Schedules::random(n, n, 3)),
    ];
    for d in [1usize, 8, 32] {
        println!("### d = {d}\n");
        let mut table = Table::new(vec!["list", "(d)-Cont estimate", "PaDet W", "W/(p·t)"]);
        for (label, sched) in &lists {
            let dc = d_contention_of_list(sched.as_slice(), d);
            let algo = PaDet::new(sched.clone());
            let report = run_once(instance, &algo, Box::new(StageAligned::new(d as u64)));
            table.row(vec![
                (*label).to_string(),
                dc.value.to_string(),
                report.work.to_string(),
                fmt(report.work as f64 / (n * n) as f64),
            ]);
        }
        table.print();
        println!();
    }
    println!("Reading: rotations' worst-case contention is near-maximal (identical sweep");
    println!("direction), yet their *measured* work under benign stage-aligned delays is fine —");
    println!("contention is a worst-case guarantee. Affine lists track random lists on both");
    println!("counts while needing two words of storage per schedule: a practical answer to");
    println!("the open problem for the regimes we can measure.");
}
