//! E4 — Lemma 4.1 + Lemma 4.2: low-contention lists exist (and our search
//! finds them), and ObliDo's primary executions are bounded by `Cont(Σ)`.

use doall_algorithms::{Algorithm, ObliDo};
use doall_bench::{fmt, section, Table};
use doall_core::Instance;
use doall_perms::{contention_exact, search, Schedules};
use doall_sim::adversary::StageAligned;
use doall_sim::{Simulation, TraceEvent};

fn main() {
    section(
        "E4",
        "Lemma 4.1 (Cont(Σ) ≤ 3nH_n lists exist) and Lemma 4.2 (primary executions ≤ Cont(Σ))",
        "Certified search vs the bound; then ObliDo traces replayed to count primary executions.",
    );

    println!("### Certified low-contention lists\n");
    let mut table = Table::new(vec![
        "n",
        "method",
        "Cont(Σ) found",
        "3nH_n bound",
        "worst list (n²)",
    ]);
    for n in 2..=7usize {
        let (sched, cont) = search::low_contention_list(n, 0);
        debug_assert_eq!(sched.len(), n);
        let method = match n {
            2..=3 => "exhaustive (optimal)",
            _ => "hill-climb (exact certificate)",
        };
        table.row(vec![
            n.to_string(),
            method.to_string(),
            cont.value.to_string(),
            fmt(search::lemma41_bound(n)),
            (n * n).to_string(),
        ]);
    }
    table.print();

    println!("\n### Lemma 4.2: ObliDo primary executions vs Cont(Σ)\n");
    let mut table = Table::new(vec![
        "n",
        "list",
        "Cont(Σ)",
        "primary executions",
        "total executions (n²)",
    ]);
    for n in [5usize, 6, 7] {
        for (label, sched) in [
            ("searched", search::low_contention_list(n, 0).0),
            ("random", Schedules::random(n, n, 1)),
            ("worst (identical)", Schedules::worst(n, n)),
        ] {
            let cont = contention_exact(sched.as_slice());
            let primary = primary_executions(n, &sched);
            assert!(
                primary <= cont,
                "Lemma 4.2 violated: {primary} > {cont} (n={n}, {label})"
            );
            table.row(vec![
                n.to_string(),
                label.to_string(),
                cont.to_string(),
                primary.to_string(),
                (n * n).to_string(),
            ]);
        }
    }
    table.print();
    println!("\nPaper: primary executions never exceed Cont(Σ); low-contention lists beat the worst case by ~n/log n.");
}

/// Runs ObliDo under a stage-aligned adversary and replays the trace to
/// count *primary* job executions: performances of a job that had not
/// been performed before the current time unit began. Executions within
/// one time unit are concurrent, so two processors both doing job `z` at
/// the same tick are **both** primary — the paper's semantics ("several
/// processors may be executing the same job concurrently for the first
/// time"), which is what lets Cont(Σ) exceed n.
fn primary_executions(n: usize, schedules: &Schedules) -> usize {
    let instance = Instance::new(n, n).unwrap();
    let algo = ObliDo::new(schedules.clone());
    let (report, trace) = Simulation::new(
        instance,
        algo.spawn(instance),
        Box::new(StageAligned::new(2)),
    )
    .with_trace(1_000_000)
    .run_traced();
    assert!(report.completed);
    let trace = trace.expect("tracing enabled");
    let mut done_before_tick = vec![false; n];
    let mut done_this_tick: Vec<usize> = Vec::new();
    let mut current_tick = u64::MAX;
    let mut primary = 0;
    for ev in trace.events() {
        if let TraceEvent::Step {
            now,
            performed: Some(task),
            ..
        } = ev
        {
            if *now != current_tick {
                current_tick = *now;
                for z in done_this_tick.drain(..) {
                    done_before_tick[z] = true;
                }
            }
            if !done_before_tick[task.index()] {
                primary += 1;
                done_this_tick.push(task.index());
            }
        }
    }
    primary
}
