//! E4 — Lemma 4.1 + Lemma 4.2: low-contention lists exist (and our search
//! finds them), and ObliDo's primary executions are bounded by `Cont(Σ)`
//! (asserted from replayed execution traces).
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e04`).

fn main() {
    doall_bench::experiment_main("e04");
}
