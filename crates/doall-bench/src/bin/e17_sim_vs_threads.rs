//! E17 — simulation vs real threads: the same Do-All state machines run
//! on the deterministic tick simulator and on `doall-runtime`'s OS
//! threads (`backends=sim,threads` grid axis), with identical derived
//! seeds across substrates.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e17`).

fn main() {
    doall_bench::experiment_main("e17");
}
