//! E7 — Theorem 5.6: DA's message complexity is `O(p·W)`.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e07`).

fn main() {
    doall_bench::experiment_main("e07");
}
