//! E7 — Theorem 5.6: DA's message complexity is `O(p·W)`.
//!
//! Report M, p·W and their ratio across a `d`-sweep and across `q`.

use doall_algorithms::Da;
use doall_bench::{fmt, run_once, section, Table};
use doall_core::Instance;
use doall_sim::adversary::StageAligned;

fn main() {
    section(
        "E7",
        "Theorem 5.6 (DA message complexity M = O(p·W))",
        "M vs p·W across d and q; the ratio is bounded by 1 by construction \
         (each step broadcasts at most once, to p−1 recipients) — the table \
         shows how far below the bound DA actually stays.",
    );
    for q in [2usize, 3, 4] {
        let da = Da::with_default_schedules(q, 0);
        let p = 64;
        let t = 256;
        let instance = Instance::new(p, t).unwrap();
        println!("### DA({q}), p = {p}, t = {t}\n");
        let mut table = Table::new(vec!["d", "W", "M", "p·W", "M/(p·W)"]);
        for d in [1u64, 4, 16, 64, 256] {
            let report = run_once(instance, &da, Box::new(StageAligned::new(d)));
            table.row(vec![
                d.to_string(),
                report.work.to_string(),
                report.messages.to_string(),
                (report.work * p as u64).to_string(),
                fmt(report.messages as f64 / (report.work * p as u64) as f64),
            ]);
        }
        table.print();
        println!();
    }
    println!("Paper: M = O(p·W) — every ratio is < 1, and only node-retiring steps broadcast.");
}
