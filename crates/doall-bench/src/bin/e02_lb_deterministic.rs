//! E2 — Theorem 3.1: the adaptive adversary forces deterministic
//! algorithms to `Ω(t + p·min{d,t}·log_{d+1}(d+t))` work.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e02`).

fn main() {
    doall_bench::experiment_main("e02");
}
