//! E2 — Theorem 3.1: the adaptive adversary forces deterministic
//! algorithms to `Ω(t + p·min{d,t}·log_{d+1}(d+t))` work.
//!
//! DA(3) and PaDet (p = t, task granularity) against the dry-run
//! lower-bound adversary across a `d`-sweep; the measured forced work is
//! compared with the closed-form bound. The measured/bound ratio staying
//! in a constant band while both grow with `d` is the reproduction.

use doall_algorithms::{Algorithm, Da, PaDet};
use doall_bench::{fmt, run_once, section, Table};
use doall_bounds::lower_bound_work;
use doall_core::Instance;
use doall_sim::adversary::{LowerBoundAdversary, UnitDelay};

fn main() {
    let p = 243;
    let t = 243;
    let instance = Instance::new(p, t).unwrap();
    section(
        "E2",
        "Theorem 3.1 (delay-sensitive lower bound, deterministic)",
        &format!(
            "p = t = {t}; LowerBoundAdversary (stage dry-runs) vs the bound \
             t + p·min{{d,t}}·log_(d+1)(d+t). 'benign' is the same algorithm under unit delay."
        ),
    );
    let algos: Vec<Box<dyn Algorithm>> = vec![
        Box::new(Da::with_default_schedules(3, 0)),
        Box::new(PaDet::random_for(instance, 0)),
    ];
    for algo in algos {
        println!("### {}\n", algo.name());
        let benign = run_once(instance, &*algo, Box::new(UnitDelay));
        let mut table = Table::new(vec![
            "d",
            "forced W",
            "LB formula",
            "forced/LB",
            "forced/(p·t)",
            "forced/benign",
        ]);
        for d in [1u64, 3, 9, 27, 81, 243] {
            let attacked = run_once(instance, &*algo, Box::new(LowerBoundAdversary::new(d, t)));
            let lb = lower_bound_work(p, t, d);
            table.row(vec![
                d.to_string(),
                attacked.work.to_string(),
                fmt(lb),
                fmt(attacked.work as f64 / lb),
                fmt(attacked.work as f64 / (p as f64 * t as f64)),
                fmt(attacked.work as f64 / benign.work as f64),
            ]);
        }
        table.print();
        println!("\n(benign work: {})\n", benign.work);
    }
    println!("Paper: forced work grows with d. Reading the constants: the proof's adversary uses");
    println!(
        "stages of L = min{{d, t/6}} and guarantees ≥ (p/3)·L work per stage, i.e. for d ≥ t/6"
    );
    println!("it forces Θ(p·t) with constant ≥ 1/18 (the paper's own Case 'd ≥ t/6'); the");
    println!("forced/(p·t) column saturating in the [1/18, 1] band at large d is the predicted");
    println!("behaviour, while for small d the forced/LB ratio stays within a constant band.");
}
