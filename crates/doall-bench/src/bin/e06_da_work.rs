//! E6 — Theorems 5.4/5.5: DA(q) work across a `d`-sweep vs the bound
//! `t·p^ε + p·min{t,d}·⌈t/d⌉^ε`.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e06`).

fn main() {
    doall_bench::experiment_main("e06");
}
