//! E6 — Theorems 5.4/5.5: DA(q) work across a `d`-sweep vs the bound
//! `t·p^ε + p·min{t,d}·⌈t/d⌉^ε`.
//!
//! Three instance shapes: p = t (task granularity), t ≫ p (job
//! clustering), and the p = 27/t = 729 shape used throughout the paper's
//! style of parameterization. ε is the value DA(q) actually achieves with
//! its certified schedule list: ε = log_q(Cont(Σ)/q).

use doall_algorithms::Da;
use doall_bench::{fmt, run_once, section, Table};
use doall_bounds::{da_epsilon, da_upper_bound, oblivious_work};
use doall_core::Instance;
use doall_perms::contention_exact;
use doall_sim::adversary::StageAligned;

fn main() {
    section(
        "E6",
        "Theorems 5.4/5.5 (DA(q) delay-sensitive work)",
        "Work under the stage-aligned d-adversary vs t·p^ε + p·min{t,d}·⌈t/d⌉^ε, \
         with ε = log_q(Cont(Σ)/q) from the certified schedule list.",
    );
    let q = 3;
    let da = Da::with_default_schedules(q, 0);
    let cont = contention_exact(da.schedules().as_slice());
    let eps = da_epsilon(q, cont).max(0.05);
    println!(
        "DA({q}) with Cont(Σ) = {cont} → ε = {} (Lemma 4.1 bound would give {})\n",
        fmt(eps),
        fmt(doall_bounds::cont_bound_lemma41(q)),
    );

    for (p, t) in [(243usize, 243usize), (27, 729), (9, 6561)] {
        let instance = Instance::new(p, t).unwrap();
        println!("### p = {p}, t = {t} (p·t = {})\n", p * t);
        let mut table = Table::new(vec!["d", "W", "bound", "W/bound", "W/(p·t)"]);
        let mut d = 1u64;
        while d <= t as u64 {
            let report = run_once(instance, &da, Box::new(StageAligned::new(d)));
            let bound = da_upper_bound(p, t, d, eps);
            table.row(vec![
                d.to_string(),
                report.work.to_string(),
                fmt(bound),
                fmt(report.work as f64 / bound),
                fmt(report.work as f64 / oblivious_work(p, t)),
            ]);
            d *= 3;
        }
        table.print();
        println!();
    }
    println!("Paper: W/bound stays in a constant band; W/(p·t) is ≪ 1 while d = o(t) (subquadratic regime).");
}
