//! E3 — Theorem 3.4: the online delay-on-touch adversary forces
//! randomized algorithms to the same expected-work lower bound.
//!
//! PaRan1/PaRan2 (p = t) against RandomizedLbAdversary, averaged over
//! seeds, vs the closed-form bound.

use doall_algorithms::{Algorithm, PaRan1, PaRan2};
use doall_bench::{fmt, section, seed_average, Table};
use doall_bounds::lower_bound_work;
use doall_core::Instance;
use doall_sim::adversary::{RandomizedLbAdversary, UnitDelay};
use doall_sim::Adversary;

type AlgoFactory = Box<dyn Fn(u64) -> Box<dyn Algorithm>>;

fn main() {
    let p = 128;
    let t = 128;
    let seeds = 10;
    let instance = Instance::new(p, t).unwrap();
    section(
        "E3",
        "Theorem 3.4 (delay-sensitive lower bound, randomized)",
        &format!("p = t = {t}; delay-on-touch adversary; mean over {seeds} seeds."),
    );

    let mk_algo: Vec<(&str, AlgoFactory)> = vec![
        ("PaRan1", Box::new(|s| Box::new(PaRan1::new(s)))),
        ("PaRan2", Box::new(|s| Box::new(PaRan2::new(s)))),
    ];
    for (name, algo_for) in mk_algo {
        println!("### {name}\n");
        let benign = seed_average(instance, seeds, &algo_for, |_| {
            Box::new(UnitDelay) as Box<dyn Adversary>
        });
        let mut table = Table::new(vec![
            "d",
            "E[forced W]",
            "max W",
            "LB formula",
            "E[W]/LB",
            "E[W]/benign",
        ]);
        for d in [1u64, 4, 16, 64, 128] {
            let stats = seed_average(instance, seeds, &algo_for, |s| {
                Box::new(RandomizedLbAdversary::new(d, t, s.wrapping_add(1000)))
                    as Box<dyn Adversary>
            });
            let lb = lower_bound_work(p, t, d);
            table.row(vec![
                d.to_string(),
                fmt(stats.mean_work),
                stats.max_work.to_string(),
                fmt(lb),
                fmt(stats.mean_work / lb),
                fmt(stats.mean_work / benign.mean_work),
            ]);
        }
        table.print();
        println!("\n(benign mean work: {})\n", fmt(benign.mean_work));
    }
    println!("Paper: expected forced work grows with d; freezing on touched defended tasks realizes Lemma 3.3's adversary.");
}
