//! E3 — Theorem 3.4: the online delay-on-touch adversary forces
//! randomized algorithms to the same expected-work lower bound.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e03`).

fn main() {
    doall_bench::experiment_main("e03");
}
