//! E13 (ablation) — the branching factor `q` of DA: Theorem 5.4 says any
//! `ε > 0` is reachable with a large enough constant `q`.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e13`).

fn main() {
    doall_bench::experiment_main("e13");
}
