//! E13 (ablation) — the branching factor `q` of DA: Theorem 5.4 says any
//! `ε > 0` is reachable with a large enough constant `q`; this ablation
//! shows the concrete trade-off on one instance.
//!
//! Larger `q` means lower contention-per-branch overhead (ε =
//! log_q(Cont(Σ)/q) shrinks) but a flatter tree with larger per-node
//! constants; the sweet spot depends on `d`.

use doall_algorithms::Da;
use doall_bench::{fmt, run_once, section, Table};
use doall_bounds::da_epsilon;
use doall_core::Instance;
use doall_perms::contention_exact;
use doall_sim::adversary::StageAligned;

fn main() {
    let p = 64;
    let t = 256;
    let instance = Instance::new(p, t).unwrap();
    section(
        "E13",
        "Ablation: DA branching factor q (Theorem 5.4's ε/q trade)",
        &format!(
            "p = {p}, t = {t}; certified schedule lists per q; work under stage-aligned delays."
        ),
    );
    let mut table = Table::new(vec![
        "q",
        "Cont(Σ)",
        "ε = log_q(Cont/q)",
        "W (d=1)",
        "W (d=16)",
        "W (d=64)",
        "M (d=16)",
    ]);
    for q in [2usize, 3, 4, 5, 6] {
        let da = Da::with_default_schedules(q, 0);
        let cont = contention_exact(da.schedules().as_slice());
        let w1 = run_once(instance, &da, Box::new(StageAligned::new(1)));
        let w16 = run_once(instance, &da, Box::new(StageAligned::new(16)));
        let w64 = run_once(instance, &da, Box::new(StageAligned::new(64)));
        table.row(vec![
            q.to_string(),
            cont.to_string(),
            fmt(da_epsilon(q, cont)),
            w1.work.to_string(),
            w16.work.to_string(),
            w64.work.to_string(),
            w16.messages.to_string(),
        ]);
    }
    table.print();
    println!("\nReading: ε = log_q(3H_q)-ish decreases only slowly with q (Θ(log log q / log q) —");
    println!("the paper notes the required q is of order 2^(log(1/ε)/ε)), so small q already sit");
    println!("near the same ε; the measured work differences at small d come from the tree-shape");
    println!("constants, and larger q consistently lowers the message bill (shallower trees");
    println!("retire fewer nodes). This is the \"for any ε there is a constant q\" trade made");
    println!("concrete.");
}
