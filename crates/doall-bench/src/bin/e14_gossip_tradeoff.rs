//! E14 (extension) — the §7 open direction: controlling work and message
//! complexity *simultaneously*.
//!
//! PaGossip multicasts each job completion to `fanout` random peers
//! instead of all `p − 1`. Sweeping the fanout maps the work/message
//! Pareto frontier between SoloAll (no messages, quadratic work) and
//! PaRan1 (full broadcast, minimal work).

use doall_algorithms::{PaGossip, PaRan1, SoloAll};
use doall_bench::{fmt, section, seed_average, Table};
use doall_core::Instance;
use doall_sim::adversary::StageAligned;
use doall_sim::Adversary;

fn main() {
    let p = 64;
    let t = 256;
    let d = 16u64;
    let seeds = 10;
    let instance = Instance::new(p, t).unwrap();
    section(
        "E14",
        "Extension (§7): gossip fanout vs the work/message trade-off",
        &format!("p = {p}, t = {t}, stage-aligned d = {d}; mean over {seeds} seeds."),
    );
    let mut table = Table::new(vec!["algorithm", "E[W]", "E[M]", "E[M]/E[W]", "E[W]/(p·t)"]);
    let mk_adv = move |_s: u64| Box::new(StageAligned::new(d)) as Box<dyn Adversary>;

    let solo = seed_average(instance, 1, |_| Box::new(SoloAll::new()), mk_adv);
    table.row(vec![
        "SoloAll (f=0)".to_string(),
        fmt(solo.mean_work),
        fmt(solo.mean_messages),
        fmt(0.0),
        fmt(solo.mean_work / (p * t) as f64),
    ]);
    for fanout in [1usize, 2, 4, 8, 16, 32] {
        let stats = seed_average(
            instance,
            seeds,
            |s| Box::new(PaGossip::new(s, fanout)),
            mk_adv,
        );
        table.row(vec![
            format!("PaGossip(f={fanout})"),
            fmt(stats.mean_work),
            fmt(stats.mean_messages),
            fmt(stats.mean_messages / stats.mean_work),
            fmt(stats.mean_work / (p * t) as f64),
        ]);
    }
    let full = seed_average(instance, seeds, |s| Box::new(PaRan1::new(s)), mk_adv);
    table.row(vec![
        "PaRan1 (f=p−1)".to_string(),
        fmt(full.mean_work),
        fmt(full.mean_messages),
        fmt(full.mean_messages / full.mean_work),
        fmt(full.mean_work / (p * t) as f64),
    ]);
    table.print();
    println!("\nReading: messages grow linearly with fanout while work falls steeply at first");
    println!("and then flattens — a logarithmic fanout already buys most of the broadcast's");
    println!("work savings at a tiny fraction of its message cost (the gossip intuition the");
    println!("paper's §7 points to via Georgiou–Kowalski–Shvartsman).");
}
