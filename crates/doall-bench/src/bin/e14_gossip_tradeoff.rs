//! E14 (extension) — the §7 open direction: controlling work and message
//! complexity *simultaneously* via gossip fanout.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e14`).

fn main() {
    doall_bench::experiment_main("e14");
}
