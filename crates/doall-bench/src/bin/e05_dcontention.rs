//! E5 — Theorem 4.4 / Corollary 4.5: a random list of `p` schedules over
//! `[n]` has `(d)-Cont(Σ) ≤ n·ln n + 8·p·d·ln(e + n/d)` for every `d`.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e05`).

fn main() {
    doall_bench::experiment_main("e05");
}
