//! E5 — Theorem 4.4 / Corollary 4.5: a random list of `p` schedules over
//! `[n]` has `(d)-Cont(Σ) ≤ n·ln n + 8·p·d·ln(e + n/d)` for every `d`
//! simultaneously, with overwhelming probability.
//!
//! We sample random lists and report the estimated `(d)-Cont` (sampling +
//! adversarial ascent over the reference permutation) against the
//! threshold; the ratio staying below 1 across the whole `d` range is the
//! reproduction. Small-`n` rows use exact evaluation.

use doall_bench::{fmt, section, Table};
use doall_perms::{d_contention_of_list, dcont_threshold, Schedules};

fn main() {
    section(
        "E5",
        "Theorem 4.4 / Corollary 4.5 ((d)-contention of random schedule lists)",
        "Estimated (exact for n ≤ 8) (d)-Cont(Σ) vs n·ln n + 8pd·ln(e+n/d), across d.",
    );
    for (p, n) in [(8usize, 8usize), (8, 64), (16, 64), (16, 256), (32, 256)] {
        let sched = Schedules::random(p, n, 7);
        println!("### p = {p} schedules over [{n}]\n");
        let mut table = Table::new(vec!["d", "(d)-Cont (est)", "threshold", "ratio", "cap n·p"]);
        let mut d = 1usize;
        while d <= n {
            let est = d_contention_of_list(sched.as_slice(), d);
            let th = dcont_threshold(n, p, d);
            table.row(vec![
                format!("{d}{}", if est.exact { " (exact)" } else { "" }),
                est.value.to_string(),
                fmt(th),
                fmt(est.value as f64 / th),
                (n * p).to_string(),
            ]);
            d *= 4;
        }
        table.print();
        println!();
    }
    println!(
        "Paper: the threshold holds for every d simultaneously w.h.p. — all ratios stay below 1,"
    );
    println!("with the saturation cap n·p taking over once d ≳ n.");
}
