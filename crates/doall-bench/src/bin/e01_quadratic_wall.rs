//! E1 — Proposition 2.2: once `d = Ω(t)`, every algorithm pays `Θ(p·t)`.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e01`); this
//! binary only parses the shared flags and hands off to the harness.

fn main() {
    doall_bench::experiment_main("e01");
}
