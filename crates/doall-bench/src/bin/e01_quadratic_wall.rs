//! E1 — Proposition 2.2: once `d = Ω(t)`, every algorithm pays `Θ(p·t)`.
//!
//! Sweep all algorithms at `d ∈ {t, 2t}` and report `W/(p·t)`: the ratio
//! must be bounded above and below by constants, i.e. cooperation can no
//! longer buy anything.

use doall_bench::{fmt, roster, run_once, section, Table};
use doall_core::Instance;
use doall_sim::adversary::FixedDelay;

fn main() {
    section(
        "E1",
        "Proposition 2.2 (quadratic wall at d = Ω(t))",
        "All algorithms at d ∈ {t, 2t}; cells are W/(p·t). Expect Θ(1) everywhere.",
    );
    for (p, t) in [(32usize, 32usize), (64, 64)] {
        let instance = Instance::new(p, t).unwrap();
        let quadratic = (p * t) as f64;
        println!("### p = {p}, t = {t}\n");
        let mut table = Table::new(vec!["algorithm", "W at d=t", "ratio", "W at d=2t", "ratio"]);
        for algo in roster(instance, 0) {
            let at_t = run_once(instance, &*algo, Box::new(FixedDelay::new(t as u64)));
            let at_2t = run_once(instance, &*algo, Box::new(FixedDelay::new(2 * t as u64)));
            table.row(vec![
                algo.name(),
                at_t.work.to_string(),
                fmt(at_t.work as f64 / quadratic),
                at_2t.work.to_string(),
                fmt(at_2t.work as f64 / quadratic),
            ]);
        }
        table.print();
        println!();
    }
    println!("Paper: Ω(t·p) is unavoidable for a (c·t)-adversary — the ratios sit in a narrow constant band.");
}
