//! E12 — §1.2's fault-tolerance claim: any crash pattern with at least
//! one survivor is tolerated, and work degrades gracefully.
//!
//! Crash 0%, 50%, and all-but-one of the processors at staggered times and
//! report work per algorithm.

use doall_bench::{fmt, roster, run_once, section, Table};
use doall_core::Instance;
use doall_sim::adversary::{CrashSchedule, RandomDelay};
use doall_sim::Adversary;

fn adversary(p: usize, fraction_crashed: f64, seed: u64) -> Box<dyn Adversary> {
    let delays = Box::new(RandomDelay::new(8, seed));
    if fraction_crashed <= 0.0 {
        return delays;
    }
    let crash_count = ((p as f64 * fraction_crashed) as usize).min(p - 1);
    // Stagger crashes: processor i dies at tick 5 + 3i.
    let crash_at: Vec<Option<u64>> = (0..p)
        .map(|i| (i < crash_count).then(|| 5 + 3 * i as u64))
        .collect();
    Box::new(CrashSchedule::new(delays, crash_at))
}

fn main() {
    let p = 32;
    let t = 256;
    let instance = Instance::new(p, t).unwrap();
    section(
        "E12",
        "Fault tolerance (§1.2): any crash pattern, ≥ 1 survivor",
        &format!("p = {p}, t = {t}, random delays ≤ 8; staggered crashes of 0%, 50%, and p−1 processors."),
    );
    let mut table = Table::new(vec![
        "algorithm",
        "W (no crashes)",
        "W (50% crash)",
        "W (all but one)",
        "worst ratio to p·t",
    ]);
    for algo in roster(instance, 0) {
        let w0 = run_once(instance, &*algo, adversary(p, 0.0, 1)).work;
        let w50 = run_once(instance, &*algo, adversary(p, 0.5, 1)).work;
        let w_all = run_once(instance, &*algo, adversary(p, 1.0, 1)).work;
        let worst = w0.max(w50).max(w_all) as f64 / (p * t) as f64;
        table.row(vec![
            algo.name(),
            w0.to_string(),
            w50.to_string(),
            w_all.to_string(),
            fmt(worst),
        ]);
    }
    table.print();
    println!(
        "\nPaper: correctness under any crash pattern with one survivor; note that heavy crashes"
    );
    println!("can *reduce* charged work (dead processors stop being charged) while the survivors");
    println!("slowly finish everything — time stretches, work does not explode.");
}
