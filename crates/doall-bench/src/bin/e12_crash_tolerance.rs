//! E12 — §1.2's fault-tolerance claim: any crash pattern with at least
//! one survivor is tolerated, and work degrades gracefully.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e12`).

fn main() {
    doall_bench::experiment_main("e12");
}
