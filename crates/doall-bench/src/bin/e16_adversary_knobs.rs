//! E16 — adversary *structure* sweeps: the adversaries' own knobs
//! (bursty duty cycles, crash stagger patterns, straggler slowdowns) as
//! first-class grid axes.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e16`).

fn main() {
    doall_bench::experiment_main("e16");
}
