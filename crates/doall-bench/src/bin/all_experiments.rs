//! Runs the whole experiment registry in-process — the generator for
//! EXPERIMENTS.md tables and CI's `bench-smoke.json` artifact.
//!
//! ```text
//! cargo run --release -p doall-bench --bin all_experiments               # full tables
//! cargo run --release -p doall-bench --bin all_experiments -- \
//!     --smoke --json --out bench-smoke.json                             # CI artifact
//! cargo run --release -p doall-bench --bin all_experiments -- --only e05,e11
//! ```

fn main() {
    doall_bench::suite_main();
}
