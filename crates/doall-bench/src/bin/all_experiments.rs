//! Runs every experiment binary in sequence — the generator for
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p doall-bench --bin all_experiments > experiments.out
//! ```

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "e01_quadratic_wall",
    "e02_lb_deterministic",
    "e03_lb_randomized",
    "e04_contention",
    "e05_dcontention",
    "e06_da_work",
    "e07_da_messages",
    "e08_pa_random",
    "e09_pa_det",
    "e10_work_vs_dcont",
    "e11_crossover",
    "e12_crash_tolerance",
    "e13_da_q_ablation",
    "e14_gossip_tradeoff",
    "e15_structured_schedules",
];

fn main() {
    // Prefer exec-ing sibling binaries (same target dir); fall back to
    // cargo run if a sibling is missing.
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("exe dir").to_path_buf();
    for exp in EXPERIMENTS {
        let sibling = dir.join(exp);
        let status = if sibling.exists() {
            Command::new(&sibling).status()
        } else {
            Command::new("cargo")
                .args(["run", "--release", "-p", "doall-bench", "--bin", exp])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("experiment {exp} exited with {s}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("failed to launch {exp}: {e}");
                std::process::exit(1);
            }
        }
    }
}
