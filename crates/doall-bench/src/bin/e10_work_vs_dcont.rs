//! E10 — Lemma 6.1: the work of PaDet against any d-adversary is at most
//! `(d)-Cont(Σ)` of its schedule list.
//!
//! Small instances (n ≤ 8) use the *exact* `(d)`-contention, making this a
//! hard inequality check; the large instance reports the sampled estimate
//! (a lower bound on the true max, so measured/estimate slightly above 1
//! is still consistent with the lemma).

use doall_algorithms::PaDet;
use doall_bench::{fmt, run_once, section, Table};
use doall_core::Instance;
use doall_perms::{d_contention_of_list, Schedules};
use doall_sim::adversary::StageAligned;

fn main() {
    section(
        "E10",
        "Lemma 6.1 (PaDet work ≤ (d)-Cont(Σ))",
        "Measured work under the stage-aligned d-adversary vs the (d)-contention of the same list.",
    );

    println!("### Exact check: p = t = 8 (exhaustive (d)-Cont)\n");
    let p = 8;
    let t = 8;
    let instance = Instance::new(p, t).unwrap();
    let sched = Schedules::random(p, t, 3);
    let algo = PaDet::new(sched.clone());
    let mut table = Table::new(vec!["d", "W", "(d)-Cont(Σ) exact", "W ≤ (d)-Cont?"]);
    for d in [1u64, 2, 4, 8] {
        let report = run_once(instance, &algo, Box::new(StageAligned::new(d)));
        let dc = d_contention_of_list(sched.as_slice(), d as usize);
        assert!(dc.exact);
        // Small slack: the final tick may charge idle steps of processors
        // that have not yet learned completion (the lemma counts task
        // performances; our W also counts those trailing no-op steps).
        assert!(
            report.work <= dc.value as u64 + p as u64,
            "Lemma 6.1 violated at d={d}: {} > {}",
            report.work,
            dc.value
        );
        table.row(vec![
            d.to_string(),
            report.work.to_string(),
            dc.value.to_string(),
            "yes".to_string(),
        ]);
    }
    table.print();

    println!("\n### Estimated check: p = t = 64 (sampled (d)-Cont estimate)\n");
    let p = 64;
    let t = 64;
    let instance = Instance::new(p, t).unwrap();
    let sched = Schedules::random(p, t, 5);
    let algo = PaDet::new(sched.clone());
    let mut table = Table::new(vec!["d", "W", "(d)-Cont estimate", "W/estimate"]);
    for d in [1u64, 4, 16, 64] {
        let report = run_once(instance, &algo, Box::new(StageAligned::new(d)));
        let dc = d_contention_of_list(sched.as_slice(), d as usize);
        table.row(vec![
            d.to_string(),
            report.work.to_string(),
            dc.value.to_string(),
            fmt(report.work as f64 / dc.value as f64),
        ]);
    }
    table.print();
    println!("\nPaper: Lemma 6.1 is the bridge from executions to combinatorics — the exact table is a hard pass/fail.");
}
