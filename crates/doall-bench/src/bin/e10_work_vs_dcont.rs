//! E10 — Lemma 6.1: the work of PaDet against any d-adversary is at most
//! `(d)-Cont(Σ)` of its schedule list (asserted where the value is exact).
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e10`).

fn main() {
    doall_bench::experiment_main("e10");
}
