//! E9 — Theorem 6.3 / Corollary 6.5: PaDet with a (random, Thm 4.4 /
//! Cor 4.5) schedule list matches the randomized bound deterministically.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e09`).

fn main() {
    doall_bench::experiment_main("e09");
}
