//! E9 — Theorem 6.3 / Corollary 6.5: PaDet with a (random, Thm 4.4 /
//! Cor 4.5) schedule list matches the randomized bound deterministically.
//!
//! PaDet across the same sweeps as E8, with PaRan1 means overlaid for
//! comparison.

use doall_algorithms::{Algorithm, PaDet, PaRan1};
use doall_bench::{fmt, run_once, section, seed_average, Table};
use doall_bounds::pa_upper_bound;
use doall_core::Instance;
use doall_sim::adversary::StageAligned;
use doall_sim::Adversary;

fn main() {
    let seeds = 20;
    section(
        "E9",
        "Theorem 6.3 / Corollary 6.5 (PaDet deterministic work)",
        "PaDet (fixed Cor-4.5-style list) vs the bound, with PaRan1 seed-means overlaid.",
    );
    for (p, t) in [(128usize, 128usize), (32, 1024)] {
        let instance = Instance::new(p, t).unwrap();
        let padet = PaDet::random_for(instance, 7);
        println!("### p = {p}, t = {t}\n");
        let mut table = Table::new(vec![
            "d",
            "PaDet W",
            "bound",
            "W/bound",
            "PaRan1 E[W]",
            "PaDet/PaRan1",
        ]);
        let mut d = 1u64;
        while d <= t as u64 {
            let det = run_once(instance, &padet, Box::new(StageAligned::new(d)));
            let ran = seed_average(
                instance,
                seeds,
                |s| Box::new(PaRan1::new(s)) as Box<dyn Algorithm>,
                |_| Box::new(StageAligned::new(d)) as Box<dyn Adversary>,
            );
            let bound = pa_upper_bound(p, t, d);
            table.row(vec![
                d.to_string(),
                det.work.to_string(),
                fmt(bound),
                fmt(det.work as f64 / bound),
                fmt(ran.mean_work),
                fmt(det.work as f64 / ran.mean_work),
            ]);
            d *= 4;
        }
        table.print();
        println!();
    }
    println!("Paper: the deterministic algorithm tracks the randomized one (PaDet/PaRan1 ≈ 1),");
    println!("confirming that a fixed good list derandomizes the schedule family.");
}
