//! E8 — Theorem 6.2 / Corollary 6.4: expected work of PaRan1/PaRan2 is
//! `O(t log p + p·d·log(2 + t/d))`, messages `O(p×that)`.
//!
//! Mean over seeds across a `d`-sweep, for p = t and t ≫ p.

use doall_algorithms::{Algorithm, PaRan1, PaRan2};
use doall_bench::{fmt, section, seed_average, Table};
use doall_bounds::{oblivious_work, pa_upper_bound};
use doall_core::Instance;
use doall_sim::adversary::StageAligned;
use doall_sim::Adversary;

type AlgoFactory = Box<dyn Fn(u64) -> Box<dyn Algorithm>>;

fn main() {
    let seeds = 20;
    section(
        "E8",
        "Theorem 6.2 / Corollary 6.4 (PaRan expected work and messages)",
        &format!("Mean over {seeds} seeds under the stage-aligned d-adversary vs t·log n + p·min{{t,d}}·log(2+t/d)."),
    );
    let mk_algo: Vec<(&str, AlgoFactory)> = vec![
        ("PaRan1", Box::new(|s| Box::new(PaRan1::new(s)))),
        ("PaRan2", Box::new(|s| Box::new(PaRan2::new(s)))),
    ];
    for (name, algo_for) in &mk_algo {
        for (p, t) in [(128usize, 128usize), (32, 1024)] {
            let instance = Instance::new(p, t).unwrap();
            println!("### {name}, p = {p}, t = {t}\n");
            let mut table = Table::new(vec![
                "d",
                "E[W]",
                "bound",
                "E[W]/bound",
                "E[W]/(p·t)",
                "E[M]/(p·E[W])",
            ]);
            let mut d = 1u64;
            while d <= t as u64 {
                let stats = seed_average(instance, seeds, algo_for, |s| {
                    let _ = s;
                    Box::new(StageAligned::new(d)) as Box<dyn Adversary>
                });
                let bound = pa_upper_bound(p, t, d);
                table.row(vec![
                    d.to_string(),
                    fmt(stats.mean_work),
                    fmt(bound),
                    fmt(stats.mean_work / bound),
                    fmt(stats.mean_work / oblivious_work(p, t)),
                    fmt(stats.mean_messages / (p as f64 * stats.mean_work)),
                ]);
                d *= 4;
            }
            table.print();
            println!();
        }
    }
    println!(
        "Paper: E[W]/bound sits in a constant band across the sweep; messages stay within p×work."
    );
}
