//! E8 — Theorem 6.2 / Corollary 6.4: expected work of PaRan1/PaRan2 is
//! `O(t log p + p·d·log(2 + t/d))`, messages `O(p×that)`.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e08`).

fn main() {
    doall_bench::experiment_main("e08");
}
