//! E11 — the headline picture: work vs `d` for every algorithm on one
//! instance, showing who wins where and the crossover into the quadratic
//! wall at `d ≈ t`. Its smoke grid doubles as CI's full
//! algorithm × adversary matrix check.
//!
//! Declarative spec lives in `doall_bench::experiments` (id `e11`).

fn main() {
    doall_bench::experiment_main("e11");
}
