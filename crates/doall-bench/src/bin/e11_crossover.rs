//! E11 — the headline picture: work vs `d` for every algorithm on one
//! instance, showing who wins where and the crossover into the quadratic
//! wall at `d ≈ t`.

use doall_bench::{fmt, roster, run_once, section, Table};
use doall_core::Instance;
use doall_sim::adversary::StageAligned;

fn main() {
    let p = 256;
    let t = 256;
    let instance = Instance::new(p, t).unwrap();
    let quadratic = (p * t) as f64;
    section(
        "E11",
        "Headline crossover (subquadratic iff d = o(t))",
        &format!("p = t = {t}; cells are W (ratio to p·t = {quadratic})."),
    );
    let algos = roster(instance, 0);
    let mut headers = vec!["d".to_string()];
    headers.extend(algos.iter().map(|a| a.name()));
    let mut table = Table::new(headers);
    for d in [1u64, 4, 16, 64, 128, 256] {
        let mut row = vec![d.to_string()];
        for algo in &algos {
            let report = run_once(instance, &**algo, Box::new(StageAligned::new(d)));
            row.push(format!(
                "{} ({})",
                report.work,
                fmt(report.work as f64 / quadratic)
            ));
        }
        table.row(row);
    }
    table.print();
    println!("\nPaper: the cooperative algorithms are subquadratic while d ≪ t; the PA family's");
    println!("O(t log p + p·d·log(2+t/d)) beats DA's O(t·p^ε + …) for moderate d (its overhead is");
    println!("logarithmic rather than polynomial), and everything converges to p·t at d ≈ t.");
}
